#!/usr/bin/env python
"""Coverage ratchet gate: fail CI when a guarded package's coverage drops.

Reads a ``coverage.json`` report (``pytest --cov=repro
--cov-report=json``) and the floors in ``scripts/coverage_ratchet.json``,
computes line coverage per guarded package prefix, and exits 1 when any
package falls below its floor.

This script deliberately has **no dependency on pytest-cov or coverage**
— it only parses the JSON report they emit, so it runs anywhere.  The
``cov`` extra (``pip install -e ".[test,cov]"``) is needed only to
*produce* the report; CI is the only place that does.

Usage::

    python -m pytest --cov=repro --cov-report=json -q
    python scripts/coverage_gate.py coverage.json

Ratcheting: floors only go up.  When a guarded package's measured
coverage clears its floor by ≥3 points the gate prints a reminder to
raise it; raise it in the same PR that earned the coverage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
RATCHET = Path(__file__).resolve().parent / "coverage_ratchet.json"

#: measured-above-floor slack beyond which the gate nags to ratchet up
RATCHET_SLACK = 3.0


def package_coverage(report: dict, prefix: str) -> tuple[float, int, int]:
    """``(percent, covered, statements)`` over files under ``prefix``."""
    covered = statements = 0
    norm = prefix.replace("\\", "/")
    for filename, entry in report.get("files", {}).items():
        name = filename.replace("\\", "/")
        # reports may use paths relative to the repo root or absolute
        if norm in name or name.startswith(norm):
            summary = entry["summary"]
            covered += summary["covered_lines"]
            statements += summary["num_statements"]
    percent = 100.0 * covered / statements if statements else 0.0
    return percent, covered, statements


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, nargs="?",
                        default=ROOT / "coverage.json",
                        help="coverage JSON report (default ./coverage.json)")
    parser.add_argument("--ratchet", type=Path, default=RATCHET)
    args = parser.parse_args(argv)

    if not args.report.exists():
        print(f"error: coverage report {args.report} not found — generate "
              'it with `python -m pytest --cov=repro --cov-report=json -q` '
              '(needs `pip install -e ".[test,cov]"`)')
        return 2
    with open(args.report, encoding="utf-8") as fh:
        report = json.load(fh)
    with open(args.ratchet, encoding="utf-8") as fh:
        floors: dict[str, float] = json.load(fh)["floors"]

    failures = 0
    for prefix, floor in sorted(floors.items()):
        percent, covered, statements = package_coverage(report, prefix)
        if statements == 0:
            print(f"FAIL  {prefix}: no files matched in the report")
            failures += 1
            continue
        status = "ok  " if percent >= floor else "FAIL"
        print(
            f"{status}  {prefix}: {percent:6.2f}% "
            f"({covered}/{statements} lines, floor {floor:.2f}%)"
        )
        if percent < floor:
            failures += 1
        elif percent >= floor + RATCHET_SLACK:
            print(
                f"      ratchet: measured {percent:.2f}% clears the floor "
                f"by ≥{RATCHET_SLACK:.0f} points — consider raising it in "
                f"{args.ratchet.name}"
            )
    if failures:
        print(f"{failures} package(s) below their coverage floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
