#!/usr/bin/env python
"""Regenerate (or verify) the golden-trace fixtures.

Three fixture files pin the simulator's exact behaviour across sessions:

* ``tests/faults/fixtures/golden_traces.json`` — the pre-fault-layer
  traces (fault-free grid, original configs);
* ``tests/faults/fixtures/golden_traces_backends.json`` — the kernel-
  backend grid, with faults off and on, replayed by *both* backends in
  ``tests/kernels/test_golden_backends.py``;
* ``tests/faults/fixtures/golden_traces_executors.json`` — the executor
  grid, with faults off and on, replayed by *both* executors (sim and
  rank-per-process) in ``tests/exec/test_golden_executors.py``.
  Regeneration runs the real process executor, so the committed bytes
  are what the parallel tier actually produced.

Usage::

    python scripts/refresh_golden_fixtures.py            # rewrite both
    python scripts/refresh_golden_fixtures.py --check    # verify, exit 1 on drift

``--check`` is what CI runs: it regenerates every entry in memory and
compares against the committed files (parsed-JSON comparison, so
formatting is irrelevant), printing the first few diverging keys.

Traces are backend-independent by contract, so regeneration uses the
default (numpy) backend; the test suite is what proves the python oracle
replays the same bytes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))


def generate_original() -> tuple[Path, dict]:
    """The pre-fault-layer fixture (same generator as the original PR)."""
    from repro.machine import trace_to_dict
    from tests.faults.test_determinism import FIXTURE, GOLDEN_CONFIGS, run_one

    fixture: dict[str, dict] = {}
    for scheme, partition, compression, n, p in GOLDEN_CONFIGS:
        machine, result = run_one(scheme, partition, compression, n, p)
        fixture[f"{scheme}-{partition}-{compression}-n{n}-p{p}"] = {
            "t_distribution": result.t_distribution,
            "t_compression": result.t_compression,
            "trace": trace_to_dict(machine.trace),
        }
    return FIXTURE, fixture


def generate_backends() -> tuple[Path, dict]:
    from tests.kernels.golden_backends import FIXTURE, generate_fixture

    return FIXTURE, generate_fixture()


def generate_executors() -> tuple[Path, dict]:
    """Executor grid — generated *by the process executor* so the fixture
    pins what real worker processes produced (the sim replay in the test
    suite then closes the loop from the other side)."""
    from tests.exec.golden_executors import FIXTURE, generate_fixture

    return FIXTURE, generate_fixture(executor="process")


def roundtrip(obj: dict) -> dict:
    """What the fixture looks like after a JSON round-trip (tuples→lists,
    float canonicalisation) — the representation tests compare against."""
    return json.loads(json.dumps(obj))


def check_one(path: Path, generated: dict) -> list[str]:
    """Compare a regenerated fixture against the committed file."""
    if not path.exists():
        return [f"{path.name}: missing (run without --check to create it)"]
    with open(path, encoding="utf-8") as fh:
        committed = json.load(fh)
    generated = roundtrip(generated)
    if committed == generated:
        return []
    problems = []
    gen_keys, com_keys = set(generated), set(committed)
    for key in sorted(com_keys - gen_keys):
        problems.append(f"{path.name}: stale key {key!r}")
    for key in sorted(gen_keys - com_keys):
        problems.append(f"{path.name}: missing key {key!r}")
    for key in sorted(gen_keys & com_keys):
        if generated[key] != committed[key]:
            problems.append(f"{path.name}: entry {key!r} diverges")
    return problems


def write_one(path: Path, generated: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(generated, fh, indent=1, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed fixtures instead of rewriting them",
    )
    args = parser.parse_args(argv)

    problems: list[str] = []
    fixtures = (generate_original(), generate_backends(), generate_executors())
    for path, generated in fixtures:
        if args.check:
            problems.extend(check_one(path, generated))
        else:
            write_one(path, generated)
            print(f"wrote {path.relative_to(ROOT)} ({len(generated)} entries)")
    if args.check:
        if problems:
            for line in problems[:20]:
                print(f"DRIFT: {line}")
            print(f"{len(problems)} fixture problem(s); regenerate with "
                  "scripts/refresh_golden_fixtures.py if the change is "
                  "intentional")
            return 1
        print(f"golden fixtures match the simulator "
              f"({len(fixtures)} files verified)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
