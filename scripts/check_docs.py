#!/usr/bin/env python3
"""Docs gate: markdown link checker + public-API docstring presence.

Two checks, zero dependencies:

1. **Links** — every relative markdown link and every ``file:symbol`` /
   bare-path reference in the documentation set (README.md, DESIGN.md,
   EXPERIMENTS.md, CHANGES.md, docs/*.md) must point at a file that
   exists in the repository.  In-page anchors (``#section``) are checked
   against the target file's headings.  External (http/https/mailto)
   links are *not* fetched — CI must not depend on the network.

2. **Docstrings** — every public symbol exported by the observability
   layer (``repro.obs.__all__`` and the ``__all__`` of its submodules)
   must carry a docstring, as must the modules themselves and the public
   methods of public classes.  The docs site leans on these docstrings;
   an undocumented export is a build error, not a style nit.

Exit status 0 = clean, 1 = problems (each printed one per line).
Run from the repository root:  ``python scripts/check_docs.py``
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: the documentation set the link checker walks
DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CHANGES.md",
    "ROADMAP.md",
    *sorted(str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")),
]

#: markdown inline links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: markdown headings, for anchor checking
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for one heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(path: Path) -> set[str]:
    return {_slugify(h) for h in _HEADING_RE.findall(path.read_text())}


def check_links() -> list[str]:
    problems: list[str] = []
    for rel in DOC_FILES:
        doc = REPO / rel
        if not doc.exists():
            problems.append(f"{rel}: documented file is missing")
            continue
        text = doc.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, anchor = target.partition("#")
            if not target:  # pure in-page anchor
                if anchor and _slugify(anchor) not in _anchors_of(doc):
                    problems.append(f"{rel}: broken anchor #{anchor}")
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {target}")
            elif anchor and resolved.suffix == ".md":
                if _slugify(anchor) not in _anchors_of(resolved):
                    problems.append(
                        f"{rel}: broken anchor -> {target}#{anchor}"
                    )
        # `path:symbol` and bare-path references in backticks
        # the path ends at the first ":" (a `path:symbol` or
        # `path::test` reference) or at the closing backtick
        for ref in re.findall(
            r"`((?:src|docs|tests|examples|scripts|benchmarks)/[^`\s:]+)"
            r"(?::[^`]*)?`",
            text,
        ):
            if not (REPO / ref).exists():
                problems.append(f"{rel}: dangling path reference -> {ref}")
    return problems


def _public_members(obj) -> list[tuple[str, object]]:
    """(name, member) for an object's declared public API."""
    names = getattr(obj, "__all__", None)
    if names is None:
        names = [n for n in vars(obj) if not n.startswith("_")]
    return [(n, getattr(obj, n)) for n in names if hasattr(obj, n)]


def check_obs_docstrings() -> list[str]:
    sys.path.insert(0, str(REPO / "src"))
    import importlib

    problems: list[str] = []
    modules = [
        "repro.obs",
        "repro.obs.metrics",
        "repro.obs.spans",
        "repro.obs.exporters",
        "repro.obs.inspect",
    ]
    for modname in modules:
        module = importlib.import_module(modname)
        if not (module.__doc__ or "").strip():
            problems.append(f"{modname}: module docstring missing")
        for name, member in _public_members(module):
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue  # constants need no docstring
            if not (inspect.getdoc(member) or "").strip():
                problems.append(f"{modname}.{name}: docstring missing")
            if inspect.isclass(member):
                for mname, meth in vars(member).items():
                    if mname.startswith("_") or not callable(meth):
                        continue
                    if not (getattr(meth, "__doc__", "") or "").strip():
                        problems.append(
                            f"{modname}.{name}.{mname}: docstring missing"
                        )
    return problems


def main() -> int:
    problems = check_links() + check_obs_docstrings()
    for problem in problems:
        print(f"docs: {problem}")
    if problems:
        print(f"docs check FAILED ({len(problems)} problems)")
        return 1
    n_docs = sum(1 for rel in DOC_FILES if (REPO / rel).exists())
    print(f"docs check passed ({n_docs} documents, obs API documented)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
