#!/usr/bin/env python3
"""Docs gate: links, reachability, package coverage, API docstrings.

Four checks, zero dependencies:

1. **Links** — every relative markdown link and every ``file:symbol`` /
   bare-path reference in the documentation set (README.md, DESIGN.md,
   EXPERIMENTS.md, CHANGES.md, docs/*.md) must point at a file that
   exists in the repository.  In-page anchors (``#section``) are checked
   against the target file's headings.  External (http/https/mailto)
   links are *not* fetched — CI must not depend on the network.

2. **No orphan pages** — ``docs/*.md`` is globbed, not enumerated, so a
   new page is checked the moment it exists; but a page nobody can
   *reach* from README.md (its documentation map is the entry point) is
   dead weight and fails the gate until it is linked.

3. **Package coverage** — every package under ``src/repro/`` must appear
   in README.md's module tree and carry a row in ARCHITECTURE.md's
   module map.  New subsystems ship with their map entries, or CI says
   so.

4. **Docstrings** — every public symbol exported by the observability
   layer and the run service (their ``__all__`` and submodules) must
   carry a docstring, as must the modules themselves and the public
   methods of public classes.  The docs site leans on these docstrings;
   an undocumented export is a build error, not a style nit.

Exit status 0 = clean, 1 = problems (each printed one per line).
Run from the repository root:  ``python scripts/check_docs.py``
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: the documentation set the link checker walks
DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "CHANGES.md",
    "ROADMAP.md",
    *sorted(str(p.relative_to(REPO)) for p in (REPO / "docs").glob("*.md")),
]

#: markdown inline links: [text](target)
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: markdown headings, for anchor checking
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for one heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(path: Path) -> set[str]:
    return {_slugify(h) for h in _HEADING_RE.findall(path.read_text())}


def check_links() -> list[str]:
    problems: list[str] = []
    for rel in DOC_FILES:
        doc = REPO / rel
        if not doc.exists():
            problems.append(f"{rel}: documented file is missing")
            continue
        text = doc.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, anchor = target.partition("#")
            if not target:  # pure in-page anchor
                if anchor and _slugify(anchor) not in _anchors_of(doc):
                    problems.append(f"{rel}: broken anchor #{anchor}")
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {target}")
            elif anchor and resolved.suffix == ".md":
                if _slugify(anchor) not in _anchors_of(resolved):
                    problems.append(
                        f"{rel}: broken anchor -> {target}#{anchor}"
                    )
        # `path:symbol` and bare-path references in backticks
        # the path ends at the first ":" (a `path:symbol` or
        # `path::test` reference) or at the closing backtick
        for ref in re.findall(
            r"`((?:src|docs|tests|examples|scripts|benchmarks)/[^`\s:]+)"
            r"(?::[^`]*)?`",
            text,
        ):
            if not (REPO / ref).exists():
                problems.append(f"{rel}: dangling path reference -> {ref}")
    return problems


def check_orphans() -> list[str]:
    """Every docs/ page must be reachable from README.md's links."""
    readme = REPO / "README.md"
    linked: set[Path] = set()
    for match in _LINK_RE.finditer(readme.read_text()):
        target = match.group(1).partition("#")[0]
        if not target or target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (readme.parent / target).resolve()
        if resolved.exists():
            linked.add(resolved)
    return [
        f"docs/{page.name}: orphan page — add it to README.md's "
        "documentation map"
        for page in sorted((REPO / "docs").glob("*.md"))
        if page.resolve() not in linked
    ]


def check_package_coverage() -> list[str]:
    """Every src/repro package has a README tree entry and a map row."""
    readme = (REPO / "README.md").read_text()
    module_map = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    problems: list[str] = []
    packages = sorted(
        path.name
        for path in (REPO / "src" / "repro").iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )
    for package in packages:
        if not re.search(rf"^  {re.escape(package)}/\s", readme, re.MULTILINE):
            problems.append(
                f"README.md: src/repro/{package}/ is missing from the "
                "module tree in 'What is in the box'"
            )
        if f"| `{package}/` |" not in module_map:
            problems.append(
                f"docs/ARCHITECTURE.md: src/repro/{package}/ has no row "
                "in the module map"
            )
    return problems


def _public_members(obj) -> list[tuple[str, object]]:
    """(name, member) for an object's declared public API."""
    names = getattr(obj, "__all__", None)
    if names is None:
        names = [n for n in vars(obj) if not n.startswith("_")]
    return [(n, getattr(obj, n)) for n in names if hasattr(obj, n)]


def check_obs_docstrings() -> list[str]:
    sys.path.insert(0, str(REPO / "src"))
    import importlib

    problems: list[str] = []
    modules = [
        "repro.obs",
        "repro.obs.metrics",
        "repro.obs.spans",
        "repro.obs.exporters",
        "repro.obs.inspect",
        "repro.service",
        "repro.service.protocol",
        "repro.service.queue",
        "repro.service.server",
        "repro.service.client",
    ]
    for modname in modules:
        module = importlib.import_module(modname)
        if not (module.__doc__ or "").strip():
            problems.append(f"{modname}: module docstring missing")
        for name, member in _public_members(module):
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue  # constants need no docstring
            if not (inspect.getdoc(member) or "").strip():
                problems.append(f"{modname}.{name}: docstring missing")
            if inspect.isclass(member):
                for mname, meth in vars(member).items():
                    if mname.startswith("_") or not callable(meth):
                        continue
                    if not (getattr(meth, "__doc__", "") or "").strip():
                        problems.append(
                            f"{modname}.{name}.{mname}: docstring missing"
                        )
    return problems


def main() -> int:
    problems = (
        check_links()
        + check_orphans()
        + check_package_coverage()
        + check_obs_docstrings()
    )
    for problem in problems:
        print(f"docs: {problem}")
    if problems:
        print(f"docs check FAILED ({len(problems)} problems)")
        return 1
    n_docs = sum(1 for rel in DOC_FILES if (REPO / rel).exists())
    n_packages = sum(
        1 for p in (REPO / "src" / "repro").iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )
    print(
        f"docs check passed ({n_docs} documents reachable, "
        f"{n_packages} packages mapped, obs+service APIs documented)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
