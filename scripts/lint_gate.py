#!/usr/bin/env python
"""Pragma-budget ratchet gate: the lint escape hatch cannot silently grow.

``# reprolint: disable=…`` pragmas are reprolint's escape hatch — each
one is a *reviewed* exception to an invariant the rules otherwise prove.
This gate runs ``repro lint`` in-process over the default paths and
compares the total pragma count against the budget committed in
``scripts/lint_budget.json``.  More pragmas than budgeted fails CI;
fewer prints a reminder to ratchet the budget down (mirroring
``coverage_gate.py``: budgets only move in the strict direction, in the
same PR that earns the movement).

The gate also re-asserts the zero-violation bar: any live diagnostic
fails, with the full report echoed for CI annotations.

Since PR 10 the gate additionally enforces a **runtime budget**
(``runtime_budget_s`` in the same file): the full-repo lint — now
including the interprocedural call-graph tier (RL007/RL011) — must
finish inside a wall-clock ceiling, so an accidentally quadratic rule
cannot silently eat CI time.  The ceiling is generous (CI machines
jitter); the point is catching order-of-magnitude regressions, not
milliseconds.

Usage::

    PYTHONPATH=src python scripts/lint_gate.py
    PYTHONPATH=src python scripts/lint_gate.py --budget scripts/lint_budget.json

Exit codes follow the repo contract: 0 = within budget and clean,
1 = violations or budget exceeded, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
BUDGET = Path(__file__).resolve().parent / "lint_budget.json"

sys.path.insert(0, str(ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=Path, default=BUDGET,
        help="budget file (default scripts/lint_budget.json)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.budget, encoding="utf-8") as fh:
            budgets = json.load(fh)
        budget = budgets["pragma_budget"]
        runtime_budget = budgets["runtime_budget_s"]
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: cannot read budgets from {args.budget}: {exc}")
        return 2

    from repro.analysis import lint_paths, project_config
    from repro.analysis.config import DEFAULT_LINT_PATHS

    paths = [ROOT / p for p in DEFAULT_LINT_PATHS if (ROOT / p).exists()]
    start = time.perf_counter()
    result = lint_paths(paths, project_config(), root=ROOT)
    elapsed = time.perf_counter() - start

    failures = 0
    status = "ok  " if elapsed <= runtime_budget else "FAIL"
    print(
        f"{status}  runtime: lint of {result.files_checked} file(s) took "
        f"{elapsed:.2f}s, budget {runtime_budget:.0f}s"
    )
    if elapsed > runtime_budget:
        print(
            "      the lint pass blew its wall-clock ceiling — profile "
            "the new rule (the call-graph tier is the usual suspect) or "
            f"argue a higher runtime_budget_s in {args.budget.name}"
        )
        failures += 1
    if not result.clean:
        print(result.render())
        failures += 1
    count = result.pragma_count
    status = "ok  " if count <= budget else "FAIL"
    print(f"{status}  pragmas: {count} disable pragma(s), budget {budget}")
    if count > budget:
        print(
            "      the lint escape hatch grew — remove the new pragma or "
            "argue the exception in review and raise the budget in "
            f"{args.budget.name}"
        )
        failures += 1
    elif count < budget:
        print(
            f"      ratchet: only {count} pragma(s) in the tree — lower "
            f"the budget to {count} in {args.budget.name}"
        )
    if failures:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
