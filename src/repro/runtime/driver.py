"""End-to-end experiment driver: matrix → machine → scheme → result.

This is the API most callers want: give it a global sparse array (or just a
size and sparse ratio), pick a scheme/partition/compression by name, and
get back a :class:`~repro.core.base.SchemeResult` with the simulated phase
times and every processor's compressed local array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.base import SchemeResult
from ..core.registry import get_partition
from ..faults.spec import FaultSpec
from ..machine.cost_model import CostModel, sp2_cost_model
from ..machine.topology import Topology
from ..partition.base import PartitionMethod, PartitionPlan
from ..partition.mesh2d import Mesh2DPartition
from ..sparse.coo import COOMatrix
from ..sparse.generators import random_sparse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.supervise import SuperviseSpec
    from ..obs.spans import Observability

__all__ = ["ExperimentConfig", "run_scheme", "run_config"]


def run_scheme(
    scheme: str,
    matrix: COOMatrix,
    *,
    partition: str | PartitionMethod = "row",
    n_procs: int = 4,
    compression: str = "crs",
    cost: CostModel | None = None,
    topology: Topology | None = None,
    plan: PartitionPlan | None = None,
    faults: FaultSpec | None = None,
    fault_seed: int = 0,
    recovery: str | None = None,
    backend: str | None = None,
    executor: str | None = None,
    obs: "Observability | None" = None,
    supervise: "SuperviseSpec | None" = None,
) -> SchemeResult:
    """Run one scheme on a fresh simulated machine.

    Parameters mirror the paper's experimental knobs.  ``plan`` overrides
    ``partition``/``n_procs`` when a pre-built (e.g. bin-packing) plan is
    wanted.  ``faults`` attaches a deterministic fault injector (seeded
    with ``fault_seed``); the result's ``fault_summary`` then reports what
    the injector did and all retries are charged through the cost model.

    ``recovery`` (``"host-resend"`` | ``"peer-redistribute"``) runs the
    scheme through the fail-stop recovery manager: rank deaths from the
    fault plan's ``fail_stop`` spec are detected, repaired on the
    surviving membership and reported in ``result.recovery_summary``.
    Requires ``faults``; a pre-built ``plan`` cannot be combined with it
    (recovery re-plans for the survivors).

    ``backend`` selects the kernel backend (``"python"`` | ``"numpy"``)
    the hot paths run on; ``None`` inherits the process default (numpy).
    Results are byte-identical either way (DESIGN.md §"Kernel backends").

    ``executor`` selects where rank tasks physically run (``"sim"`` |
    ``"process"``); ``None`` inherits the executor layer's default
    (``REPRO_EXECUTOR``, else sim).  Results — traces, charges, wire
    bytes — are byte-identical either way (DESIGN.md §"Execution
    tiers"); worker processes are torn down before this returns.

    ``obs`` attaches an :class:`~repro.obs.spans.Observability` recorder:
    spans, a metrics registry and per-rank communication totals are then
    collected during the run, self-verified against the trace ledger, and
    snapshotted into ``result.observability``.  ``None`` (default) runs
    fully un-instrumented — byte-identical to pre-observability builds
    (docs/OBSERVABILITY.md).

    ``supervise`` attaches a :class:`~repro.exec.SuperviseSpec` to the
    run's executor session: real worker crashes and hangs are then healed
    by restart-and-replay (degrading to the inline sim executor once the
    budget is spent) and reported in ``result.supervisor_summary``.  Only
    meaningful with the process executor; ``None`` inherits the
    supervision layer's default (``REPRO_SUPERVISE``, else off).
    """
    from .session import RunSession

    method = partition if isinstance(partition, PartitionMethod) else get_partition(partition)
    if plan is None:
        plan = method.plan(matrix.shape, n_procs)
    request = ExperimentConfig(
        scheme=scheme,
        n=matrix.shape[0],
        n_procs=plan.n_procs,
        partition=method.name,
        compression=compression,
        seed=0,
        cost=cost if cost is not None else sp2_cost_model(),
        faults=faults,
        fault_seed=fault_seed,
        recovery=recovery,
        backend=backend,
        executor=executor,
        supervise=supervise,
    )
    with RunSession(reuse_machines=False) as session:
        return session.run(
            request, matrix=matrix, method=method, plan=plan,
            topology=topology, obs=obs,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """A declarative experiment: one cell of a paper table.

    ``mesh_shape`` selects an explicit processor mesh for the ``mesh2d``
    partition (``None`` = most-square factorisation of ``n_procs``).
    ``faults``/``fault_seed`` re-derive the cell under a fault plan — the
    reliability-vs-cost extension (DESIGN.md §"Fault model").
    """

    scheme: str
    n: int
    n_procs: int
    partition: str = "row"
    compression: str = "crs"
    sparse_ratio: float = 0.1
    seed: int = 0
    mesh_shape: tuple[int, int] | None = None
    cost: CostModel = field(default_factory=sp2_cost_model)
    faults: FaultSpec | None = None
    fault_seed: int = 0
    #: fail-stop recovery policy ("host-resend" | "peer-redistribute");
    #: None runs without the recovery manager (a fail-stop death then
    #: surfaces as DeadRankError)
    recovery: str | None = None
    #: kernel backend ("python" | "numpy"); None = process default
    backend: str | None = None
    #: executor ("sim" | "process"); None = the executor layer's default
    executor: str | None = None
    #: real-fault supervision spec; None = the supervision layer's
    #: default (REPRO_SUPERVISE, else off).  Process executor only.
    supervise: "SuperviseSpec | None" = None

    def make_matrix(self) -> COOMatrix:
        """The test sample for this cell (paper: n×n, fixed sparse ratio)."""
        return random_sparse((self.n, self.n), self.sparse_ratio, seed=self.seed)

    def partition_method(self) -> PartitionMethod:
        if self.partition == "mesh2d":
            return Mesh2DPartition(self.mesh_shape)
        return get_partition(self.partition)


def run_config(config: ExperimentConfig, matrix: COOMatrix | None = None) -> SchemeResult:
    """Execute one experiment cell (generating the matrix unless given).

    A one-shot :class:`~repro.runtime.session.RunSession` run: grids that
    revisit matrices or machines should hold a session open instead
    (that is what :func:`~repro.runtime.experiments.reproduce_table` and
    the sweep orchestrator do).
    """
    from .session import RunSession

    with RunSession(reuse_machines=False) as session:
        return session.run(config, matrix=matrix)
