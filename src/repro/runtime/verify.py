"""Post-distribution verification: did every processor get the right data?

Independent of which scheme ran, the contract is identical: processor ``r``
must end up holding the compression of exactly the local sparse array the
partition plan assigns it, with *local* indices.  :func:`verify_distribution`
recomputes that ground truth directly (host-side, no machine involved) and
compares; :func:`verify_all_schemes_agree` cross-checks several results
against each other.
"""

from __future__ import annotations

import numpy as np

from ..core.base import SchemeResult
from ..core.registry import get_compression
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix

__all__ = ["verify_distribution", "verify_all_schemes_agree"]


def verify_distribution(
    result: SchemeResult, matrix: COOMatrix, plan: PartitionPlan
) -> None:
    """Raise ``AssertionError`` unless every local result is exactly right."""
    if plan.n_procs != result.n_procs:
        raise ValueError("plan and result disagree on processor count")
    compression = get_compression(result.compression)
    for assignment, got in zip(plan, result.locals_):
        expected = compression.from_coo(assignment.extract_local(matrix))
        if got.shape != expected.shape:
            raise AssertionError(
                f"rank {assignment.rank}: local shape {got.shape}, "
                f"expected {expected.shape}"
            )
        for attr in ("indptr", "indices"):
            if not np.array_equal(getattr(got, attr), getattr(expected, attr)):
                raise AssertionError(
                    f"rank {assignment.rank}: {attr} mismatch "
                    f"({result.scheme}/{result.partition}/{result.compression})"
                )
        if not np.allclose(got.values, expected.values):
            raise AssertionError(f"rank {assignment.rank}: values mismatch")


def verify_all_schemes_agree(results: list[SchemeResult]) -> None:
    """Raise unless all results hold element-wise identical local arrays.

    All inputs must share partition/compression/processor count (they ran
    on the same problem); the *schemes* may differ — that is the point.
    """
    if len(results) < 2:
        raise ValueError("need at least two results to compare")
    first = results[0]
    for other in results[1:]:
        if (
            other.n_procs != first.n_procs
            or other.partition != first.partition
            or other.compression != first.compression
        ):
            raise ValueError("results are not comparable (different problem)")
        for rank, (a, b) in enumerate(zip(first.locals_, other.locals_)):
            same = (
                a.shape == b.shape
                and np.array_equal(a.indptr, b.indptr)
                and np.array_equal(a.indices, b.indices)
                and np.allclose(a.values, b.values)
            )
            if not same:
                raise AssertionError(
                    f"schemes {first.scheme} and {other.scheme} disagree on "
                    f"rank {rank}'s local array"
                )
