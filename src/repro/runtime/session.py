"""The reusable ``RunRequest → SchemeResult`` session object.

Every way of running a scheme — the CLI's ``run``, the table grids in
:mod:`repro.runtime.experiments`, the sweep orchestrator in
:mod:`repro.sweep` and any future serve path — funnels through one
:class:`RunSession`.  A session owns the *warm* state that used to be
rebuilt from scratch per call:

* the generated test matrices (one ``random_sparse`` sample per
  ``(shape, sparse_ratio, seed)``, LRU-bounded), so the paper's
  "same sample shared by all schemes in a cell" convention costs one
  generation instead of three;
* the simulated machines (one per ``(p, cost, backend, executor)``
  signature), so the process executor's rank workers stay alive across
  clean runs instead of being forked and torn down per cell.

Reuse can never change a result: a reused machine is :meth:`~repro.
machine.machine.Machine.reset` before every run (the documented
replay-identical operation), and any request that carries per-run
machine state — a fault injector, a recovery policy, an observability
recorder, active supervision or an explicit topology — gets a fresh
machine exactly as before.  ``tests/sweep/test_session.py`` pins the
equivalence against per-call :func:`~repro.runtime.driver.run_scheme`
runs on both executors.

``RunRequest`` is the declarative request record — it *is*
:class:`~repro.runtime.driver.ExperimentConfig`, re-exported under the
name the service/orchestration layers use.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from ..core.base import CompressedLocal, SchemeResult
from ..core.registry import get_compression, get_scheme
from ..faults.injector import FaultInjector
from ..machine.machine import Machine
from ..machine.topology import Topology
from ..partition.base import PartitionMethod, PartitionPlan
from ..sparse.coo import COOMatrix
from ..sparse.generators import random_sparse
from .driver import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.spans import Observability

__all__ = ["RunRequest", "RunSession"]

#: the declarative request record (one table/sweep cell); see module
#: docstring — the ``RunRequest → SchemeResult`` contract of ROADMAP 2/3
RunRequest = ExperimentConfig


class RunSession:
    """A warm, reusable ``RunRequest → SchemeResult`` entry point.

    Parameters
    ----------
    reuse_machines:
        ``False`` builds (and tears down) a fresh machine per run —
        exactly the historical per-call behaviour.  ``True`` (default)
        keeps one machine per ``(p, cost, backend, executor)`` signature
        warm between *clean* runs; requests with faults, recovery,
        observability, supervision or an explicit topology always get a
        fresh machine either way.
    matrix_cache_size:
        How many generated matrices to keep (LRU).  The table grids
        revisit the same ``(n, ratio, seed)`` once per scheme, so a
        handful of slots removes two thirds of the generation work.
    """

    def __init__(
        self, *, reuse_machines: bool = True, matrix_cache_size: int = 4
    ) -> None:
        if matrix_cache_size < 1:
            raise ValueError(
                f"matrix_cache_size must be >= 1, got {matrix_cache_size}"
            )
        self.reuse_machines = reuse_machines
        self._matrix_cache_size = matrix_cache_size
        self._matrices: OrderedDict[
            tuple[tuple[int, int], float, int], COOMatrix
        ] = OrderedDict()
        self._machines: dict[tuple[Any, ...], Machine] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # warm state
    # ------------------------------------------------------------------
    def matrix_for(self, request: RunRequest) -> COOMatrix:
        """The request's test sample, generated once per (shape, s, seed)."""
        key = ((request.n, request.n), request.sparse_ratio, request.seed)
        cached = self._matrices.get(key)
        if cached is not None:
            self._matrices.move_to_end(key)
            return cached
        matrix = random_sparse(key[0], request.sparse_ratio, seed=request.seed)
        self._matrices[key] = matrix
        while len(self._matrices) > self._matrix_cache_size:
            self._matrices.popitem(last=False)
        return matrix

    def _machine_for(
        self,
        request: RunRequest,
        n_procs: int,
        injector: FaultInjector | None,
        topology: Topology | None,
        obs: "Observability | None",
    ) -> tuple[Machine, bool]:
        """``(machine, reused)`` for one run; see class docstring."""
        from ..exec import current_supervision

        reusable = (
            self.reuse_machines
            and injector is None
            and request.recovery is None
            and topology is None
            and obs is None
            and request.supervise is None
            and current_supervision() is None
        )
        if not reusable:
            machine = Machine(
                n_procs, cost=request.cost, topology=topology, faults=injector,
                backend=request.backend, executor=request.executor, obs=obs,
            )
            return machine, False
        key = (n_procs, request.cost, request.backend, request.executor)
        machine = self._machines.get(key)
        if machine is None:
            machine = Machine(
                n_procs, cost=request.cost,
                backend=request.backend, executor=request.executor,
            )
            self._machines[key] = machine
        else:
            # the documented replay-identical operation: memories,
            # mailboxes, trace and worker stores are all cleared
            machine.reset()
        return machine, True

    # ------------------------------------------------------------------
    # the entry point
    # ------------------------------------------------------------------
    def run(
        self,
        request: RunRequest,
        *,
        matrix: COOMatrix | None = None,
        method: PartitionMethod | None = None,
        plan: PartitionPlan | None = None,
        topology: Topology | None = None,
        obs: "Observability | None" = None,
    ) -> SchemeResult:
        """Execute one request and return its :class:`SchemeResult`.

        ``matrix`` overrides the generated sample (the grids share one
        sample across schemes); ``method``/``plan``/``topology``/``obs``
        are the driver-level overrides :func:`~repro.runtime.driver.
        run_scheme` exposes, passed through unchanged.
        """
        if self._closed:
            raise RuntimeError("RunSession is closed")
        if matrix is None:
            matrix = self.matrix_for(request)
        if method is None:
            method = request.partition_method()
        if plan is None:
            plan = method.plan(matrix.shape, request.n_procs)
        injector = (
            FaultInjector(request.faults, seed=request.fault_seed)
            if request.faults is not None
            else None
        )
        machine, reused = self._machine_for(
            request, plan.n_procs, injector, topology, obs
        )
        comp: type[CompressedLocal] = get_compression(request.compression)
        from ..exec import use_supervision

        try:
            # use_supervision(None) is a no-op scope: the ambient default
            # (REPRO_SUPERVISE / set_default_supervision) stays in force
            with use_supervision(request.supervise):
                if request.recovery is not None:
                    if injector is None:
                        raise ValueError(
                            "recovery needs a fault plan (faults=...)"
                        )
                    from ..recovery.manager import run_with_recovery

                    return run_with_recovery(
                        get_scheme(request.scheme), machine, matrix, method,
                        comp, policy=request.recovery,
                    )
                return get_scheme(request.scheme).run(machine, matrix, plan, comp)
        finally:
            if not reused:
                machine.shutdown()  # rank workers die with the run

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down every warm machine (idempotent)."""
        for machine in self._machines.values():
            machine.shutdown()
        self._machines.clear()
        self._matrices.clear()
        self._closed = True

    def __enter__(self) -> "RunSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return (
            f"RunSession(machines={len(self._machines)}, "
            f"matrices={len(self._matrices)}, closed={self._closed})"
        )
