"""Reproductions of the paper's experiment grids (Tables 3, 4, 5).

Each published table varies the array size and the processor count for one
partition method (row / column / 2-D mesh), reports ``T_Distribution`` and
``T_Compression`` per scheme, with the CRS compression method and sparse
ratio 0.1.  :func:`reproduce_table` reruns the same grid on the simulated
machine; the same generated matrix is shared by all three schemes within a
cell, as on the real machine.

The full grids (n up to 2000, p up to 64) run in seconds; tests use reduced
grids via the ``sizes``/``proc_counts`` arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.base import SchemeResult
from ..faults.spec import FaultSpec
from ..faults.stats import FaultStats
from ..machine.cost_model import CostModel, sp2_cost_model
from .driver import ExperimentConfig
from .paper_results import PAPER_TABLES, TABLE3_SIZES, TABLE5_SIZES
from .session import RunSession

__all__ = ["TABLE_SPECS", "TableSpec", "TableReproduction", "reproduce_table", "SCHEMES_ORDER"]

SCHEMES_ORDER = ("sfc", "cfs", "ed")


@dataclass(frozen=True)
class TableSpec:
    """The grid of one published table."""

    table_id: str
    partition: str
    compression: str
    sizes: tuple[int, ...]
    proc_counts: tuple[int, ...]
    mesh_shapes: Mapping[int, tuple[int, int]] | None = None

    def mesh_shape_for(self, p: int) -> tuple[int, int] | None:
        return self.mesh_shapes.get(p) if self.mesh_shapes else None


TABLE_SPECS: dict[str, TableSpec] = {
    "table3": TableSpec(
        "table3", "row", "crs", tuple(TABLE3_SIZES), (4, 16, 32)
    ),
    "table4": TableSpec(
        "table4", "column", "crs", tuple(TABLE3_SIZES), (4, 16, 32)
    ),
    "table5": TableSpec(
        "table5",
        "mesh2d",
        "crs",
        tuple(TABLE5_SIZES),
        (4, 16, 64),
        mesh_shapes={4: (2, 2), 16: (4, 4), 64: (8, 8)},
    ),
}


@dataclass
class TableReproduction:
    """Measured grid for one table, aligned with the published numbers."""

    spec: TableSpec
    sizes: tuple[int, ...]
    proc_counts: tuple[int, ...]
    #: (p, scheme, n) -> SchemeResult
    cells: dict[tuple[int, str, int], SchemeResult] = field(default_factory=dict)

    def t(self, p: int, scheme: str, n: int, which: str) -> float:
        """Measured time of one cell (``which`` in {'t_distribution',
        't_compression', 't_total'})."""
        return getattr(self.cells[(p, scheme, n)], which)

    def series(self, p: int, scheme: str, which: str) -> list[float]:
        """One published-table row: times across all sizes."""
        return [self.t(p, scheme, n, which) for n in self.sizes]

    def paper_series(self, p: int, scheme: str, which: str) -> list[float] | None:
        """The published counterpart row (None for off-grid reductions)."""
        table = PAPER_TABLES.get(self.spec.table_id)
        if table is None or p not in table:
            return None
        full = table[p][scheme][which]
        ref_sizes = TABLE5_SIZES if self.spec.table_id == "table5" else TABLE3_SIZES
        try:
            return [full[ref_sizes.index(n)] for n in self.sizes]
        except ValueError:
            return None

    # -- shape checks the benches assert on --------------------------------
    def distribution_order_holds(self, p: int, n: int) -> bool:
        """Observation 1+2 of Section 5.1: ED < CFS < SFC in T_dist."""
        ed = self.t(p, "ed", n, "t_distribution")
        cfs = self.t(p, "cfs", n, "t_distribution")
        sfc = self.t(p, "sfc", n, "t_distribution")
        return ed < cfs < sfc

    def compression_order_holds(self, p: int, n: int) -> bool:
        """Remark 3's observed counterpart: SFC < CFS < ED in T_comp."""
        ed = self.t(p, "ed", n, "t_compression")
        cfs = self.t(p, "cfs", n, "t_compression")
        sfc = self.t(p, "sfc", n, "t_compression")
        return sfc < cfs < ed

    def ed_beats_cfs_overall(self, p: int, n: int) -> bool:
        """Remark 4 / Conclusion 3: ED total below CFS total."""
        return self.t(p, "ed", n, "t_total") < self.t(p, "cfs", n, "t_total")

    def fault_totals(self) -> dict[str, dict[str, int]]:
        """Fault counters merged over every cell of the grid (empty when
        the grid ran fault-free)."""
        return FaultStats.merge(
            [r.fault_summary for r in self.cells.values() if r.fault_summary]
        )


def reproduce_table(
    table_id: str,
    *,
    sizes: Sequence[int] | None = None,
    proc_counts: Sequence[int] | None = None,
    sparse_ratio: float = 0.1,
    cost: CostModel | None = None,
    seed: int = 2002,
    schemes: Iterable[str] = SCHEMES_ORDER,
    faults: FaultSpec | None = None,
    fault_seed: int = 0,
    backend: str | None = None,
    executor: str | None = None,
) -> TableReproduction:
    """Rerun one published table's grid on the simulated machine.

    ``faults`` re-derives the whole grid under a fault plan (every cell
    gets a fresh injector seeded with ``fault_seed`` so cells stay
    independent and reproducible) — the "Tables 3–5 under a failure rate
    f" extension.  ``backend`` selects the kernel backend every cell runs
    on and ``executor`` where each cell's rank tasks run (``None`` =
    process defaults); measured times are identical either way, only
    wall-clock differs.
    """
    spec = TABLE_SPECS[table_id]
    sizes = tuple(sizes) if sizes is not None else spec.sizes
    proc_counts = tuple(proc_counts) if proc_counts is not None else spec.proc_counts
    cost = cost if cost is not None else sp2_cost_model()
    repro = TableReproduction(spec=spec, sizes=sizes, proc_counts=proc_counts)
    # one warm session for the whole grid: the generated sample is shared
    # by all schemes in a cell (as on the real machine) and clean cells
    # reuse one machine per p instead of rebuilding Machine/kernel state
    # per cell (tests/sweep/test_session.py pins the byte-equivalence)
    with RunSession() as session:
        for p in proc_counts:
            for n in sizes:
                base = ExperimentConfig(
                    scheme="sfc",
                    n=n,
                    n_procs=p,
                    partition=spec.partition,
                    compression=spec.compression,
                    sparse_ratio=sparse_ratio,
                    seed=seed + n + 131 * p,
                    mesh_shape=spec.mesh_shape_for(p),
                    cost=cost,
                )
                matrix = session.matrix_for(base)
                for scheme in schemes:
                    cfg = ExperimentConfig(
                        scheme=scheme,
                        n=n,
                        n_procs=p,
                        partition=base.partition,
                        compression=base.compression,
                        sparse_ratio=sparse_ratio,
                        seed=base.seed,
                        mesh_shape=base.mesh_shape,
                        cost=cost,
                        faults=faults,
                        fault_seed=fault_seed,
                        backend=backend,
                        executor=executor,
                    )
                    repro.cells[(p, scheme, n)] = session.run(cfg, matrix=matrix)
    return repro
