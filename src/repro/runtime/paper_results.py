"""The paper's published measurements (Tables 3, 4 and 5), transcribed.

Every number is in milliseconds, exactly as printed.  Keys:
``PAPER_TABLES[table][p][scheme]["t_distribution"|"t_compression"]`` is the
list of times across the table's array sizes.

Transcription notes:

* Table 5's processor counts are the meshes 2×2, 4×4 and 8×8 (p = 4, 16,
  64) over array sizes 120–1920.
* The CFS ``T_Compression`` row is byte-identical across all three tables
  (4.573 … 507.399) even though Table 5 uses different array sizes; we
  transcribe as printed and note it in EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = ["TABLE3_SIZES", "TABLE5_SIZES", "PAPER_TABLE3", "PAPER_TABLE4", "PAPER_TABLE5", "PAPER_TABLES"]

#: array sizes (n of n×n) of Tables 3 and 4
TABLE3_SIZES = [200, 400, 800, 1000, 2000]
#: array sizes of Table 5 (2-D mesh partition)
TABLE5_SIZES = [120, 240, 480, 960, 1920]

_CFS_COMP = [4.573, 18.295, 73.183, 119.348, 507.399]

#: Table 3 — row partition method, CRS compression
PAPER_TABLE3 = {
    4: {
        "sfc": {
            "t_distribution": [5.648, 19.009, 68.798, 94.542, 383.718],
            "t_compression": [2.527, 7.604, 26.959, 38.778, 160.579],
        },
        "cfs": {
            "t_distribution": [4.119, 10.591, 31.377, 39.265, 134.291],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [1.716, 6.132, 18.781, 27.618, 103.443],
            "t_compression": [6.878, 21.001, 83.453, 127.398, 520.574],
        },
    },
    16: {
        "sfc": {
            "t_distribution": [7.234, 22.154, 71.642, 97.234, 388.184],
            "t_compression": [0.887, 2.380, 8.406, 12.647, 40.814],
        },
        "cfs": {
            "t_distribution": [4.120, 14.204, 48.825, 61.640, 187.761],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [3.302, 8.343, 21.625, 30.309, 106.922],
            "t_compression": [4.886, 19.575, 92.187, 146.024, 530.092],
        },
    },
    32: {
        "sfc": {
            "t_distribution": [8.676, 25.083, 74.066, 100.102, 392.763],
            "t_compression": [0.689, 2.069, 4.882, 8.179, 31.427],
        },
        "cfs": {
            "t_distribution": [6.542, 14.908, 54.463, 71.368, 197.496],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [4.704, 11.272, 24.049, 33.177, 111.235],
            "t_compression": [4.832, 17.964, 95.188, 147.834, 530.887],
        },
    },
}

#: Table 4 — column partition method, CRS compression
PAPER_TABLE4 = {
    4: {
        "sfc": {
            "t_distribution": [12.208, 45.155, 179.714, 292.231, 909.207],
            "t_compression": [1.914, 6.536, 24.003, 38.606, 147.746],
        },
        "cfs": {
            "t_distribution": [4.734, 14.787, 61.085, 84.134, 289.102],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [1.741, 6.182, 18.880, 27.742, 103.691],
            "t_compression": [6.763, 24.848, 97.887, 152.643, 597.112],
        },
    },
    16: {
        "sfc": {
            "t_distribution": [14.727, 47.457, 188.987, 301.999, 925.376],
            "t_compression": [0.704, 1.76, 7.260, 9.691, 38.179],
        },
        "cfs": {
            "t_distribution": [6.983, 17.173, 77.401, 109.220, 334.324],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [3.427, 8.593, 22.724, 32.433, 110.170],
            "t_compression": [7.711, 26.319, 108.886, 166.119, 630.521],
        },
    },
    32: {
        "sfc": {
            "t_distribution": [16.057, 48.399, 196.915, 310.999, 935.492],
            "t_compression": [0.561, 1.305, 5.188, 6.212, 22.273],
        },
        "cfs": {
            "t_distribution": [8.373, 18.970, 83.835, 126.788, 346.495],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [4.729, 10.022, 25.148, 35.301, 116.483],
            "t_compression": [8.099, 27.005, 115.503, 176.134, 644.641],
        },
    },
}

#: Table 5 — 2-D mesh partition method (2×2, 4×4, 8×8), CRS compression
PAPER_TABLE5 = {
    4: {
        "sfc": {
            "t_distribution": [11.191, 46.565, 162.632, 250.151, 902.477],
            "t_compression": [0.633, 2.789, 8.898, 32.556, 136.174],
        },
        "cfs": {
            "t_distribution": [3.498, 8.192, 32.737, 54.128, 200.717],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [1.659, 4.701, 16.718, 25.695, 100.251],
            "t_compression": [4.926, 19.861, 75.475, 123.114, 517.207],
        },
    },
    16: {
        "sfc": {
            "t_distribution": [14.522, 50.696, 170.702, 265.641, 914.282],
            "t_compression": [0.339, 0.998, 2.750, 9.792, 36.127],
        },
        "cfs": {
            "t_distribution": [4.303, 12.298, 44.391, 67.015, 220.96],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [3.702, 9.143, 23.209, 32.293, 110.89],
            "t_compression": [5.096, 20.367, 74.619, 133.49, 532.396],
        },
    },
    64: {
        "sfc": {
            "t_distribution": [17.785, 60.028, 183.293, 285.791, 938.527],
            "t_compression": [0.184, 0.588, 1.228, 5.376, 18.973],
        },
        "cfs": {
            "t_distribution": [6.155, 15.295, 53.006, 86.23, 245.821],
            "t_compression": list(_CFS_COMP),
        },
        "ed": {
            "t_distribution": [4.177, 10.093, 25.09, 34.649, 115.602],
            "t_compression": [6.249, 25.414, 82.027, 150.997, 570.591],
        },
    },
}

PAPER_TABLES = {"table3": PAPER_TABLE3, "table4": PAPER_TABLE4, "table5": PAPER_TABLE5}
