"""Multi-seed replication statistics for simulated experiments.

The paper reports single measurements; a careful reproduction quantifies
run-to-run variation.  On our simulator the only stochastic input is the
generated matrix, so replication over seeds measures exactly the
workload-sampling noise: rerun a configuration ``k`` times with different
seeds and report mean, standard deviation and extrema per scheme, plus how
often each claimed ordering held.

(For the paper's exact-count generator at fixed ``s`` the global nnz is
deterministic, so variation comes only from the nonzeros' *placement* —
the per-processor ``s'`` — which is why the spreads below are small and
the ordering frequencies are 100% at the paper's scales.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..machine.cost_model import CostModel, sp2_cost_model
from .driver import run_scheme
from ..sparse.generators import random_sparse

__all__ = ["ReplicationStats", "replicate"]


@dataclass(frozen=True)
class ReplicationStats:
    """Aggregates over one configuration's replications."""

    n: int
    n_procs: int
    partition: str
    compression: str
    replications: int
    #: scheme -> metric -> {mean, std, min, max}
    summary: dict
    #: fraction of replications in which each ordering held
    ordering_frequencies: dict

    def mean(self, scheme: str, metric: str = "t_total") -> float:
        return self.summary[scheme][metric]["mean"]

    def spread(self, scheme: str, metric: str = "t_total") -> float:
        """Coefficient of variation (std / mean)."""
        stats = self.summary[scheme][metric]
        return stats["std"] / stats["mean"] if stats["mean"] else 0.0


def replicate(
    n: int,
    n_procs: int,
    *,
    partition: str = "row",
    compression: str = "crs",
    sparse_ratio: float = 0.1,
    replications: int = 10,
    seeds: Sequence[int] | None = None,
    cost: CostModel | None = None,
) -> ReplicationStats:
    """Run all three schemes ``replications`` times over fresh matrices."""
    if replications <= 0:
        raise ValueError(f"replications must be positive, got {replications}")
    if seeds is None:
        seeds = range(replications)
    else:
        seeds = list(seeds)
        if len(seeds) != replications:
            raise ValueError(
                f"need {replications} seeds, got {len(seeds)}"
            )
    cost = cost if cost is not None else sp2_cost_model()
    metrics = ("t_distribution", "t_compression", "t_total")
    values: dict[str, dict[str, list[float]]] = {
        s: {m: [] for m in metrics} for s in ("sfc", "cfs", "ed")
    }
    orderings = {
        "dist_ed_cfs_sfc": 0,
        "comp_sfc_cfs_ed": 0,
        "ed_total_beats_cfs": 0,
    }
    for seed in seeds:
        matrix = random_sparse((n, n), sparse_ratio, seed=seed)
        results = {
            s: run_scheme(
                s, matrix, partition=partition, n_procs=n_procs,
                compression=compression, cost=cost,
            )
            for s in ("sfc", "cfs", "ed")
        }
        for s, r in results.items():
            for m in metrics:
                values[s][m].append(getattr(r, m))
        if (
            results["ed"].t_distribution
            < results["cfs"].t_distribution
            < results["sfc"].t_distribution
        ):
            orderings["dist_ed_cfs_sfc"] += 1
        if (
            results["sfc"].t_compression
            < results["cfs"].t_compression
            < results["ed"].t_compression
        ):
            orderings["comp_sfc_cfs_ed"] += 1
        if results["ed"].t_total < results["cfs"].t_total:
            orderings["ed_total_beats_cfs"] += 1

    summary = {
        s: {
            m: {
                "mean": float(np.mean(v)),
                "std": float(np.std(v)),
                "min": float(np.min(v)),
                "max": float(np.max(v)),
            }
            for m, v in by_metric.items()
        }
        for s, by_metric in values.items()
    }
    return ReplicationStats(
        n=n,
        n_procs=n_procs,
        partition=partition,
        compression=compression,
        replications=replications,
        summary=summary,
        ordering_frequencies={
            k: v / replications for k, v in orderings.items()
        },
    )
