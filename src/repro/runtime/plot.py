"""Terminal ASCII charts for sweep results.

No plotting dependency: a fixed-size character grid with one marker letter
per scheme (``S``/``C``/``E`` by default), a y-axis in the metric's
milliseconds and an x-axis over the swept values.  Enough to *see* the
crossovers the model predicts, directly in CI logs and example output.
"""

from __future__ import annotations

from ..model.sweep import SweepResult

__all__ = ["ascii_chart"]

_DEFAULT_MARKERS = {"sfc": "S", "cfs": "C", "ed": "E"}


def ascii_chart(
    result: SweepResult,
    *,
    width: int = 60,
    height: int = 16,
    markers: dict[str, str] | None = None,
) -> str:
    """Render a sweep as an ASCII chart (overlapping points show ``*``)."""
    if width < 2 or height < 2:
        raise ValueError("chart needs width >= 2 and height >= 2")
    markers = {**_DEFAULT_MARKERS, **(markers or {})}
    xs = result.series[0].x
    all_y = [y for s in result.series for y in s.y]
    y_lo, y_hi = min(all_y), max(all_y)
    x_lo, x_hi = min(xs), max(xs)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for series in result.series:
        mark = markers.get(series.label, series.label[:1].upper())
        for x, y in zip(series.x, series.y):
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = "*" if grid[row][col] not in (" ", mark) else mark

    label_w = 10
    lines = [
        f"{result.metric} (ms) vs {result.parameter} — "
        f"{result.partition} partition, {result.compression.upper()}"
    ]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:>{label_w}.3f}"
        elif i == height - 1:
            label = f"{y_lo:>{label_w}.3f}"
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(
        " " * label_w
        + f" {x_lo:<{width // 2}.4g}{x_hi:>{width // 2}.4g}"
    )
    legend = "  ".join(
        f"{markers.get(s.label, s.label[:1].upper())}={s.label.upper()}"
        for s in result.series
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
