"""Plain-text rendering of reproduced tables, paper-side-by-side.

Produces the same row layout as the paper's Tables 3–5: for each processor
count, per-scheme ``T_Distribution`` and ``T_Compression`` rows across the
array sizes, with the published number in parentheses when available.
"""

from __future__ import annotations

from typing import Sequence

from .experiments import SCHEMES_ORDER, TableReproduction

__all__ = ["format_table", "format_comparison_row", "shape_report"]


def _fmt(x: float) -> str:
    return f"{x:10.3f}"


def format_comparison_row(
    measured: Sequence[float], paper: Sequence[float] | None
) -> str:
    """One table line: measured (paper) per size."""
    if paper is None:
        return " ".join(_fmt(m) for m in measured)
    return " ".join(f"{m:10.3f} ({p:9.3f})" for m, p in zip(measured, paper))


def format_table(repro: TableReproduction, *, with_paper: bool = True) -> str:
    """Render a reproduced table as aligned text."""
    spec = repro.spec
    lines = [
        f"== {spec.table_id}: {spec.partition} partition, "
        f"{spec.compression.upper()} compression — simulated ms"
        + (" (paper ms)" if with_paper else ""),
        "   sizes: " + " ".join(f"{n:>10d}" for n in repro.sizes),
    ]
    for p in repro.proc_counts:
        lines.append(f"-- p = {p}")
        for scheme in SCHEMES_ORDER:
            for which, label in (
                ("t_distribution", "T_dist"),
                ("t_compression", "T_comp"),
            ):
                measured = repro.series(p, scheme, which)
                paper = repro.paper_series(p, scheme, which) if with_paper else None
                lines.append(
                    f"   {scheme.upper():>3} {label}: "
                    + format_comparison_row(measured, paper)
                )
    return "\n".join(lines)


def shape_report(repro: TableReproduction) -> dict[str, float]:
    """Fractions of cells where each published ordering holds.

    The reproduction's success criterion (DESIGN.md §4) is about these
    shapes, not absolute ms.
    """
    cells = [(p, n) for p in repro.proc_counts for n in repro.sizes]
    if not cells:
        raise ValueError("empty reproduction")
    dist = sum(repro.distribution_order_holds(p, n) for p, n in cells)
    comp = sum(repro.compression_order_holds(p, n) for p, n in cells)
    ed_cfs = sum(repro.ed_beats_cfs_overall(p, n) for p, n in cells)
    total = len(cells)
    return {
        "cells": total,
        "distribution_order_ed_cfs_sfc": dist / total,
        "compression_order_sfc_cfs_ed": comp / total,
        "ed_beats_cfs_overall": ed_cfs / total,
    }
