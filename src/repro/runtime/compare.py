"""One-call scheme comparison on a shared problem.

Every example, test and bench wants the same thing: run SFC, CFS and ED on
*the same* matrix and plan, check they agree, and look at the times.
:func:`compare_schemes` packages that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.base import SchemeResult
from ..core.registry import get_scheme
from ..machine.cost_model import CostModel
from ..machine.machine import Machine
from ..machine.topology import Topology
from ..partition.base import PartitionMethod, PartitionPlan
from ..sparse.coo import COOMatrix
from .driver import run_scheme
from .verify import verify_all_schemes_agree, verify_distribution

__all__ = ["SchemeComparison", "compare_schemes"]


@dataclass(frozen=True)
class SchemeComparison:
    """Results of all three schemes on one problem, already verified."""

    results: dict[str, SchemeResult]

    def __getitem__(self, scheme: str) -> SchemeResult:
        return self.results[scheme]

    @property
    def winner_overall(self) -> str:
        """Scheme with the smallest total time."""
        return min(self.results, key=lambda s: self.results[s].t_total)

    @property
    def winner_distribution(self) -> str:
        return min(self.results, key=lambda s: self.results[s].t_distribution)

    def speedup_over(self, baseline: str, metric: str = "t_distribution") -> dict[str, float]:
        """Each scheme's speedup relative to ``baseline`` on ``metric``."""
        base = getattr(self.results[baseline], metric)
        return {
            s: base / getattr(r, metric) if getattr(r, metric) else float("inf")
            for s, r in self.results.items()
        }

    def summary(self) -> str:
        lines = [self.results[s].summary() for s in ("sfc", "cfs", "ed")]
        lines.append(
            f"winner: {self.winner_overall.upper()} overall, "
            f"{self.winner_distribution.upper()} in distribution"
        )
        return "\n".join(lines)


def compare_schemes(
    matrix: COOMatrix,
    *,
    partition: str | PartitionMethod = "row",
    n_procs: int = 4,
    compression: str = "crs",
    cost: CostModel | None = None,
    topology: Topology | None = None,
    plan: PartitionPlan | None = None,
    verify: bool = True,
) -> SchemeComparison:
    """Run SFC, CFS and ED on one problem and (optionally) verify them.

    ``verify=True`` asserts all three leave identical compressed locals on
    every processor and that those match a direct host-side computation.
    """
    if plan is None:
        from ..core.registry import get_partition

        method = (
            partition
            if isinstance(partition, PartitionMethod)
            else get_partition(partition)
        )
        plan = method.plan(matrix.shape, n_procs)
    results = {
        scheme: run_scheme(
            scheme,
            matrix,
            plan=plan,
            compression=compression,
            cost=cost,
            topology=topology,
        )
        for scheme in ("sfc", "cfs", "ed")
    }
    if verify:
        verify_all_schemes_agree(list(results.values()))
        verify_distribution(results["ed"], matrix, plan)
    return SchemeComparison(results=results)
