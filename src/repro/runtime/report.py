"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Run as ``python -m repro.runtime.report [output-path]``.  Executes the full
published grids on the simulated SP2, regenerates the worked-example
figures, evaluates the analytic tables, and writes a markdown report with
every measured number beside its published counterpart plus the shape
verdicts.  This is the script that produced the repository's
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import sys
import time

from ..core import EncodedBuffer, conversion_for
from ..data import (
    FIGURE4_CRS,
    FIGURE5_CCS_GLOBAL,
    FIGURE7_SPECIAL_BUFFERS,
    N_PROCS,
    sparse_array_A,
)
from ..model import ProblemSpec, remark5_thresholds, table1_cfs, table1_ed, table1_sfc
from ..partition import RowPartition
from ..sparse import CCSMatrix, CRSMatrix
from .experiments import reproduce_table
from .tables import shape_report

__all__ = ["build_report"]


def _md_table(repro) -> list[str]:
    lines = []
    header = "| p | scheme | cost | " + " | ".join(
        f"n={n}" for n in repro.sizes
    ) + " |"
    sep = "|" + "---|" * (3 + len(repro.sizes))
    lines.append(header)
    lines.append(sep)
    for p in repro.proc_counts:
        for scheme in ("sfc", "cfs", "ed"):
            for which, label in (
                ("t_distribution", "T_dist"),
                ("t_compression", "T_comp"),
            ):
                measured = repro.series(p, scheme, which)
                paper = repro.paper_series(p, scheme, which)
                cells = []
                for k, m in enumerate(measured):
                    ref = paper[k] if paper else None
                    cells.append(
                        f"{m:.1f} *(paper {ref:.1f})*" if ref is not None else f"{m:.1f}"
                    )
                lines.append(
                    f"| {p} | {scheme.upper()} | {label} | " + " | ".join(cells) + " |"
                )
    return lines


def _verdicts(repro) -> list[str]:
    r = shape_report(repro)
    return [
        f"- T_dist ordering ED < CFS < SFC: **{r['distribution_order_ed_cfs_sfc']:.0%}** of cells",
        f"- T_comp ordering SFC < CFS < ED: **{r['compression_order_sfc_cfs_ed']:.0%}** of cells",
        f"- ED beats CFS overall: **{r['ed_beats_cfs_overall']:.0%}** of cells",
    ]


def _figures_section() -> list[str]:
    A = sparse_array_A()
    plan = RowPartition().plan(A.shape, N_PROCS)
    locals_ = plan.extract_all(A)
    fig4_ok = all(
        (c.RO.tolist(), c.CO.tolist(), c.VL.tolist()) == tuple(exp)
        for c, exp in zip((CRSMatrix.from_coo(l) for l in locals_), FIGURE4_CRS)
    )
    fig5_ok = True
    fig7_ok = True
    for a, loc, exp5, exp7 in zip(plan, locals_, FIGURE5_CCS_GLOBAL, FIGURE7_SPECIAL_BUFFERS):
        ccs = CCSMatrix.from_coo(loc)
        conv = conversion_for(a, "ccs")
        if (
            ccs.RO.tolist() != exp5[0]
            or conv.to_global(ccs.indices).tolist() != exp5[1]
            or ccs.VL.tolist() != exp5[2]
        ):
            fig5_ok = False
        buf, _ = EncodedBuffer.encode(loc, "ccs", conv)
        if buf.to_paper_format() != [float(x) for x in exp7]:
            fig7_ok = False
    mark = lambda ok: "**exact match**" if ok else "MISMATCH"
    return [
        "| Figure | Content | Result |",
        "|---|---|---|",
        "| 1–3 | 10×8 array A, row partition, received local arrays | "
        + mark(True) + " (pinned literals) |",
        f"| 4 | CRS RO/CO/VL of each local array | {mark(fig4_ok)} |",
        f"| 5 | CFS wire content (CCS, global CO) + Case 3.2.2 | {mark(fig5_ok)} |",
        f"| 6–7 | ED special buffers + Case 3.3.2 decode | {mark(fig7_ok)} |",
    ]


def _observability_section() -> list[str]:
    """Comm matrix + top-5 spans for one Table-4 cell (ED, n=1000, p=4).

    The same seed/cost recipe ``reproduce_table("table4")`` uses for that
    cell, re-run with an :class:`~repro.obs.Observability` recorder
    attached — the recorder self-verifies its totals against the trace
    ledger before anything is printed (docs/OBSERVABILITY.md).
    """
    from ..obs import Observability
    from .driver import ExperimentConfig, run_config

    n, p = 1000, 4
    obs = Observability(scheme="ed", n=n)
    cfg = ExperimentConfig(
        scheme="ed", n=n, n_procs=p, partition="column",
        compression="crs", seed=2002 + n + 131 * p,
    )
    result = run_config(cfg)  # unobserved twin: proves byte transparency
    # run_config has no obs knob (tables never record); call the driver
    from .driver import run_scheme as _run

    r = _run(
        "ed", cfg.make_matrix(), partition="column", n_procs=p,
        compression="crs", obs=obs,
    )
    same = abs(r.t_total - result.t_total) < 1e-12
    lines = [
        f"Cell: Table 4, ED, column partition, CRS, n={n}, p={p} "
        f"(seed {cfg.seed}).  Observed `T_total` = {r.t_total:.3f} ms — "
        + (
            "**identical** to the unobserved run"
            if same
            else f"unobserved run {result.t_total:.3f} ms"
        )
        + ", the byte-transparency contract in action.",
        "",
        "Communication matrix (array elements on the wire, per "
        "sender → receiver; the host serialises every send, so only the "
        "host row is populated in a fault-free distribution):",
        "",
    ]
    matrix = obs.comm_matrix()
    dsts = sorted({d for row in matrix.values() for d in row}, key=int)
    lines.append("| src\\dst | " + " | ".join(dsts) + " | total |")
    lines.append("|---|" + "---|" * (len(dsts) + 1))
    for src, row in sorted(matrix.items()):
        cells = [str(row.get(d, 0)) for d in dsts]
        lines.append(
            f"| {src} | " + " | ".join(cells) + f" | {sum(row.values())} |"
        )
    lines.append("")
    lines.append("Top 5 spans by simulated time:")
    lines.append("")
    lines.append("| span | labels | sim ms | events |")
    lines.append("|---|---|---|---|")
    for s in obs.top_spans(5):
        labels = ", ".join(f"{k}={v}" for k, v in sorted(s.labels.items()))
        lines.append(
            f"| `{s.name}` | {labels or '—'} | {s.sim_elapsed_ms:.3f} | "
            f"{s.n_events} |"
        )
    lines.append("")
    lines.append(
        "Regenerate interactively (any output flag turns the recorder "
        "on): `python -m repro run --n 1000 --procs 4 --scheme ed "
        "--partition column --log-out run.jsonl` then "
        "`python -m repro inspect run.jsonl --top 5`."
    )
    return lines


def build_report(store: str | None = None) -> str:
    """Build the full EXPERIMENTS.md text.

    ``store`` names a persistent sweep store for the Tables 3–5 grids:
    the paper-tables manifest is resumed into it (no-op when complete)
    and the table sections render exclusively from its records.  ``None``
    uses a temporary store discarded after rendering — same pipeline,
    nothing re-run on disk next time.
    """
    t0 = time.time()
    out: list[str] = []
    out.append("# EXPERIMENTS — paper vs. this reproduction")
    out.append("")
    out.append(
        "Generated by `python -m repro.runtime.report` on the simulated "
        "IBM SP2 (cost model: `T_Startup` = 40 µs, `T_Data` = 0.137 µs/element, "
        "`T_Operation` = `T_Data`/1.2 — the ratio the authors estimate in "
        "Section 5.1).  All times in milliseconds.  Absolute numbers are "
        "*simulated*; the reproduction criterion is the paper's orderings "
        "and crossovers (DESIGN.md §4), which are asserted by "
        "`benchmarks/`."
    )
    out.append("")

    out.append("## Figures 1–7 (worked example)")
    out.append("")
    out.extend(_figures_section())
    out.append("")

    out.append("## Tables 1–2 (analytic cost model)")
    out.append("")
    spec = ProblemSpec(n=1000, p=16, s=0.1)
    sfc, cfs, ed = table1_sfc(spec), table1_cfs(spec), table1_ed(spec)
    out.append(
        "Transcribed literally in `repro.model.tables`; the repo's general "
        "model (`repro.model.formulas.predict`) equals them term-by-term "
        "(tests/model/test_tables.py).  Sample evaluation at n=1000, p=16, "
        "s=0.1:"
    )
    out.append("")
    out.append("| scheme | T_dist (ms) | T_comp (ms) |")
    out.append("|---|---|---|")
    for name, (d, c) in (("SFC", sfc), ("CFS", cfs), ("ED", ed)):
        out.append(f"| {name} | {d:.2f} | {c:.2f} |")
    ed_thr, cfs_thr = remark5_thresholds(spec, "row")
    out.append("")
    out.append(
        f"Remark 5 thresholds at s=0.1 (row): ED {ed_thr:.4f} (= 13/8), "
        f"CFS {cfs_thr:.4f} (= 15/8) — matching the fractions printed in "
        "Section 5.1."
    )
    out.append("")
    out.append(
        "**Erratum found during transcription:** Table 2's CFS row prints "
        "the transmission term as `(2n²s + n + p)·T_Data`, but the packed "
        "CCS buffers under a row partition carry an `RO` of length `n+1` "
        "*per processor*: the self-consistent wire size is "
        "`(2n²s + pn + p)` — which is what the same cell's `T_Operation` "
        "term and the ED row of the same table use.  We implement the "
        "self-consistent reading and expose the printed one as "
        "`table2_cfs(spec, as_printed=True)`."
    )
    out.append("")

    # Tables 3-5: run the declarative paper-tables manifest into a sweep
    # store (resume = a complete store renders without re-running a cell)
    # and build every table exclusively from the committed records.
    import tempfile
    from pathlib import Path

    from ..sweep import paper_tables_manifest, run_sweep, table_from_store

    manifest = paper_tables_manifest()
    t_sweep = time.time()
    with tempfile.TemporaryDirectory() as scratch:
        store_path = (
            Path(store) if store is not None else Path(scratch) / "paper-tables.jsonl"
        )
        sweep_report = run_sweep(manifest, store_path, resume=True)
    records = sweep_report.records
    t_sweep = time.time() - t_sweep

    for table_id, title, para in (
        (
            "table3",
            "Table 3 (row partition, CRS, s = 0.1)",
            "Key published finding reproduced: ED wins every distribution, "
            "but the SP2's T_Data/T_Operation ≈ 1.2 sits *below* the 13/8 "
            "threshold, so **SFC wins overall on the row partition** — in "
            "the paper's numbers and in ours.",
        ),
        (
            "table4",
            "Table 4 (column partition, CRS, s = 0.1)",
            "Column blocks are strided in row-major storage, so SFC pays a "
            "dense gather (published SFC column T_dist ≈ 2.4× its row "
            "T_dist; ours ≈ 2.2×).  The Remark-5 thresholds drop to 5/8 and "
            "3/8, so **CFS and ED beat SFC overall**, as published.",
        ),
        (
            "table5",
            "Table 5 (2-D mesh partition, CRS, s = 0.1; meshes 2×2, 4×4, 8×8)",
            "All three published conclusions hold at once: ED < CFS < SFC "
            "in distribution, SFC < CFS < ED in compression, and overall "
            "**ED > CFS > SFC**.",
        ),
    ):
        repro = table_from_store(records, table_id)
        out.append(f"## {title}")
        out.append("")
        out.append(para)
        out.append("")
        out.extend(_md_table(repro))
        out.append("")
        out.extend(_verdicts(repro))
        out.append(
            f"- rendered from the sweep result store "
            f"({sweep_report.executed} cell(s) simulated in "
            f"{t_sweep:.1f}s wall-clock, {sweep_report.skipped} reused)"
        )
        out.append("")

    out.append("## Extensions beyond the paper (measured)")
    out.append("")
    # JDS future work
    from ..core import run_jds_scheme
    from ..machine.machine import Machine
    from ..sparse.generators import paper_test_array

    jds_matrix = paper_test_array(400, seed=5)
    jds_plan = RowPartition().plan(jds_matrix.shape, 8)
    jds_rows = []
    for scheme in ("sfc", "cfs", "ed"):
        machine = Machine(8)
        r = run_jds_scheme(scheme, machine, jds_matrix, jds_plan)
        jds_rows.append((scheme, r))
    out.append(
        "**Future work (1) — JDS compression** (n=400, p=8, s=0.1, row "
        "partition): the orderings survive the change of compression method."
    )
    out.append("")
    out.append("| scheme | T_dist (ms) | T_comp (ms) | wire (elements) |")
    out.append("|---|---|---|---|")
    for scheme, r in jds_rows:
        out.append(
            f"| {scheme.upper()} | {r.t_distribution:.3f} | "
            f"{r.t_compression:.3f} | {r.wire_elements} |"
        )
    out.append("")

    # EKMR future work
    from ..ekmr import SparseTensor, distribute_tensor

    tensor = SparseTensor.random((32, 48, 64), 0.05, seed=1)
    out.append(
        "**Future work (2) — EKMR tensors** (32×48×64, s=0.05, p=8): the "
        "schemes run unchanged on the EKMR image."
    )
    out.append("")
    out.append("| scheme | T_dist (ms) | T_comp (ms) |")
    out.append("|---|---|---|")
    for scheme in ("sfc", "cfs", "ed"):
        d = distribute_tensor(tensor, scheme=scheme, n_procs=8)
        out.append(
            f"| {scheme.upper()} | {d.result.t_distribution:.3f} | "
            f"{d.result.t_compression:.3f} |"
        )
    out.append("")

    # redistribution
    from ..core import get_compression, get_scheme, redistribute
    from ..partition import Mesh2DPartition

    rd_matrix = paper_test_array(400, seed=9)
    row_plan = RowPartition().plan(rd_matrix.shape, 8)
    mesh_plan = Mesh2DPartition().plan(rd_matrix.shape, 8)
    machine = Machine(8)
    get_scheme("ed").run(machine, rd_matrix, row_plan, get_compression("crs"))
    machine.trace.clear()
    rd = redistribute(machine, row_plan, mesh_plan, get_compression("crs"))
    fresh = Machine(8)
    fr = get_scheme("ed").run(fresh, rd_matrix, mesh_plan, get_compression("crs"))
    out.append(
        f"**Related work [3] — redistribution** (row → 2×4 mesh, n=400, "
        f"p=8): {rd.t_redistribution:.3f} ms over {rd.messages} "
        f"processor-to-processor messages ({rd.elements_moved} elements), "
        f"vs {fr.t_distribution:.3f} ms for a fresh host distribution — and "
        "the array never returns to the host."
    )
    out.append("")

    # fault injection / reliable delivery
    from ..faults import FaultSpec

    fault_spec = FaultSpec.lossy(0.05)
    fault_sizes = (200, 400)
    clean = reproduce_table("table3", sizes=fault_sizes, proc_counts=(4,))
    lossy = reproduce_table(
        "table3", sizes=fault_sizes, proc_counts=(4,),
        faults=fault_spec, fault_seed=2002,
    )
    out.append(
        "**Reliability extension — Table 3 under failure rate f = 0.05** "
        "(drop 5%, duplicate/reorder/corrupt 2.5%, deterministic seed "
        "2002): every resend is charged `T_Startup + m·T_Data·hops` plus "
        "an exponential-backoff timeout through the same cost model, so "
        "the retry tax is directly comparable to the fault-free numbers."
    )
    out.append("")
    out.append("| scheme | n | T_total clean (ms) | T_total lossy (ms) | inflation |")
    out.append("|---|---|---|---|---|")
    for scheme in ("sfc", "cfs", "ed"):
        for n in fault_sizes:
            tc = clean.t(4, scheme, n, "t_total")
            tl = lossy.t(4, scheme, n, "t_total")
            out.append(
                f"| {scheme.upper()} | {n} | {tc:.3f} | {tl:.3f} | "
                f"{tl / tc:.2f}× |"
            )
    out.append("")
    totals = lossy.fault_totals()
    for phase, bucket in totals.items():
        counters = ", ".join(f"{k} {v}" for k, v in bucket.items())
        out.append(f"- {phase}: {counters}")
    out.append(
        "- final local arrays are identical to the fault-free run in "
        "every cell (reliable delivery is exactly-once after dedup; "
        "chaos suite: `pytest -m chaos`)"
    )
    out.append("")

    # fail-stop recovery / degraded mode
    from ..faults import FailStopSpec
    from .driver import run_scheme

    fs_matrix = paper_test_array(400, seed=11)
    kill_lists = {0: (), 1: (3,), 2: (1, 5), 4: (1, 3, 5, 6)}
    out.append(
        "**Robustness extension — degraded-mode cost vs. failed ranks** "
        "(n=400, p=8, row partition, CRS, `detect_after` = 3, doomed "
        "ranks dead on arrival): each cell is the end-to-end `T_total` "
        "(ms) including the missed-ack detection timeouts and all "
        "recovery traffic, charged through the same SP2 cost model.  "
        "`host-resend` re-partitions over the survivors and re-drives "
        "the whole scheme from the host; `peer-redistribute` host-"
        "simulates the dead slots, checkpoints, and lets the survivors "
        "absorb the lost partition peer-to-peer."
    )
    out.append("")
    n_dead_cols = sorted(kill_lists)
    out.append(
        "| scheme | policy | "
        + " | ".join(f"{k} failed" for k in n_dead_cols)
        + " |"
    )
    out.append("|" + "---|" * (2 + len(n_dead_cols)))
    for scheme in ("sfc", "cfs", "ed"):
        for policy in ("host-resend", "peer-redistribute"):
            cells = []
            for k in n_dead_cols:
                spec = FaultSpec(
                    fail_stop=FailStopSpec(dead_ranks=kill_lists[k])
                )
                r = run_scheme(
                    scheme,
                    fs_matrix,
                    partition="row",
                    n_procs=8,
                    compression="crs",
                    faults=spec,
                    fault_seed=2002,
                    recovery=policy,
                )
                rs = r.recovery_summary
                extra = (
                    f" *(+{rs.recovery_time_ms:.2f} rec)*"
                    if rs is not None and rs.failed
                    else ""
                )
                cells.append(f"{r.t_total:.3f}{extra}")
            out.append(
                f"| {scheme.upper()} | {policy} | " + " | ".join(cells) + " |"
            )
    out.append("")
    out.append(
        "- *(+x rec)* is the portion of the cell spent on recovery "
        "(detection timeouts + degraded re-distribution) after the "
        "first death was observed."
    )
    out.append(
        "- invariant (chaos suite, `pytest tests/recovery`): for every "
        "cell the survivors' compressed locals are byte-identical to a "
        "fault-free run of the same scheme on the surviving membership, "
        "and the failed cells cost strictly more than that fault-free "
        "run."
    )
    out.append("")

    out.append("## Observability (one Table-4 cell under the recorder)")
    out.append("")
    out.extend(_observability_section())
    out.append("")

    out.append("## Transcription notes on the published tables")
    out.append("")
    out.append(
        "- The paper's CFS `T_Compression` row is byte-identical across "
        "Tables 3, 4 and 5 (4.573 … 507.399 ms) even though Table 5 uses "
        "different array sizes (120–1920 vs 200–2000); we transcribe as "
        "printed (`repro.runtime.paper_results`) and note it here.  Our "
        "measured CFS compression for Table 5 differs accordingly "
        "(it tracks n², as the model says it must)."
    )
    out.append(
        "- Table 5's processor-count labels are garbled in available "
        "copies; they are the meshes 2×2, 4×4 and 8×8 (p = 4, 16, 64), "
        "consistent with the surrounding text."
    )
    out.append(
        "- In the figures, `RO` counts positions from 1 while `CO` holds "
        "0-based indices (Figure 4's P3 prints `CO = 1 2 4 0 3 6`); the "
        "repo mirrors both conventions in its paper-view properties."
    )
    out.append("")
    out.append(f"_Total report generation time: {time.time() - t0:.1f}s._")
    out.append("")
    return "\n".join(out)


def main(argv: list[str]) -> int:
    rest = list(argv[1:])
    store: str | None = None
    if "--store" in rest:
        at = rest.index("--store")
        if at + 1 >= len(rest):
            print("error: --store needs a RESULTS.jsonl path")
            return 2
        store = rest[at + 1]
        del rest[at : at + 2]
    path = rest[0] if rest else "EXPERIMENTS.md"
    report = build_report(store=store)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(report)
    print(f"wrote {path} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
