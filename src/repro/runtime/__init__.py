"""Experiment harness: drivers, table grids, rendering, verification."""

from .compare import SchemeComparison, compare_schemes
from .driver import ExperimentConfig, run_config, run_scheme
from .experiments import (
    SCHEMES_ORDER,
    TABLE_SPECS,
    TableReproduction,
    TableSpec,
    reproduce_table,
)
from .paper_results import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLES,
    TABLE3_SIZES,
    TABLE5_SIZES,
)
from .plot import ascii_chart
from .session import RunRequest, RunSession
from .stats import ReplicationStats, replicate
from .tables import format_comparison_row, format_table, shape_report
from .verify import verify_all_schemes_agree, verify_distribution

__all__ = [
    "ExperimentConfig",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLES",
    "ReplicationStats",
    "RunRequest",
    "RunSession",
    "SchemeComparison",
    "SCHEMES_ORDER",
    "TABLE3_SIZES",
    "TABLE5_SIZES",
    "TABLE_SPECS",
    "TableReproduction",
    "TableSpec",
    "ascii_chart",
    "compare_schemes",
    "format_comparison_row",
    "format_table",
    "replicate",
    "reproduce_table",
    "run_config",
    "run_scheme",
    "shape_report",
    "verify_all_schemes_agree",
    "verify_distribution",
]
