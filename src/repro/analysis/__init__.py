"""``reprolint`` — the repo's project-specific static-analysis engine.

The repo's headline guarantees (byte-identical wire formats across kernel
backends, cost charges that exactly equal trace breakdowns, the paper's
legal phase orderings for SFC/CFS/ED) are enforced *dynamically* by golden
fixtures and ``verify_against_trace``.  This package enforces the same
invariants *statically*, at review time, over the ``ast`` of every source
file — so a PR that calls ``np.`` directly in a kernel-boundary module or
sends bytes without charging the cost model fails ``repro lint`` before a
fixture ever has to catch it.

Zero dependencies beyond the standard library: the engine is plain
``ast`` walking plus a rule registry (:mod:`repro.analysis.engine`), a
committed project configuration of per-rule scopes and allowlists
(:mod:`repro.analysis.config`), a cross-file symbol table + call graph
for the interprocedural tier (:mod:`repro.analysis.callgraph`) and
eleven shipped rules (:mod:`repro.analysis.rules`):

========  =============================================================
RL001     kernel-boundary — no direct numpy calls in backend-dispatched
          modules (PR 3's byte-identity contract)
RL002     cost-accounting — no mailbox/transport access outside
          ``machine/``; all sends/receives ride the charged API
RL003     phase-protocol — schemes follow the paper-legal phase order
          partition → {compress|encode}? → distribute →
          {decompress|decode}? (§3.1–3.3)
RL004     determinism — no wall clocks, unseeded RNGs or set-iteration
          order in wire-format/cost-model modules
RL005     obs-transparency — ``obs.span`` only as a context manager; no
          module-level mutable obs state outside ``obs/``
RL006     exit-contract — CLI error paths print one line and exit 2
RL007     async-blocking — no transitively-blocking call reachable from
          a ``service/`` coroutine except via ``run_in_executor``
          (interprocedural, via the call graph)
RL008     async-loop-liveness — every ``while`` in an ``async def``
          awaits on every continuing path (the PR 9 starvation shape)
RL009     shm-lifecycle — ``SharedMemory`` create/attach pairs with a
          ``finally:`` close or a segment-ledger registration
RL010     rank-task-purity — ``@rank_task`` bodies stay pure w.r.t.
          charge replay (no globals, clock reads, global RNG, obs)
RL011     fork-safety — no thread creation in fork-spawning modules; no
          ``os.fork`` reachable from async contexts
========  =============================================================

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, the call-graph
resolution policy, the pragma policy (``# reprolint: disable=RLxxx``)
and how to add a rule.  :mod:`repro.analysis.sarif` exports findings as
SARIF 2.1.0 for GitHub code scanning (``repro lint --sarif``).
"""

from .config import project_config
from .diagnostics import Diagnostic
from .engine import (
    FileContext,
    LintConfig,
    LintResult,
    Rule,
    all_rules,
    count_pragmas,
    get_rule,
    lint_paths,
    register_rule,
)

__all__ = [
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "count_pragmas",
    "get_rule",
    "lint_paths",
    "project_config",
    "register_rule",
]

# importing the rules package populates the registry as a side effect
from . import rules as _rules  # noqa: E402,F401  (registration import)
