"""Diagnostic records and their rendering (text + JSON).

A :class:`Diagnostic` is one finding at one source location.  The text
form is the classic ``path:line:col: CODE message`` that editors and CI
log-scrapers parse; line numbers are 1-based and columns 0-based, exactly
as the :mod:`ast` module reports them, so the location is byte-offset
accurate against the file on disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule finding at one source location.

    Attributes
    ----------
    path:
        Repo-root-relative posix path of the offending file.
    line:
        1-based line number (``ast`` convention).
    col:
        0-based column offset (``ast`` convention).
    code:
        The rule code (``"RL001"`` … ``"RL011"``).
    message:
        What invariant the line breaks.
    hint:
        A fix-it: the smallest change that restores the invariant.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def render(self) -> str:
        """``path:line:col: CODE message [hint: …]`` (one line)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (the ``repro lint --json`` schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }
