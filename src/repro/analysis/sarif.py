"""SARIF 2.1.0 export for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the interchange
JSON that GitHub code scanning ingests: uploading one file from the CI
``lint`` job turns every reprolint diagnostic into an inline PR
annotation with the rule's help text attached.  The exporter maps:

* each registered rule → a ``reportingDescriptor`` in the tool driver
  (plus the ``RL000`` pseudo-rule for parse errors);
* each diagnostic → a ``result`` with a ``physicalLocation`` whose URI
  is the repo-relative path (what GitHub expects for checkout-rooted
  uploads) — SARIF columns are 1-based, reprolint's are 0-based, hence
  the ``col + 1``;
* pragma-suppressed findings → results carrying an ``inSource``
  suppression, so the dashboard shows them as reviewed, not fixed.

Only stdlib ``json`` is involved; the schema subset used here is the
one ``github/codeql-action/upload-sarif`` validates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .diagnostics import Diagnostic
from .engine import LintResult, all_rules

__all__ = ["to_sarif", "write_sarif"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: parse failures are reported under this pseudo-rule
_PARSE_RULE = {
    "id": "RL000",
    "name": "parse-error",
    "shortDescription": {"text": "file failed to parse"},
    "help": {"text": "fix the syntax error; nothing else was checked"},
    "defaultConfiguration": {"level": "error"},
}


def _rule_descriptors() -> list[dict[str, Any]]:
    descriptors: list[dict[str, Any]] = [_PARSE_RULE]
    for rule in all_rules():
        descriptors.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "help": {"text": f"protects: {rule.protects}"},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _result(
    diag: Diagnostic, rule_index: dict[str, int], *, suppressed: bool
) -> dict[str, Any]:
    text = diag.message if not diag.hint else f"{diag.message} ({diag.hint})"
    payload: dict[str, Any] = {
        "ruleId": diag.code,
        "level": "error",
        "message": {"text": text},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.path},
                    "region": {
                        "startLine": diag.line,
                        "startColumn": diag.col + 1,
                    },
                }
            }
        ],
    }
    if diag.code in rule_index:
        payload["ruleIndex"] = rule_index[diag.code]
    if suppressed:
        payload["suppressions"] = [{"kind": "inSource"}]
    return payload


def to_sarif(result: LintResult) -> dict[str, Any]:
    """The SARIF 2.1.0 log document for one lint run."""
    rules = _rule_descriptors()
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = [
        _result(d, rule_index, suppressed=False)
        for d in (*result.parse_errors, *result.diagnostics)
    ]
    results.extend(
        _result(d, rule_index, suppressed=True) for d in result.suppressed
    )
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": "1.0.0",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def write_sarif(result: LintResult, path: Path) -> None:
    """Serialise ``result`` as SARIF to ``path``."""
    path.write_text(
        json.dumps(to_sarif(result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
