"""The ``repro lint`` subcommand.

Runs the reprolint engine over the repository (default: ``src`` and
``tests`` below the current directory) with the committed project
configuration.  Exit status follows the repo-wide contract: 0 = clean,
1 = violations found, 2 = usage error (one friendly line).

``--json`` emits the machine-readable payload consumed by
``scripts/lint_gate.py`` and CI annotations; ``--select`` narrows to
specific rules; ``--no-pragmas`` reports pragma-suppressed findings as
live (how the fixture corpus proves every rule fires); ``--sarif FILE``
additionally writes a SARIF 2.1.0 log that the CI lint job uploads to
GitHub code scanning.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

__all__ = ["add_lint_arguments", "cmd_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable diagnostics payload",
    )
    parser.add_argument(
        "--select", metavar="RL001[,RL002...]", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--no-pragmas", action="store_true",
        help="ignore `# reprolint: disable` pragmas (report everything)",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="also write findings as SARIF 2.1.0 (for code scanning)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _list_rules() -> int:
    from .engine import all_rules

    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"       {rule.summary}")
        print(f"       protects: {rule.protects}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Entry point invoked by ``repro lint``."""
    from .config import DEFAULT_LINT_PATHS, project_config
    from .engine import lint_paths

    if args.list_rules:
        return _list_rules()
    raw_paths: Sequence[str] = args.paths or [
        p for p in DEFAULT_LINT_PATHS if Path(p).exists()
    ]
    if not raw_paths:
        print(
            "error: nothing to lint — run from the repository root or "
            "pass explicit paths"
        )
        return 2
    missing = [p for p in raw_paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}")
        return 2
    select = None
    if args.select is not None:
        select = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        from .engine import get_rule

        try:
            for code in select:
                get_rule(code)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2
    result = lint_paths(
        [Path(p) for p in raw_paths],
        project_config(),
        root=Path.cwd(),
        select=select,
        honor_pragmas=not args.no_pragmas,
    )
    if args.sarif is not None:
        from .sarif import write_sarif

        write_sarif(result, Path(args.sarif))
    if args.as_json:
        print(result.to_json())
    else:
        print(result.render())
    return 0 if result.clean else 1
