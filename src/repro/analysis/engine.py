"""The rule engine: registry, file contexts, pragmas and the runner.

Design
------
* A :class:`Rule` owns one invariant.  It declares which files it applies
  to (via glob patterns resolved against the :class:`LintConfig`) and
  yields :class:`~repro.analysis.diagnostics.Diagnostic` records from one
  parsed file.
* The registry is a module-level dict populated by the
  :func:`register_rule` decorator; :mod:`repro.analysis.rules` imports
  every rule module so ``import repro.analysis`` is enough to get the
  full set.
* Rules never read configuration globals: everything scope- or
  allowlist-shaped lives on the :class:`LintConfig` handed to
  :func:`lint_paths`, so the fixture corpus can run the same rules under
  a corpus-scoped config (see ``tests/analysis/``).

Pragmas
-------
``# reprolint: disable=RL001`` (comma-separated codes, or ``all``) on a
line suppresses matching diagnostics *on that line only*;
``# reprolint: disable-file=RL001`` anywhere in the file suppresses for
the whole file.  Every suppression is counted — ``scripts/lint_gate.py``
ratchets the total against ``scripts/lint_budget.json`` so the escape
hatch cannot silently grow.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence, Type

from .callgraph import CallGraph
from .diagnostics import Diagnostic

__all__ = [
    "FileContext",
    "LintConfig",
    "LintResult",
    "PragmaSet",
    "ProjectContext",
    "Rule",
    "all_rules",
    "attach_decorator_pragmas",
    "count_pragmas",
    "get_rule",
    "lint_paths",
    "register_rule",
]

#: matches ``reprolint: disable=RL001,RL002`` and the ``disable-file=``
#: form (always inside a comment token; see :func:`parse_pragmas`)
_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class LintConfig:
    """Project configuration: per-rule scopes and allowlists.

    All patterns are :mod:`fnmatch` globs matched case-sensitively
    against the file's repo-root-relative posix path (``*`` crosses
    ``/``, so ``src/repro/core/*.py`` covers the whole subtree).
    """

    #: RL001 — kernel-boundary module glob → numpy attributes (dotted,
    #: without the alias: ``"zeros"``, ``"add.at"``) that remain legal
    #: glue there.  Anything else must route through the kernel backend.
    kernel_boundary: dict[str, frozenset[str]] = field(default_factory=dict)
    #: RL002 — globs where direct transport access is *legitimate* (the
    #: machine layer itself plus the recovery transport virtualisation)
    transport_exempt: tuple[str, ...] = ()
    #: RL002 — globs the rule patrols (typically ``src/**``)
    transport_scope: tuple[str, ...] = ()
    #: RL003 — globs holding distribution schemes to protocol-check
    scheme_scope: tuple[str, ...] = ()
    #: RL004 — wire-format / cost-model module globs that must be
    #: bit-deterministic
    determinism_scope: tuple[str, ...] = ()
    #: RL005 — globs the obs-transparency rule patrols
    obs_scope: tuple[str, ...] = ()
    #: RL005 — globs allowed to hold module-level obs state (``obs/``)
    obs_exempt: tuple[str, ...] = ()
    #: RL006 — CLI modules bound to the hardened exit contract
    cli_scope: tuple[str, ...] = ()
    #: RL007/RL008 — globs whose ``async def`` bodies are held to the
    #: event-loop contract (no blocking calls, no spin loops)
    async_scope: tuple[str, ...] = ()
    #: RL007 — dotted names that block the calling thread outright
    #: (matched after import-alias expansion: ``t.sleep`` → ``time.sleep``)
    blocking_calls: frozenset[str] = frozenset()
    #: RL007 — method names assumed blocking on *unresolved* receivers
    #: (the call graph's assume-worst policy: ``conn.recv()`` on an
    #: unknown ``conn`` is treated as a socket read)
    blocking_suspects: frozenset[str] = frozenset()
    #: RL007 — project ``Class.method`` / ``module.func`` suffixes that
    #: are blocking by contract regardless of what their bodies resolve
    #: to (``RunSession.run`` joins rank workers three layers down)
    blocking_roots: frozenset[str] = frozenset()
    #: RL009 — globs whose SharedMemory create/attach sites must pair
    #: with close/unlink or a segment-ledger registration
    shm_scope: tuple[str, ...] = ()
    #: RL009 — callable names accepted as segment-ledger registrations
    #: (the wire/supervise discipline: the name is recorded before send)
    shm_ledger_calls: frozenset[str] = frozenset()
    #: RL010 — globs patrolled for ``@rank_task`` purity
    task_scope: tuple[str, ...] = ()
    #: RL010 — task registry names exempted after review (each entry
    #: must argue in config.py why charge replay stays byte-identical)
    task_purity_allow: frozenset[str] = frozenset()
    #: RL011 — fork-spawning modules that must stay thread-free
    fork_scope: tuple[str, ...] = ()
    #: files the engine never parses (fixture corpora of seeded
    #: violations, generated trees, …)
    exclude: tuple[str, ...] = ()

    def matches(self, path: str, patterns: Iterable[str]) -> bool:
        """True when ``path`` matches any glob in ``patterns``."""
        return any(fnmatchcase(path, pat) for pat in patterns)


@dataclass(frozen=True)
class PragmaSet:
    """Parsed suppression pragmas of one file."""

    #: line number → codes disabled on that line (``{"ALL"}`` = every rule)
    by_line: dict[int, frozenset[str]]
    #: codes disabled for the whole file
    file_wide: frozenset[str]

    @property
    def count(self) -> int:
        """How many disable pragmas the file carries (the budget unit)."""
        return len(self.by_line) + len(self.file_wide)

    def suppresses(self, diag: Diagnostic) -> bool:
        """True when ``diag`` is silenced by a pragma."""
        if "ALL" in self.file_wide or diag.code in self.file_wide:
            return True
        codes = self.by_line.get(diag.line, frozenset())
        return "ALL" in codes or diag.code in codes


def parse_pragmas(source: str) -> PragmaSet:
    """Scan ``source`` for ``# reprolint:`` pragmas.

    Tokenize-based: only genuine comment tokens carry pragmas, so the
    pragma *syntax* can be quoted in docstrings, test strings and
    documentation without spending budget.  Files that fail to tokenize
    yield whatever pragmas preceded the error (they will separately be
    reported as RL000 parse errors).
    """
    by_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            kind = match.group(1)
            codes = frozenset(
                c.strip().upper()
                for c in match.group(2).split(",")
                if c.strip()
            )
            if not codes:
                continue
            if kind == "disable-file":
                file_wide.update(codes)
            else:
                by_line[tok.start[0]] = codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return PragmaSet(by_line=by_line, file_wide=frozenset(file_wide))


def attach_decorator_pragmas(pragmas: PragmaSet, tree: ast.Module) -> PragmaSet:
    """Extend line pragmas on decorators to cover the decorated ``def``.

    A pragma written on a decorator line (``@rank_task("x")  # reprolint:
    disable=RL010``) used to bind to the decorator's own line, while the
    diagnostic for a decorated ``def``/``class`` is reported at the
    ``def`` line — so the suppression silently missed.  This maps every
    decorator-line pragma onto the definition line it visually annotates.
    The returned set is for *suppression only*: the pragma budget counts
    the original, unexpanded pragmas.
    """
    if not pragmas.by_line:
        return pragmas
    by_line = dict(pragmas.by_line)
    changed = False
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) or not node.decorator_list:
            continue
        codes: set[str] = set()
        for deco in node.decorator_list:
            for line in range(deco.lineno, (deco.end_lineno or deco.lineno) + 1):
                codes.update(by_line.get(line, frozenset()))
        if codes:
            by_line[node.lineno] = frozenset(
                by_line.get(node.lineno, frozenset()) | codes
            )
            changed = True
    if not changed:
        return pragmas
    return PragmaSet(by_line=by_line, file_wide=pragmas.file_wide)


@dataclass
class FileContext:
    """One parsed file handed to every applicable rule.

    ``path`` is repo-root-relative posix; ``tree`` is the parsed
    :class:`ast.Module`.  The parse is done once per file and shared by
    all rules.
    """

    path: str
    source: str
    tree: ast.Module
    config: LintConfig

    def matches(self, patterns: Iterable[str]) -> bool:
        """Path-scope check against ``patterns`` (fnmatch globs)."""
        return self.config.matches(self.path, patterns)

    def walk(self) -> Iterator[ast.AST]:
        """All nodes of the file's tree (cached ``ast.walk`` order)."""
        return ast.walk(self.tree)


@dataclass
class ProjectContext:
    """Everything an interprocedural rule sees: all files + the graph.

    Built once per :func:`lint_paths` run, only when a selected rule
    declares ``requires_project`` — the per-file tier never pays for the
    index.  ``graph`` spans *every* parsed file (not just one rule's
    scope) so a scoped entry point can follow calls into helper modules
    anywhere in the tree.
    """

    config: LintConfig
    files: list[FileContext]
    graph: CallGraph

    def scoped(self, patterns: Iterable[str]) -> Iterator[FileContext]:
        """The files matching ``patterns`` (a rule's entry-point scope)."""
        pats = tuple(patterns)
        for ctx in self.files:
            if self.config.matches(ctx.path, pats):
                yield ctx


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` defaults to True (the rule sees every file) and is
    usually overridden with a :class:`LintConfig` scope test.
    """

    #: stable rule code ("RL001" …); also the pragma handle
    code: str = "RL000"
    #: short kebab name for catalogues ("kernel-boundary")
    name: str = "abstract"
    #: one-line description of the protected invariant
    summary: str = ""
    #: the paper section / PR contract the rule protects
    protects: str = ""
    #: True for interprocedural rules: the engine skips per-file
    #: :meth:`check` and calls :meth:`check_project` once with the
    #: whole-tree :class:`ProjectContext` instead
    requires_project: bool = False

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule should run over ``ctx`` at all."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        """Yield diagnostics for one file."""
        raise NotImplementedError

    def check_project(self, project: ProjectContext) -> Iterable[Diagnostic]:
        """Yield diagnostics over the whole tree (project rules only)."""
        raise NotImplementedError

    def diag(
        self, ctx: FileContext, node: ast.AST, message: str, hint: str = ""
    ) -> Diagnostic:
        """Build a diagnostic at ``node``'s location."""
        return self.diag_at(ctx.path, node, message, hint)

    def diag_at(
        self, path: str, node: ast.AST, message: str, hint: str = ""
    ) -> Diagnostic:
        """Build a diagnostic at ``node`` in ``path`` (project rules)."""
        return Diagnostic(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            hint=hint,
        )

    def __repr__(self) -> str:
        return f"<Rule {self.code} {self.name}>"


#: the global rule registry (code → rule instance)
_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule to the registry (idempotent)."""
    rule = cls()
    if not re.fullmatch(r"RL\d{3}", rule.code):
        raise ValueError(f"rule code must look like RL001, got {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(_REGISTRY[c] for c in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    """Look one rule up by code; raise ``KeyError`` with the choices."""
    try:
        return _REGISTRY[code.upper()]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r} (choose from {', '.join(sorted(_REGISTRY))})"
        ) from None


@dataclass
class LintResult:
    """Outcome of one engine run."""

    diagnostics: list[Diagnostic]
    suppressed: list[Diagnostic]
    files_checked: int
    pragma_count: int
    parse_errors: list[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no live diagnostics (suppressed ones don't count)."""
        return not self.diagnostics and not self.parse_errors

    def render(self) -> str:
        """Human text report, one diagnostic per line + a summary line."""
        lines = [d.render() for d in self.parse_errors + self.diagnostics]
        if lines:
            lines.append(
                f"repro lint: {len(self.diagnostics) + len(self.parse_errors)} "
                f"problem(s) in {self.files_checked} files "
                f"({len(self.suppressed)} suppressed by pragma)"
            )
        else:
            lines.append(
                f"repro lint: clean ({self.files_checked} files, "
                f"{len(all_rules())} rules, "
                f"{len(self.suppressed)} suppressed by pragma)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """The ``repro lint --json`` payload."""
        return {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "pragma_count": self.pragma_count,
            "rules": [
                {
                    "code": r.code,
                    "name": r.name,
                    "summary": r.summary,
                    "protects": r.protects,
                }
                for r in all_rules()
            ],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "parse_errors": [d.to_dict() for d in self.parse_errors],
        }

    def to_json(self) -> str:
        """Stable-key JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def iter_python_files(
    paths: Sequence[Path], root: Path, config: LintConfig
) -> Iterator[tuple[Path, str]]:
    """``(absolute_path, relative_posix)`` for every lintable file.

    Directories are walked recursively in sorted order; files excluded
    by ``config.exclude`` are skipped.
    """
    for base in paths:
        candidates = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for file in candidates:
            try:
                rel = file.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            if config.matches(rel, config.exclude):
                continue
            yield file, rel


def _parse_one(
    file: Path, rel: str, config: LintConfig
) -> tuple[FileContext | None, PragmaSet, int, Diagnostic | None]:
    """Parse one file: ``(ctx, pragmas, pragma_count, parse_error)``.

    ``pragma_count`` is taken *before* decorator expansion — the budget
    counts pragmas as written, not the derived suppression lines.
    """
    source = file.read_text(encoding="utf-8")
    pragmas = parse_pragmas(source)
    count = pragmas.count
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as exc:
        error = Diagnostic(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code="RL000",
            message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error before linting",
        )
        return None, pragmas, count, error
    pragmas = attach_decorator_pragmas(pragmas, tree)
    ctx = FileContext(path=rel, source=source, tree=tree, config=config)
    return ctx, pragmas, count, None


def lint_file(
    file: Path,
    rel: str,
    config: LintConfig,
    rules: Sequence[Rule],
) -> tuple[list[Diagnostic], list[Diagnostic], int, Diagnostic | None]:
    """Lint one file: ``(live, suppressed, pragma_count, parse_error)``.

    Per-file rules only — project rules (``requires_project``) need the
    whole tree and run inside :func:`lint_paths`.
    """
    ctx, pragmas, count, error = _parse_one(file, rel, config)
    if ctx is None:
        return [], [], count, error
    live: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for rule in rules:
        if rule.requires_project or not rule.applies(ctx):
            continue
        for diag in rule.check(ctx):
            (suppressed if pragmas.suppresses(diag) else live).append(diag)
    return sorted(live), sorted(suppressed), count, None


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig,
    *,
    root: Path | str | None = None,
    select: Sequence[str] | None = None,
    honor_pragmas: bool = True,
) -> LintResult:
    """Run the engine over ``paths`` (files or directories).

    ``select`` restricts to specific rule codes; ``honor_pragmas=False``
    reports suppressed findings as live (used by the fixture corpus to
    prove rules fire regardless of pragmas).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rules: Sequence[Rule]
    if select is None:
        rules = all_rules()
    else:
        rules = [get_rule(code) for code in select]
    file_rules = [r for r in rules if not r.requires_project]
    project_rules = [r for r in rules if r.requires_project]
    diagnostics: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    parse_errors: list[Diagnostic] = []
    contexts: list[FileContext] = []
    pragma_sets: dict[str, PragmaSet] = {}
    files_checked = 0
    pragma_count = 0
    for file, rel in iter_python_files(
        [Path(p) for p in paths], root_path, config
    ):
        ctx, pragmas, n_pragmas, error = _parse_one(file, rel, config)
        files_checked += 1
        pragma_count += n_pragmas
        if ctx is None:
            if error is not None:
                parse_errors.append(error)
            continue
        contexts.append(ctx)
        pragma_sets[ctx.path] = pragmas
        live: list[Diagnostic] = []
        muted: list[Diagnostic] = []
        for rule in file_rules:
            if not rule.applies(ctx):
                continue
            for diag in rule.check(ctx):
                (muted if pragmas.suppresses(diag) else live).append(diag)
        if honor_pragmas:
            diagnostics.extend(live)
            suppressed.extend(muted)
        else:
            diagnostics.extend(live + muted)
    if project_rules:
        project = ProjectContext(
            config=config,
            files=contexts,
            graph=CallGraph([(ctx.path, ctx.tree) for ctx in contexts]),
        )
        empty = PragmaSet(by_line={}, file_wide=frozenset())
        for rule in project_rules:
            for diag in rule.check_project(project):
                muted_by = pragma_sets.get(diag.path, empty).suppresses(diag)
                if muted_by and honor_pragmas:
                    suppressed.append(diag)
                else:
                    diagnostics.append(diag)
    return LintResult(
        diagnostics=sorted(diagnostics),
        suppressed=sorted(suppressed),
        files_checked=files_checked,
        pragma_count=pragma_count,
        parse_errors=sorted(parse_errors),
    )


def count_pragmas(
    paths: Sequence[Path | str],
    config: LintConfig,
    *,
    root: Path | str | None = None,
) -> int:
    """Total ``# reprolint: disable`` pragmas under ``paths``.

    The quantity ``scripts/lint_gate.py`` ratchets: parsing is skipped
    (pragmas are comments), so this stays cheap and total.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    total = 0
    for file, _rel in iter_python_files(
        [Path(p) for p in paths], root_path, config
    ):
        total += parse_pragmas(file.read_text(encoding="utf-8")).count
    return total


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Shared helper for rules that match calls by their dotted target.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's target (``machine.send`` → that string)."""
    return dotted_name(call.func)


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Every function definition with its enclosing class (or None)."""

    def visit(
        node: ast.AST, cls: ast.ClassDef | None
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


#: type of the per-statement event classifiers used by path-sensitive rules
EventClassifier = Callable[[ast.stmt], list[str]]
