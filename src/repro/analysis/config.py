"""The committed project configuration for ``repro lint``.

This is the single place where the rules' scopes and allowlists are
burned in.  Editing it is a *reviewed* act — the allowlists below are the
static-analysis analogue of golden fixtures: they pin today's audited
state, and any new entry must argue (in review) why the invariant does
not apply to it.

RL001 allowlists
----------------
Kernel-boundary modules may keep the listed numpy attributes as *glue*
(allocation, dtype plumbing, validation guards, prefix sums feeding the
backend).  Everything data-parallel over nonzeros — packing, encoding,
decoding, index conversion, SpMV/SpGEMM traversal — must dispatch through
:func:`repro.kernels.current_backend` so the python oracle stays an
honest differential reference.  Adding a numpy verb here instead of the
backend is exactly the regression RL001 exists to catch.
"""

from __future__ import annotations

from .engine import LintConfig

__all__ = ["project_config", "DEFAULT_LINT_PATHS"]

#: what ``repro lint`` walks when no paths are given
DEFAULT_LINT_PATHS = ("src", "tests")

#: RL001 — audited numpy glue per kernel-boundary module (see module
#: docstring; keep each set minimal and alphabetised)
_KERNEL_BOUNDARY = {
    "src/repro/core/encoded_buffer.py": frozenset({
        # RO prefix sum feeding the backend's pair gather; layout glue
        "cumsum", "lexsort", "zeros",
    }),
    "src/repro/core/gather.py": frozenset({
        # host-side concatenation of received COO pieces (cold path)
        "concatenate", "empty",
    }),
    "src/repro/core/index_conversion.py": frozenset({
        # argument normalisation + the out-of-range validation guard
        "any", "asarray",
    }),
    "src/repro/core/jds_schemes.py": frozenset({
        # JDS wire build/walk (future-work module; not yet backend-routed,
        # tracked as the RL001 burn-down list)
        "concatenate", "cumsum", "empty", "zeros",
    }),
    "src/repro/core/redistribute.py": frozenset({
        # piece bucketing on the host before charged sends (cold path)
        "any", "arange", "concatenate", "empty", "full",
    }),
    "src/repro/core/sfc.py": frozenset(),
    "src/repro/core/cfs.py": frozenset(),
    "src/repro/core/ed.py": frozenset(),
    "src/repro/core/base.py": frozenset(),
    "src/repro/core/registry.py": frozenset(),
    "src/repro/core/transpose.py": frozenset({
        # transpose is pure index relabelling on host-held COO (cold path)
        "lexsort",
    }),
    "src/repro/machine/packing.py": frozenset({
        # wire-exactness guards + dtype plumbing around pack_segments/
        # unpack_segment (the moves themselves are backend calls)
        "any", "asarray", "dtype", "iinfo", "issubdtype", "trunc",
    }),
    "src/repro/sparse/ops.py": frozenset({
        # COO canonicalisation + norm/diagnostic helpers; the SpMV/SpGEMM
        # traversals themselves dispatch through the backend
        "abs", "add.at", "asarray", "concatenate", "intersect1d", "sqrt",
        "sum", "zeros",
    }),
}

#: RL002 — the layers allowed to touch mailboxes/frames directly
_TRANSPORT_EXEMPT = (
    "src/repro/machine/*.py",      # the transport itself
    "src/repro/faults/*.py",       # frame-level fault injection
    "src/repro/recovery/view.py",  # transport virtualisation (ghost ranks)
)

#: RL004 — wire-format and cost-model modules that must be bit-deterministic
_DETERMINISM_SCOPE = (
    "src/repro/machine/cost_model.py",
    "src/repro/machine/packing.py",
    "src/repro/machine/trace.py",
    "src/repro/core/encoded_buffer.py",
    "src/repro/core/index_conversion.py",
    "src/repro/faults/checksum.py",
    "src/repro/faults/injector.py",
    "src/repro/faults/spec.py",
    "src/repro/kernels/*.py",
)


def project_config() -> LintConfig:
    """The configuration ``repro lint`` runs with on this repository."""
    return LintConfig(
        kernel_boundary=dict(_KERNEL_BOUNDARY),
        transport_scope=("src/repro/*.py",),
        transport_exempt=_TRANSPORT_EXEMPT,
        scheme_scope=("src/repro/core/*.py",),
        determinism_scope=_DETERMINISM_SCOPE,
        obs_scope=("src/repro/*.py",),
        obs_exempt=("src/repro/obs/*.py",),
        cli_scope=(
            "src/repro/cli.py",
            "src/repro/analysis/cli.py",
        ),
        exclude=(
            "tests/analysis/fixtures/*",
        ),
    )
