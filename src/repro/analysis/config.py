"""The committed project configuration for ``repro lint``.

This is the single place where the rules' scopes and allowlists are
burned in.  Editing it is a *reviewed* act — the allowlists below are the
static-analysis analogue of golden fixtures: they pin today's audited
state, and any new entry must argue (in review) why the invariant does
not apply to it.

RL001 allowlists
----------------
Kernel-boundary modules may keep the listed numpy attributes as *glue*
(allocation, dtype plumbing, validation guards, prefix sums feeding the
backend).  Everything data-parallel over nonzeros — packing, encoding,
decoding, index conversion, SpMV/SpGEMM traversal — must dispatch through
:func:`repro.kernels.current_backend` so the python oracle stays an
honest differential reference.  Adding a numpy verb here instead of the
backend is exactly the regression RL001 exists to catch.

RL007 marker lists
------------------
Three tiers, each reviewed separately.  ``blocking_calls`` are exact
alias-expanded dotted names known to block the calling thread.
``blocking_roots`` are *project* ``Class.method`` suffixes blocking by
contract — ``RunSession.run`` joins rank processes end-to-end.
``blocking_suspects`` is the assume-worst tier: method names treated as
blocking when the receiver cannot be resolved.  It deliberately
excludes ``read``/``write``/``close``/``unlink``/``acquire``/``run``/
``set``/``clear`` — those appear on non-blocking receivers all over the
service layer (``Path.unlink``, ``asyncio.Event.set``, dict ops), and a
suspect tier that cries wolf gets pragma'd into silence.
"""

from __future__ import annotations

from .engine import LintConfig

__all__ = ["project_config", "DEFAULT_LINT_PATHS"]

#: what ``repro lint`` walks when no paths are given
DEFAULT_LINT_PATHS = ("src", "tests")

#: RL001 — audited numpy glue per kernel-boundary module (see module
#: docstring; keep each set minimal and alphabetised)
_KERNEL_BOUNDARY = {
    "src/repro/core/encoded_buffer.py": frozenset({
        # RO prefix sum feeding the backend's pair gather; layout glue
        "cumsum", "lexsort", "zeros",
    }),
    "src/repro/core/gather.py": frozenset({
        # host-side concatenation of received COO pieces (cold path)
        "concatenate", "empty",
    }),
    "src/repro/core/index_conversion.py": frozenset({
        # argument normalisation + the out-of-range validation guard
        "any", "asarray",
    }),
    "src/repro/core/jds_schemes.py": frozenset({
        # JDS wire build/walk (future-work module; not yet backend-routed,
        # tracked as the RL001 burn-down list)
        "concatenate", "cumsum", "empty", "zeros",
    }),
    "src/repro/core/redistribute.py": frozenset({
        # piece bucketing on the host before charged sends (cold path)
        "any", "arange", "concatenate", "empty", "full",
    }),
    "src/repro/core/sfc.py": frozenset(),
    "src/repro/core/cfs.py": frozenset(),
    "src/repro/core/ed.py": frozenset(),
    "src/repro/core/base.py": frozenset(),
    "src/repro/core/registry.py": frozenset(),
    "src/repro/core/transpose.py": frozenset({
        # transpose is pure index relabelling on host-held COO (cold path)
        "lexsort",
    }),
    "src/repro/machine/packing.py": frozenset({
        # wire-exactness guards + dtype plumbing around pack_segments/
        # unpack_segment (the moves themselves are backend calls)
        "any", "asarray", "dtype", "iinfo", "issubdtype", "trunc",
    }),
    "src/repro/sparse/ops.py": frozenset({
        # COO canonicalisation + norm/diagnostic helpers; the SpMV/SpGEMM
        # traversals themselves dispatch through the backend
        "abs", "add.at", "asarray", "concatenate", "intersect1d", "sqrt",
        "sum", "zeros",
    }),
}

#: RL002 — the layers allowed to touch mailboxes/frames directly
_TRANSPORT_EXEMPT = (
    "src/repro/machine/*.py",      # the transport itself
    "src/repro/faults/*.py",       # frame-level fault injection
    "src/repro/recovery/view.py",  # transport virtualisation (ghost ranks)
)

#: RL004 — wire-format and cost-model modules that must be bit-deterministic
_DETERMINISM_SCOPE = (
    "src/repro/machine/cost_model.py",
    "src/repro/machine/packing.py",
    "src/repro/machine/trace.py",
    "src/repro/core/encoded_buffer.py",
    "src/repro/core/index_conversion.py",
    "src/repro/faults/checksum.py",
    "src/repro/faults/injector.py",
    "src/repro/faults/spec.py",
    "src/repro/kernels/*.py",
)


#: RL007 — exact dotted calls that block the calling thread
_BLOCKING_CALLS = frozenset({
    "open",
    "input",
    "os.wait", "os.waitpid", "os.waitid",
    "select.select", "selectors.DefaultSelector",
    "socket.create_connection", "socket.socket",
    "subprocess.call", "subprocess.check_call", "subprocess.check_output",
    "subprocess.run",
    "time.sleep",
    "urllib.request.urlopen",
})

#: RL007 — assume-worst method names on unresolved receivers
_BLOCKING_SUSPECTS = frozenset({
    "accept", "connect", "communicate", "join",
    "readinto", "readline", "recv", "recv_bytes", "recv_into",
    "select", "sleep", "wait",
})

#: RL007 — project methods blocking by contract (suffix-matched)
_BLOCKING_ROOTS = frozenset({
    "RunSession.run",
})

#: RL009 — calls that register a segment name with the crash reaper's
#: ledger (``wire.py``'s ``on_segment`` hook, supervise's ledger note)
_SHM_LEDGER_CALLS = frozenset({
    "on_segment",
    "_note_segment",
    "record_segment",
})


def project_config() -> LintConfig:
    """The configuration ``repro lint`` runs with on this repository."""
    return LintConfig(
        kernel_boundary=dict(_KERNEL_BOUNDARY),
        transport_scope=("src/repro/*.py",),
        transport_exempt=_TRANSPORT_EXEMPT,
        scheme_scope=("src/repro/core/*.py",),
        determinism_scope=_DETERMINISM_SCOPE,
        obs_scope=("src/repro/*.py",),
        obs_exempt=("src/repro/obs/*.py",),
        cli_scope=(
            "src/repro/cli.py",
            "src/repro/analysis/cli.py",
        ),
        # RL007/RL008 — the asyncio throughput service is the only layer
        # that runs coroutines on a shared event loop
        async_scope=("src/repro/service/*.py",),
        blocking_calls=_BLOCKING_CALLS,
        blocking_suspects=_BLOCKING_SUSPECTS,
        blocking_roots=_BLOCKING_ROOTS,
        # RL009 — the SHM wire layer lives in exec/
        shm_scope=("src/repro/exec/*.py",),
        shm_ledger_calls=_SHM_LEDGER_CALLS,
        # RL010 — @rank_task may be registered anywhere in src/
        task_scope=("src/repro/*.py",),
        task_purity_allow=frozenset(),  # every shipped task is pure today
        # RL011 part A — the modules that own fork-based spawn sites
        fork_scope=(
            "src/repro/sweep/orchestrator.py",
            "src/repro/exec/process.py",
        ),
        exclude=(
            "tests/analysis/fixtures/*",
        ),
    )
