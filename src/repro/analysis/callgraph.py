"""Cross-file symbol table + call graph for interprocedural rules.

The per-file rules (RL001–RL006) prove single-module invariants.  The
concurrency tier (RL007 async-blocking, RL011 fork-safety) needs to
answer a harder question: *what does this call eventually do?* — e.g.
an ``async def`` in ``service/`` calling a sync helper that three frames
down calls ``time.sleep``.  This module builds the project-wide index
those rules walk:

* a **symbol table** per module: import aliases (``import time as t``,
  ``from .wire import send_msg``, relative imports resolved against the
  package), top-level functions, classes and their methods, and the
  instance-attribute types a class's methods pin with
  ``self.x = ClassName(...)`` / ``self.x: ClassName``;
* a **call graph**: every :class:`ast.Call` in a function body resolved
  to one of four kinds (see :class:`CallSite`):

  ==========  ========================================================
  kind        meaning
  ==========  ========================================================
  project     resolved to a function *in the linted tree* — the edge
              interprocedural rules follow
  external    resolved through the import table to a module outside
              the tree (``time.sleep``) — rules match marker lists
  benign      resolved to a project class with no ``__init__``
              (dataclass-style constructors cannot block)
  unknown     unresolvable receiver — the **assume-worst** bucket:
              rules treat suspicious method names (``.wait()``,
              ``.recv()``, …) as if they did the worst thing their
              name suggests
  ==========  ========================================================

Resolution is deliberately conservative and cheap (stdlib ``ast`` only,
no type inference): ``module.func`` via the import table, methods on
``self``, on annotated parameters, on locals assigned exactly one known
class, and on ``self.attr`` instance attributes with a single pinned
type.  A name assigned two different classes, a star-imported name, or
any receiver produced by a call stays ``unknown`` — never silently
treated as safe.

:class:`ReachabilityWalk` is the shared fixed-point driver: given a
classifier that marks *root* call sites (``time.sleep`` is blocking,
``threading.Thread`` creates a thread), it computes for any function
whether a marked call is reachable through project edges, memoised,
cycle-tolerant, and returns the human-readable call chain for the
diagnostic hint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

__all__ = [
    "CallGraph",
    "CallSite",
    "FuncKey",
    "FunctionInfo",
    "ReachabilityWalk",
    "module_name_for",
]

#: call-site resolution kinds (see module docstring table)
PROJECT, EXTERNAL, BENIGN, UNKNOWN = "project", "external", "benign", "unknown"


def module_name_for(path: str) -> str:
    """Dotted module name of a repo-relative posix path.

    ``src/repro/service/queue.py`` → ``repro.service.queue``;
    a fixture path like ``rl007/viol_sleep.py`` → ``rl007.viol_sleep``.
    """
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class FuncKey:
    """Identity of one project function: file path + qualified name."""

    path: str
    qualname: str

    def __str__(self) -> str:
        return f"{self.path}::{self.qualname}"


@dataclass
class FunctionInfo:
    """One indexed function/method definition."""

    key: FuncKey
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: str
    class_name: str | None
    is_async: bool

    @property
    def display(self) -> str:
        """Short human name for call-chain hints (``Class.method``)."""
        return self.key.qualname


@dataclass(frozen=True)
class CallSite:
    """One resolved :class:`ast.Call` inside a function body."""

    line: int
    col: int
    #: source-level dotted target (``self._take_batch``), None for
    #: computed targets like ``f()()``
    raw: str | None
    #: alias-expanded dotted name when the head resolved through the
    #: import table (``t.sleep`` → ``time.sleep``); equals ``raw`` when
    #: no expansion applied
    dotted: str | None
    #: final attribute/name segment (the assume-worst matching handle)
    attr: str | None
    #: resolution kind: ``project`` / ``external`` / ``benign`` / ``unknown``
    kind: str
    #: the project function this call resolves to (``project`` kind only)
    target: FuncKey | None
    target_is_async: bool
    #: True when the call is the direct operand of an ``await`` —
    #: awaited calls yield to the event loop and are never blocking
    awaited: bool


@dataclass
class _ClassInfo:
    name: str
    node: ast.ClassDef
    module: str
    path: str
    #: method name → FuncKey
    methods: dict[str, FuncKey] = field(default_factory=dict)
    #: base-class names as written (resolved lazily through the table)
    bases: tuple[str, ...] = ()
    #: ``self.attr`` → pinned class dotted name, or None when ambiguous
    attr_types: dict[str, str | None] = field(default_factory=dict)


@dataclass
class _ModuleInfo:
    path: str
    module: str
    is_package: bool = False
    #: local alias → dotted target (``t`` → ``time``, ``send_msg`` →
    #: ``repro.exec.wire.send_msg``)
    imports: dict[str, str] = field(default_factory=dict)
    has_star_import: bool = False
    #: top-level (and nested) functions by qualname
    functions: dict[str, FuncKey] = field(default_factory=dict)
    classes: dict[str, _ClassInfo] = field(default_factory=dict)


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_class(node: ast.expr | None) -> str | None:
    """Class name named by a parameter/attribute annotation, if simple.

    Handles ``x: RunSession``, ``x: mod.RunSession``, string annotations
    and ``x: "RunSession | None"`` (the optional half is ignored — the
    non-None arm still pins the method table).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        for sep in ("|",):
            if sep in text:
                arms = [a.strip() for a in text.split(sep)]
                arms = [a for a in arms if a and a != "None"]
                text = arms[0] if len(arms) == 1 else ""
        return text or None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        arms = [_annotation_class(node.left), _annotation_class(node.right)]
        named = [a for a in arms if a is not None and a != "None"]
        return named[0] if len(named) == 1 else None
    if isinstance(node, ast.Constant) and node.value is None:
        return "None"
    return _dotted(node)


def _body_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class CallGraph:
    """Symbol table + lazily-resolved call sites over a set of files."""

    def __init__(self, files: Sequence[tuple[str, ast.Module]]) -> None:
        #: module path → table
        self._modules: dict[str, _ModuleInfo] = {}
        #: dotted module name → path (project modules only)
        self._by_module: dict[str, str] = {}
        self._functions: dict[FuncKey, FunctionInfo] = {}
        #: fully-dotted project symbol → FuncKey (``repro.exec.wire.send_msg``)
        self._symbols: dict[str, FuncKey] = {}
        #: fully-dotted project class name → _ClassInfo
        self._class_symbols: dict[str, _ClassInfo] = {}
        self._sites: dict[FuncKey, tuple[CallSite, ...]] = {}
        for path, tree in files:
            self._index_module(path, tree)
        for path, _tree in files:
            self._pin_attr_types(self._modules[path])

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index_module(self, path: str, tree: ast.Module) -> None:
        mod = _ModuleInfo(
            path=path,
            module=module_name_for(path),
            is_package=path.endswith("/__init__.py") or path == "__init__.py",
        )
        self._modules[path] = mod
        self._by_module[mod.module] = path
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(mod, node)
                for alias in node.names:
                    if alias.name == "*":
                        mod.has_star_import = True
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        self._index_scope(mod, tree.body, prefix="", class_name=None)

    def _import_base(self, mod: _ModuleInfo, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        # relative import: climb ``level`` packages from the module (a
        # package __init__ *is* its package, so it climbs one less)
        parts = mod.module.split(".")
        climb = node.level - 1 if mod.is_package else node.level
        parts = parts[: len(parts) - climb] if climb else parts
        if node.module:
            parts.append(node.module)
        return ".".join(parts)

    def _index_scope(
        self,
        mod: _ModuleInfo,
        body: Sequence[ast.stmt],
        *,
        prefix: str,
        class_name: str | None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                key = FuncKey(path=mod.path, qualname=qualname)
                info = FunctionInfo(
                    key=key,
                    node=stmt,
                    module=mod.module,
                    class_name=class_name,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                self._functions[key] = info
                mod.functions[qualname] = key
                self._symbols[f"{mod.module}.{qualname}"] = key
                if class_name is not None:
                    cls = mod.classes[class_name]
                    cls.methods[stmt.name] = key
                # nested defs are indexed too (resolvable as locals)
                self._index_scope(
                    mod, stmt.body, prefix=f"{qualname}.", class_name=class_name
                )
            elif isinstance(stmt, ast.ClassDef) and class_name is None:
                info_cls = _ClassInfo(
                    name=stmt.name,
                    node=stmt,
                    module=mod.module,
                    path=mod.path,
                    bases=tuple(
                        b for b in (_dotted(base) for base in stmt.bases)
                        if b is not None
                    ),
                )
                mod.classes[stmt.name] = info_cls
                self._class_symbols[f"{mod.module}.{stmt.name}"] = info_cls
                self._index_scope(
                    mod, stmt.body, prefix=f"{stmt.name}.", class_name=stmt.name
                )

    def _pin_attr_types(self, mod: _ModuleInfo) -> None:
        """Record ``self.x = ClassName(...)`` instance-attribute types."""
        for cls in mod.classes.values():
            seen: dict[str, str | None] = {}
            for key in cls.methods.values():
                func = self._functions[key]
                for node in _body_nodes(func.node):
                    attr, pinned = self._self_attr_binding(mod, node)
                    if attr is None:
                        continue
                    if attr in seen and seen[attr] != pinned:
                        seen[attr] = None  # conflicting writes: assume worst
                    else:
                        seen[attr] = pinned
            cls.attr_types = seen

    def _self_attr_binding(
        self, mod: _ModuleInfo, node: ast.AST
    ) -> tuple[str | None, str | None]:
        """``("attr", "pkg.Class" | None)`` for a ``self.attr = …`` write."""
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return None, None
        pinned: str | None = None
        if isinstance(node, ast.AnnAssign):
            name = _annotation_class(node.annotation)
            if name is not None:
                pinned = self._class_dotted(mod, name)
        if pinned is None and isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None:
                pinned = self._class_dotted(mod, name)
        return target.attr, pinned

    def _class_dotted(self, mod: _ModuleInfo, name: str) -> str | None:
        """Fully-dotted project class for a name written in ``mod``."""
        head, _, rest = name.partition(".")
        if head in mod.classes and not rest:
            return f"{mod.module}.{head}"
        expanded = mod.imports.get(head)
        if expanded is not None:
            full = f"{expanded}.{rest}" if rest else expanded
            if full in self._class_symbols:
                return full
        if name in self._class_symbols:
            return name
        return None

    # ------------------------------------------------------------------
    # lookup API
    # ------------------------------------------------------------------
    def functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function, in deterministic order."""
        for key in sorted(self._functions, key=str):
            yield self._functions[key]

    def functions_in(self, path: str) -> Iterator[FunctionInfo]:
        """Indexed functions of one file, in source order."""
        infos = [f for f in self._functions.values() if f.key.path == path]
        infos.sort(key=lambda f: f.node.lineno)
        yield from infos

    def function(self, key: FuncKey) -> FunctionInfo | None:
        return self._functions.get(key)

    def call_sites(self, key: FuncKey) -> tuple[CallSite, ...]:
        """Resolved call sites of one function body (cached)."""
        cached = self._sites.get(key)
        if cached is None:
            info = self._functions[key]
            cached = tuple(self._resolve_body(info))
            self._sites[key] = cached
        return cached

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolve_body(self, info: FunctionInfo) -> Iterator[CallSite]:
        mod = self._modules[info.key.path]
        env = self._local_env(mod, info)
        awaited: set[int] = set()
        for node in _body_nodes(info.node):
            if isinstance(node, ast.Await) and isinstance(
                node.value, ast.Call
            ):
                awaited.add(id(node.value))
        for node in _body_nodes(info.node):
            if isinstance(node, ast.Call):
                yield self._resolve_call(
                    mod, info, env, node, awaited=id(node) in awaited
                )

    def _local_env(
        self, mod: _ModuleInfo, info: FunctionInfo
    ) -> dict[str, str | None]:
        """Local name → pinned project-class dotted name (None = ambiguous).

        Sources, in increasing priority: parameter annotations, then
        ``x = ClassName(...)`` assignments.  A name assigned two
        different classes — or a class and then something unresolvable —
        degrades to ambiguous (*assume worst*), never to the first
        binding: re-binding is exactly the case method resolution must
        not guess about.
        """
        env: dict[str, str | None] = {}
        args = info.node.args
        all_args = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( [args.vararg] if args.vararg else [] ),
            *( [args.kwarg] if args.kwarg else [] ),
        ]
        for arg in all_args:
            name = _annotation_class(arg.annotation)
            if name is not None:
                pinned = self._class_dotted(mod, name)
                if pinned is not None:
                    env[arg.arg] = pinned
        for node in _body_nodes(info.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            local = node.targets[0].id
            pinned: str | None = None
            if isinstance(node.value, ast.Call):
                name = _dotted(node.value.func)
                if name is not None:
                    pinned = self._class_dotted(mod, name)
            if local in env and env[local] != pinned:
                env[local] = None  # reassigned to something else: unknown
            else:
                env[local] = pinned
        return env

    def _resolve_call(
        self,
        mod: _ModuleInfo,
        info: FunctionInfo,
        env: dict[str, str | None],
        call: ast.Call,
        *,
        awaited: bool,
    ) -> CallSite:
        raw = _dotted(call.func)

        def site(
            kind: str,
            target: FuncKey | None = None,
            dotted: str | None = None,
        ) -> CallSite:
            target_info = (
                self._functions.get(target) if target is not None else None
            )
            return CallSite(
                line=call.lineno,
                col=call.col_offset,
                raw=raw,
                dotted=dotted if dotted is not None else raw,
                attr=(raw.rsplit(".", 1)[-1] if raw else None),
                kind=kind,
                target=target,
                target_is_async=(
                    target_info.is_async if target_info is not None else False
                ),
                awaited=awaited,
            )

        if raw is None:
            return site(UNKNOWN)
        parts = raw.split(".")
        head = parts[0]

        # self.method() / self.attr.method()
        if head == "self" and info.class_name is not None:
            cls = self._modules[info.key.path].classes.get(info.class_name)
            if cls is not None and len(parts) == 2:
                resolved = self._method_on(cls, parts[1])
                if resolved is not None:
                    return site(PROJECT, target=resolved)
                return site(UNKNOWN)
            if cls is not None and len(parts) == 3:
                pinned = cls.attr_types.get(parts[1])
                if pinned is not None:
                    resolved = self._method_on(
                        self._class_symbols[pinned], parts[2]
                    )
                    if resolved is not None:
                        return site(PROJECT, target=resolved)
                return site(UNKNOWN)
            return site(UNKNOWN)

        # a local pinned to a project class: x = ClassName(...); x.m()
        if head in env and len(parts) == 2:
            pinned = env[head]
            if pinned is not None:
                resolved = self._method_on(self._class_symbols[pinned], parts[1])
                if resolved is not None:
                    return site(PROJECT, target=resolved)
            return site(UNKNOWN)

        # sibling function in the same scope chain (nested defs first)
        if len(parts) == 1:
            scope = info.key.qualname.rsplit(".", 1)[0]
            while True:
                candidate = mod.functions.get(
                    f"{scope}.{head}" if scope else head
                )
                if candidate is not None:
                    return site(PROJECT, target=candidate)
                if not scope:
                    break
                scope = scope.rsplit(".", 1)[0] if "." in scope else ""
            if head in mod.classes:
                return self._constructor_site(site, mod.classes[head])

        # import-table expansion: module.func, aliased modules, from-imports
        expanded = mod.imports.get(head)
        if expanded is not None:
            full = ".".join([expanded, *parts[1:]])
            resolved = self._symbols.get(full)
            if resolved is not None:
                return site(PROJECT, target=resolved, dotted=full)
            cls_info = self._class_symbols.get(full)
            if cls_info is not None:
                return self._constructor_site(site, cls_info, dotted=full)
            # Class imported from a project module, then .method called
            if len(parts) >= 2:
                cls_info = self._class_symbols.get(
                    ".".join([expanded, *parts[1:-1]])
                )
                if cls_info is not None:
                    resolved = self._method_on(cls_info, parts[-1])
                    if resolved is not None:
                        return site(PROJECT, target=resolved, dotted=full)
                    return site(UNKNOWN, dotted=full)
            prefix = expanded.split(".")[0]
            if prefix in self._by_module or any(
                m.startswith(f"{prefix}.") for m in self._by_module
            ):
                # names the table knows belong to the project but cannot
                # pin (getattr chains, re-exports): assume worst
                return site(UNKNOWN, dotted=full)
            return site(EXTERNAL, dotted=full)

        # unimported bare name: a builtin (external) unless the module
        # star-imports, which can shadow anything — then assume worst
        if len(parts) == 1:
            if mod.has_star_import:
                return site(UNKNOWN)
            return site(EXTERNAL)
        return site(UNKNOWN)

    def _constructor_site(
        self,
        site: Callable[..., CallSite],
        cls: _ClassInfo,
        *,
        dotted: str | None = None,
    ) -> CallSite:
        init = self._method_on(cls, "__init__")
        if init is not None:
            return site(PROJECT, target=init, dotted=dotted)
        return site(BENIGN, dotted=dotted)  # implicit object.__init__

    def _method_on(self, cls: _ClassInfo, method: str) -> FuncKey | None:
        """Method lookup on a class, following project base classes."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            marker = f"{current.module}.{current.name}"
            if marker in seen:
                continue
            seen.add(marker)
            if method in current.methods:
                return current.methods[method]
            mod = self._modules[current.path]
            for base in current.bases:
                pinned = self._class_dotted(mod, base)
                if pinned is not None:
                    queue.append(self._class_symbols[pinned])
        return None


class ReachabilityWalk:
    """Fixed-point "does this function reach a marked call?" driver.

    ``classify`` maps a :class:`CallSite` to a reason string when the
    site itself is a marker (``"time.sleep"``), else None.  ``reason``
    then answers reachability through project edges: the result is the
    human-readable chain (``"_take_batch → helper → time.sleep"``) or
    None.  Async project callees are not followed — *calling* an
    ``async def`` just builds a coroutine; its body runs under the event
    loop's own rules and is checked as its own entry point.  Cycles are
    tolerated (an on-stack callee contributes nothing — if the cycle
    reaches a marker some other way, that path reports it).
    """

    def __init__(
        self, graph: CallGraph, classify: Callable[[CallSite], str | None]
    ) -> None:
        self._graph = graph
        self._classify = classify
        self._memo: dict[FuncKey, str | None] = {}
        self._stack: set[FuncKey] = set()

    def site_reason(self, site: CallSite) -> str | None:
        """Reason one call site is (or transitively reaches) a marker."""
        direct = self._classify(site)
        if direct is not None:
            return direct
        if (
            site.kind == PROJECT
            and site.target is not None
            and not site.target_is_async
        ):
            deeper = self.reason(site.target)
            if deeper is not None:
                return f"{site.target.qualname} → {deeper}"
        return None

    def reason(self, key: FuncKey) -> str | None:
        """First marker chain reachable from ``key``'s body, or None."""
        if key in self._memo:
            return self._memo[key]
        if key in self._stack:
            return None  # recursion: resolved by the outer frame
        self._stack.add(key)
        try:
            found: str | None = None
            for site in self._graph.call_sites(key):
                if site.awaited:
                    continue
                found = self.site_reason(site)
                if found is not None:
                    break
            self._memo[key] = found
            return found
        finally:
            self._stack.discard(key)
