"""RL002 cost-accounting — all traffic rides the Machine's charged API.

The simulator's core promise (DESIGN.md, PR 4's no-drift contract) is
that *every* byte on the wire and every elementary operation is charged
through :class:`repro.machine.machine.Machine`, so ``verify_against_
trace`` can prove the metrics equal the phase breakdowns.  Direct
mailbox or frame access outside the machine layer breaks that promise
twice over: the bytes move without a ``T_Startup + m·T_Data`` charge,
and (since PR 1) they skip the reliable-delivery protocol's checksum
verification.

Outside the exempt transport layers (``machine/``, ``faults/``, the
recovery ghost-rank virtualisation) the rule flags:

* ``….mailbox`` / ``….host_mailbox`` attribute access — raw frame queues;
* ``….deliver(…)`` calls — injecting frames without a send charge;
* ``….procs[…]`` subscripts — reaching around :meth:`Machine.processor`;
* ``Processor(…)`` construction — private simulator internals;
* ``….receive(…)`` on a processor object (a name bound from
  ``machine.processor(…)`` / ``machine.procs[…]``, or the chained call
  ``machine.processor(r).receive(…)``) — the uncharged, checksum-blind
  receive; :meth:`Machine.receive` is the verified path.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, dotted_name, register_rule

__all__ = ["CostAccountingRule"]

_FORBIDDEN_ATTRS = {"mailbox", "host_mailbox"}


def _processor_bound_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names assigned from ``….processor(…)`` / ``….procs[…]`` locally."""
    bound: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_proc = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "processor"
        ) or (
            isinstance(value, ast.Subscript)
            and isinstance(value.value, ast.Attribute)
            and value.value.attr == "procs"
        )
        if is_proc:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


@register_rule
class CostAccountingRule(Rule):
    """No direct mailbox/transport access outside the machine layer."""

    code = "RL002"
    name = "cost-accounting"
    summary = (
        "sends and receives must flow through Machine's charged, "
        "checksum-verified API; no raw mailbox/frame access"
    )
    protects = (
        "Section 4 cost accounting + PR 1 reliable delivery + PR 4 "
        "metrics==trace no-drift contract"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.transport_scope) and not ctx.matches(
            ctx.config.transport_exempt
        )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._check(ctx)

    def _check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        # per-function dataflow: names bound to Processor objects
        proc_names: set[str] = set()
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                proc_names |= _processor_bound_names(node)
        for node in ctx.walk():
            if isinstance(node, ast.Attribute):
                if node.attr in _FORBIDDEN_ATTRS:
                    yield self.diag(
                        ctx,
                        node,
                        f"direct .{node.attr} access outside the machine "
                        "layer moves bytes without charging the cost model",
                        hint="use machine.send/send_to_host and "
                        "machine.receive/host_receive (charged + "
                        "checksum-verified)",
                    )
            elif isinstance(node, ast.Subscript) and (
                isinstance(node.value, ast.Attribute)
                and node.value.attr == "procs"
            ):
                yield self.diag(
                    ctx,
                    node,
                    "indexing .procs[...] reaches around "
                    "Machine.processor()'s liveness guard",
                    hint="call machine.processor(rank) — it checks the "
                    "rank is in range and alive",
                )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "deliver"
                ):
                    yield self.diag(
                        ctx,
                        node,
                        ".deliver() injects a frame without a send charge "
                        "or a checksum",
                        hint="send through machine.send(...) so the cost "
                        "model and reliable delivery both see the frame",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "receive"
                    and self._is_processor_receive(node.func, proc_names)
                ):
                    yield self.diag(
                        ctx,
                        node,
                        "Processor.receive() bypasses Machine.receive()'s "
                        "checksum verification and liveness guard",
                        hint="use machine.receive(rank, tag, phase=...) — "
                        "identical fault-free, checksum-verified under "
                        "fault injection",
                    )
                elif dotted == "Processor":
                    yield self.diag(
                        ctx,
                        node,
                        "constructing Processor() outside the machine "
                        "layer builds an unaccounted transport endpoint",
                        hint="let Machine own its processors; talk to them "
                        "via machine.processor(rank)",
                    )

    @staticmethod
    def _is_processor_receive(
        func: ast.Attribute, proc_names: set[str]
    ) -> bool:
        """``proc.receive(…)`` / ``machine.processor(r).receive(…)``?"""
        base = func.value
        if isinstance(base, ast.Name):
            return base.id in proc_names
        if isinstance(base, ast.Call) and isinstance(
            base.func, ast.Attribute
        ):
            return base.func.attr == "processor"
        if isinstance(base, ast.Subscript) and isinstance(
            base.value, ast.Attribute
        ):
            return base.value.attr == "procs"
        return False
