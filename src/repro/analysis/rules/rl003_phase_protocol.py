"""RL003 phase-protocol — schemes follow the paper-legal phase order.

Sections 3.1–3.3 define the three legal orderings over one shared
grammar:

    partition → {compress | encode}?  → distribute → {decompress | decode}?

* **SFC** (§3.1): partition → distribute dense → compress locally;
* **CFS** (§3.2): partition → compress on host → distribute packed;
* **ED**  (§3.3): partition → encode on host → distribute → decode.

The rule proves every distribution scheme satisfies that grammar by
abstract interpretation of its driver function: each statement is
classified into phase *events* and the event sequence (per control-flow
path) must be accepted by the grammar's automaton.

Event classification (the markers are the charged API itself, so the
static protocol and the dynamic cost ledger can't drift apart):

=============================================  ==========================
``plan.extract_all(…)``                        PARTITION
``charge_host_ops(…, Phase.COMPRESSION)``      PRE  (host compress/encode)
``send/send_to_host(…, Phase.DISTRIBUTION)``   DISTRIBUTE
``charge_host_ops(…, Phase.DISTRIBUTION)``     DISTRIBUTE (pack charges)
``charge_proc_ops(…, Phase.DISTRIBUTION)``     DISTRIBUTE (unpack/convert)
``charge_proc_ops(…, Phase.COMPRESSION)``      POST (local compress/decode)
``pool.submit(…, Phase.DISTRIBUTION, …)``      DISTRIBUTE (rank task)
``pool.submit(…, Phase.COMPRESSION, …)``       POST (rank task)
=============================================  ==========================

Rank tasks (the executor tier) charge processor-side work through the
pool instead of calling ``charge_proc_ops`` inline, so a ``.submit``
carrying a ``Phase`` argument classifies exactly like the charge it
replays: the protocol proof covers both execution styles.

Accepted sequences are exactly the monotone ones
``PARTITION* PRE* DISTRIBUTE* POST*`` with at least one PARTITION before
the first DISTRIBUTE.  ``if``/``elif``/``else`` and ``try`` fork the
analysis per path (the JDS variants select their ordering by branch);
loop bodies are traversed once in source order — a sound linearisation
for the host-sequential machine model, where each loop stays within one
phase.

Analysed functions: methods named ``run``/``_run`` of classes deriving
from a ``…Scheme`` base, and module functions named ``run_*`` inside the
configured scheme scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, register_rule

__all__ = ["PhaseProtocolRule"]

#: event categories in their only legal order
PARTITION, PRE, DISTRIBUTE, POST = "partition", "pre-compress", "distribute", "post-compress"
_ORDER = {PARTITION: 0, PRE: 1, DISTRIBUTE: 2, POST: 3}

#: cap on distinct control-flow paths analysed per function
_MAX_PATHS = 128

_SEND_NAMES = {"send", "send_to_host"}
_CHARGE_HOST = "charge_host_ops"
_CHARGE_PROC = "charge_proc_ops"
_SUBMIT = "submit"


def _phase_argument(call: ast.Call) -> str | None:
    """``"DISTRIBUTION"``/``"COMPRESSION"`` from a ``Phase.X`` argument."""
    candidates: list[ast.expr] = list(call.args)
    candidates.extend(kw.value for kw in call.keywords if kw.value is not None)
    for arg in candidates:
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "Phase"
        ):
            return arg.attr
    return None


def _classify_call(call: ast.Call) -> tuple[str, ast.Call] | None:
    """Map one call to a phase event, if it is a marker."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr == "extract_all":
        return (PARTITION, call)
    phase = _phase_argument(call)
    if attr in _SEND_NAMES and phase == "DISTRIBUTION":
        return (DISTRIBUTE, call)
    if attr == _CHARGE_HOST and phase == "COMPRESSION":
        return (PRE, call)
    if attr == _CHARGE_HOST and phase == "DISTRIBUTION":
        return (DISTRIBUTE, call)
    if attr == _CHARGE_PROC and phase == "DISTRIBUTION":
        return (DISTRIBUTE, call)
    if attr == _CHARGE_PROC and phase == "COMPRESSION":
        return (POST, call)
    if attr == _SUBMIT and phase == "DISTRIBUTION":
        return (DISTRIBUTE, call)
    if attr == _SUBMIT and phase == "COMPRESSION":
        return (POST, call)
    return None


def _events_of_expr(node: ast.AST) -> list[tuple[str, ast.Call]]:
    """Phase events inside one (non-branching) expression/statement."""
    events: list[tuple[str, ast.Call]] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            event = _classify_call(child)
            if event is not None:
                events.append(event)
    return events


def _paths_of(body: Sequence[ast.stmt]) -> list[list[tuple[str, ast.Call]]]:
    """Event sequences along every control-flow path of ``body``.

    Branching statements fork; loop bodies contribute their events once,
    in source order.  The path count is capped at ``_MAX_PATHS`` (the
    analysis degrades to the first N paths, never crashes).
    """
    paths: list[list[tuple[str, ast.Call]]] = [[]]

    def extend_all(suffixes: list[list[tuple[str, ast.Call]]]) -> None:
        nonlocal paths
        new_paths = []
        for prefix in paths:
            for suffix in suffixes:
                new_paths.append(prefix + suffix)
                if len(new_paths) >= _MAX_PATHS:
                    break
            if len(new_paths) >= _MAX_PATHS:
                break
        paths = new_paths

    for stmt in body:
        if isinstance(stmt, ast.If):
            head = _events_of_expr(stmt.test)
            forks = [
                head + p for p in _paths_of(stmt.body)
            ] + [
                head + p for p in _paths_of(stmt.orelse)
            ]
            extend_all(forks)
        elif isinstance(stmt, ast.Try):
            base = _paths_of(stmt.body)
            forks = [p + q for p in base for q in _paths_of(stmt.orelse)]
            forks += [
                p + h
                for p in base
                for handler in stmt.handlers
                for h in _paths_of(handler.body)
            ] or base
            final = _paths_of(stmt.finalbody)
            extend_all([p + f for p in forks for f in final])
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = _events_of_expr(
                stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            )
            body_paths = _paths_of(stmt.body)
            else_paths = _paths_of(stmt.orelse)
            extend_all(
                [head + b + e for b in body_paths for e in else_paths]
            )
        elif isinstance(stmt, ast.With):
            head: list[tuple[str, ast.Call]] = []
            for item in stmt.items:
                head.extend(_events_of_expr(item.context_expr))
            extend_all([head + p for p in _paths_of(stmt.body)])
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested definitions are analysed separately if eligible
        else:
            extend_all([_events_of_expr(stmt)])
    return paths


def _is_scheme_class(cls: ast.ClassDef) -> bool:
    """True for classes deriving from a ``…Scheme`` base."""
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name.endswith("Scheme"):
            return True
    return False


@register_rule
class PhaseProtocolRule(Rule):
    """Schemes must follow partition → compress? → distribute → decode?."""

    code = "RL003"
    name = "phase-protocol"
    summary = (
        "distribution schemes must order their phases "
        "partition → {compress|encode}? → distribute → {decompress|decode}?"
    )
    protects = "paper §3.1 (SFC), §3.2 (CFS), §3.3 (ED) phase orderings"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.scheme_scope)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for func in self._driver_functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _driver_functions(
        self, tree: ast.Module
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and _is_scheme_class(node):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and item.name in ("run", "_run"):
                        yield item
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith("run_"):
                yield node

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Diagnostic]:
        seen: set[tuple[int, str]] = set()
        for path in _paths_of(func.body):
            if not any(kind == DISTRIBUTE for kind, _ in path):
                continue  # phase-free helper path: nothing to prove
            violation = self._first_violation(path)
            if violation is None:
                continue
            kind, call, message = violation
            key = (call.lineno, message)
            if key in seen:
                continue
            seen.add(key)
            yield self.diag(
                ctx,
                call,
                f"{func.name}: {message}",
                hint="legal order is partition → {compress|encode}? → "
                "distribute → {decompress|decode}? (paper §3.1–3.3)",
            )

    @staticmethod
    def _first_violation(
        path: list[tuple[str, ast.Call]]
    ) -> tuple[str, ast.Call, str] | None:
        """First grammar violation along one event path, if any."""
        seen_partition = False
        frontier = 0  # highest category reached so far
        for kind, call in path:
            rank = _ORDER[kind]
            if kind == PARTITION:
                if frontier > 0:
                    return (
                        kind,
                        call,
                        "partitions after compression/distribution began "
                        "(partition must be the first phase)",
                    )
                seen_partition = True
                continue
            if kind == DISTRIBUTE and not seen_partition:
                return (
                    kind,
                    call,
                    "distributes before partitioning (no plan.extract_all "
                    "precedes the first charged send)",
                )
            if rank < frontier:
                if kind == PRE:
                    return (
                        kind,
                        call,
                        "host-side compression/encoding after distribution "
                        "began (compress/encode must precede the sends)",
                    )
                return (
                    kind,
                    call,
                    "distribution work after local decompression/decoding "
                    "began (distribute must precede decode)",
                )
            frontier = max(frontier, rank)
        return None
