"""RL007 async-blocking — event-loop coroutines never block the thread.

The PR 9 throughput service runs *everything* on one event loop: the
listener, the JSONL read loops, the scheduler workers.  One blocking
call anywhere in that async call tree stalls every connection at once —
and, worse, can deadlock the loop against itself (the PR 9 starvation
bug was exactly a worker monopolising the loop that its own
``run_in_executor`` completion needed).  The contract is simple:

    a coroutine in ``service/`` may block **only** through
    ``loop.run_in_executor(...)`` — never inline.

Proving it needs the call graph: the blocking call is rarely written in
the ``async def`` itself.  ``_worker`` calls ``_take_batch`` calls a
helper that calls ``time.sleep`` — the rule follows every resolvable
project edge (see :mod:`repro.analysis.callgraph`) from each ``async
def`` in the configured scope and reports the *call site in the
coroutine* with the full chain in the message.

What counts as blocking (all configurable on :class:`LintConfig`):

* ``blocking_calls`` — exact dotted names after import-alias expansion:
  ``time.sleep``, ``subprocess.run``, ``socket.create_connection``,
  builtin ``open``, ``select.select``, …;
* ``blocking_roots`` — project ``Class.method`` suffixes blocking by
  contract (``RunSession.run`` joins rank workers; ``connection.wait``
  parks the thread) even though their bodies resolve too deep to walk;
* ``blocking_suspects`` — the assume-worst tier: method names like
  ``wait``/``recv``/``accept``/``readline`` on receivers the graph
  cannot type.  An *awaited* call is always exempt (awaiting yields),
  and so is anything merely *passed* to ``run_in_executor`` — the rule
  follows calls, and an executor argument is a reference, not a call.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..callgraph import EXTERNAL, UNKNOWN, CallSite, ReachabilityWalk
from ..diagnostics import Diagnostic
from ..engine import (
    FileContext,
    LintConfig,
    ProjectContext,
    Rule,
    register_rule,
)

__all__ = ["AsyncBlockingRule"]


@register_rule
class AsyncBlockingRule(Rule):
    """No transitively-blocking call reachable from a service coroutine."""

    code = "RL007"
    name = "async-blocking"
    summary = (
        "async def bodies in the service layer must not reach a blocking "
        "call except through run_in_executor (interprocedural)"
    )
    protects = (
        "the PR 9 single-event-loop service: one inline blocking call "
        "stalls every connection and can deadlock the loop on itself"
    )
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterable[Diagnostic]:
        cfg = project.config
        if not cfg.async_scope:
            return
        walk = ReachabilityWalk(
            project.graph, lambda site: self._classify(cfg, site)
        )
        for ctx in project.scoped(cfg.async_scope):
            yield from self._check_file(ctx, project, walk)

    def _classify(self, cfg: LintConfig, site: CallSite) -> str | None:
        """Reason string when one call site itself blocks, else None."""
        if site.awaited:
            return None
        names = {n for n in (site.dotted, site.raw) if n is not None}
        for dotted in sorted(names):
            if dotted in cfg.blocking_calls:
                return dotted
            if any(
                dotted == root or dotted.endswith(f".{root}")
                for root in cfg.blocking_roots
            ):
                return f"{dotted} (blocking by contract)"
        if (
            site.kind in (UNKNOWN, EXTERNAL)
            and site.attr is not None
            and site.raw is not None
            and "." in site.raw
            and site.attr in cfg.blocking_suspects
        ):
            return (
                f"{site.raw} (unresolved receiver; .{site.attr}() is "
                "assumed blocking)"
            )
        return None

    def _check_file(
        self,
        ctx: FileContext,
        project: ProjectContext,
        walk: ReachabilityWalk,
    ) -> Iterator[Diagnostic]:
        graph = project.graph
        for info in graph.functions_in(ctx.path):
            if not info.is_async:
                continue
            seen: set[tuple[int, str]] = set()
            for site in graph.call_sites(info.key):
                if site.awaited:
                    continue
                reason = walk.site_reason(site)
                if reason is None:
                    continue
                key = (site.line, reason)
                if key in seen:
                    continue
                seen.add(key)
                label = site.raw or site.dotted or "<call>"
                chain = reason if reason == label else f"{label} → {reason}"
                yield Diagnostic(
                    path=ctx.path,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"{info.display}: blocking call reachable from an "
                        f"async def — {chain}"
                    ),
                    hint=(
                        "move the blocking work into a sync helper and "
                        "await loop.run_in_executor(None, helper, ...) — "
                        "or await the async equivalent (asyncio.sleep, "
                        "StreamReader) instead"
                    ),
                )
