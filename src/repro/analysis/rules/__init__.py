"""The shipped rule set.

Importing this package registers every rule with the engine registry
(:func:`repro.analysis.engine.register_rule` runs at class-definition
time).  One module per rule keeps each invariant's machinery — and its
fixture corpus under ``tests/analysis/fixtures/`` — independently
reviewable.
"""

from . import (  # noqa: F401  (registration imports)
    rl001_kernel_boundary,
    rl002_cost_accounting,
    rl003_phase_protocol,
    rl004_determinism,
    rl005_obs_transparency,
    rl006_exit_contract,
    rl007_async_blocking,
    rl008_async_liveness,
    rl009_shm_lifecycle,
    rl010_task_purity,
    rl011_fork_safety,
)

__all__ = [
    "rl001_kernel_boundary",
    "rl002_cost_accounting",
    "rl003_phase_protocol",
    "rl004_determinism",
    "rl005_obs_transparency",
    "rl006_exit_contract",
    "rl007_async_blocking",
    "rl008_async_liveness",
    "rl009_shm_lifecycle",
    "rl010_task_purity",
    "rl011_fork_safety",
]
