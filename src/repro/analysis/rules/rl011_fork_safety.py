"""RL011 fork-safety — threads and ``fork()`` never mix.

The sweep orchestrator (PR 8) and the rank executor (PR 6) spawn worker
processes with the ``fork`` start method on purpose: it is the only way
the rank pays no re-import cost and inherits the prepared scheme state
page-for-page.  ``fork()`` in a multi-threaded parent is undefined
behaviour in all but name: the child gets a copy of *one* thread plus
every lock in whatever state some other thread held it — a mutex held
by a non-copied thread stays locked forever (the classic post-fork
deadlock in logging/malloc internals).  CPython documents the
combination as unsafe; this rule makes the repo's two fork sites prove
it statically:

* **part A** — in the configured ``fork_scope`` files (the modules that
  own fork spawn sites), no function may create a thread, directly or
  through any resolvable project call: ``threading.Thread``/``Timer``,
  ``ThreadPoolExecutor``, ``multiprocessing.dummy`` pools.
* **part B** — no ``os.fork`` / ``os.forkpty`` reachable from *any*
  ``async def`` in the tree: the event loop owns watcher threads and
  signal handling state that a raw fork shears in half (``asyncio``
  refuses it loudly at runtime; we refuse it at review time).

Matching is exact on alias-expanded dotted names — no assume-worst
suffix tier here, because ``Machine(...)`` / ``ctx.Process(...)`` calls
saturate the exec layer and name-suffix guessing would drown the rule
in false positives.  The call graph's project edges supply the
interprocedural reach.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..callgraph import CallGraph, CallSite, FunctionInfo, ReachabilityWalk
from ..diagnostics import Diagnostic
from ..engine import ProjectContext, Rule, register_rule

__all__ = ["ForkSafetyRule"]

#: alias-expanded constructors that start (or lazily own) threads
_THREAD_MARKERS = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.pool.ThreadPool",
        "multiprocessing.dummy.Pool",
        "multiprocessing.dummy.Process",
    }
)

#: raw fork primitives — never callable from async context
_FORK_MARKERS = frozenset({"os.fork", "os.forkpty"})


def _match(site: CallSite, markers: frozenset[str]) -> str | None:
    for name in (site.dotted, site.raw):
        if name is not None and name in markers:
            return name
    return None


@register_rule
class ForkSafetyRule(Rule):
    """No thread creation in fork-spawning modules; no fork from async."""

    code = "RL011"
    name = "fork-safety"
    summary = (
        "no thread creation reachable in fork-based spawn modules, and "
        "no os.fork reachable from async contexts"
    )
    protects = (
        "the fork start method: forking a threaded parent copies held "
        "locks with no thread to release them — post-fork deadlock"
    )
    requires_project = True

    def check_project(self, project: ProjectContext) -> Iterable[Diagnostic]:
        graph = project.graph
        thread_walk = ReachabilityWalk(
            graph, lambda site: _match(site, _THREAD_MARKERS)
        )
        fork_walk = ReachabilityWalk(
            graph, lambda site: _match(site, _FORK_MARKERS)
        )
        # part A: fork-scope modules must stay thread-free
        for ctx in project.scoped(project.config.fork_scope):
            for info in graph.functions_in(ctx.path):
                yield from self._flag_reaches(
                    graph,
                    info,
                    thread_walk,
                    message=(
                        "creates a thread in a fork-spawning module — a "
                        "forked child copies locks held by threads that "
                        "do not survive the fork"
                    ),
                    hint=(
                        "keep this module thread-free: do the threaded "
                        "work after the fork, or switch the helper to "
                        "processes"
                    ),
                )
        # part B: async defs anywhere must not reach a raw fork
        for info in graph.functions():
            if not info.is_async:
                continue
            yield from self._flag_reaches(
                graph,
                info,
                fork_walk,
                message=(
                    "os.fork reachable from an async def — forking "
                    "shears the event loop's watcher threads and signal "
                    "state in half"
                ),
                hint=(
                    "spawn through multiprocessing/subprocess from a "
                    "sync helper outside the loop, or use "
                    "asyncio.create_subprocess_exec"
                ),
            )

    def _flag_reaches(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        walk: ReachabilityWalk,
        *,
        message: str,
        hint: str,
    ) -> Iterator[Diagnostic]:
        seen: set[tuple[int, str]] = set()
        for site in graph.call_sites(info.key):
            reason = walk.site_reason(site)
            if reason is None:
                continue
            key = (site.line, reason)
            if key in seen:
                continue
            seen.add(key)
            label = site.raw or site.dotted or "<call>"
            chain = reason if reason == label else f"{label} → {reason}"
            yield Diagnostic(
                path=info.key.path,
                line=site.line,
                col=site.col,
                code=self.code,
                message=f"{info.display}: {message} ({chain})",
                hint=hint,
            )
