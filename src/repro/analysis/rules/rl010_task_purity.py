"""RL010 rank-task-purity — ``@rank_task`` bodies must replay byte-identically.

The executor's correctness story (PR 6–7) rests on one equivalence: a
task that ran inside a rank *process* must produce exactly the bytes the
in-process simulator produces for the same inputs, because the
differential battery compares them and the charge ledger replays them.
That only holds if task bodies are **pure functions of their payload**:

* no ``global`` / ``nonlocal`` mutation — rank processes are forked,
  so module state silently diverges between sim and process replay;
* no wall-clock *reads* (``time.time``, ``perf_counter``,
  ``datetime.now``…) — two replays never see the same clock.
  ``time.sleep`` is deliberately **legal**: the registered ``sleep``
  task consumes time without observing it;
* no unseeded RNG — the global ``random`` module and numpy's global
  generator are process-wide state; a task must derive randomness from
  its payload (``default_rng(seed)``) or not at all;
* no direct observability/ledger access (``obs.…``, op-charging
  hooks) — charging happens in the *harness* around the task, once;
  a task that charges from inside double-counts under replay.

Accounting for a legitimately-impure task is possible but must be
explicit: list ``module.task_name`` in ``task_purity_allow``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, register_rule
from .rl004_determinism import (
    _GLOBAL_RANDOM,
    _NUMPY_ALLOWED,
    _NUMPY_GLOBAL_RANDOM_PREFIXES,
    _WALL_CLOCKS,
)

__all__ = ["RankTaskPurityRule"]

#: clock reads beyond RL004's wire set — tasks may not observe any clock
_TASK_WALL_CLOCKS = _WALL_CLOCKS | {
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}

#: obs/ledger access: the harness charges around the task, never inside
_LEDGER_CALLS = {"charge_proc_ops", "charge_host_ops"}
_LEDGER_HEADS = ("obs.", "self.obs.", "ledger.", "self.ledger.")


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_rank_task(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in func.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = _dotted(target)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "rank_task":
            return True
    return False


def _body_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class RankTaskPurityRule(Rule):
    """``@rank_task`` functions stay pure w.r.t. charge replay."""

    code = "RL010"
    name = "rank-task-purity"
    summary = (
        "@rank_task bodies: no global/nonlocal mutation, wall-clock "
        "reads, unseeded RNG, or direct obs/ledger access"
    )
    protects = (
        "byte-identity of sim vs. process replay: task output may "
        "depend only on the task payload"
    )

    def applies(self, ctx: FileContext) -> bool:
        return bool(ctx.config.task_scope) and ctx.config.matches(
            ctx.path, ctx.config.task_scope
        )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        module = ctx.path.rsplit("/", 1)[-1].removesuffix(".py")
        for func in ast.walk(ctx.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not _is_rank_task(func):
                continue
            if f"{module}.{func.name}" in ctx.config.task_purity_allow:
                continue
            yield from self._check_task(ctx, func)

    def _check_task(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        prefix = f"@rank_task `{func.name}`"
        for node in _body_nodes(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield self.diag(
                    ctx,
                    node,
                    f"{prefix} declares `{kind} {', '.join(node.names)}` — "
                    "module state diverges between sim and process replay",
                    hint=(
                        "thread the state through the task payload and "
                        "return value instead of mutating enclosing scope"
                    ),
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, prefix, node)

    def _check_call(
        self, ctx: FileContext, prefix: str, call: ast.Call
    ) -> Iterator[Diagnostic]:
        dotted = _dotted(call.func)
        if dotted is None:
            return
        if dotted in _TASK_WALL_CLOCKS:
            yield self.diag(
                ctx,
                call,
                f"{prefix} reads the wall clock via `{dotted}()` — two "
                "replays never observe the same time",
                hint=(
                    "take timestamps in the harness around run_task(); "
                    "if the task needs a duration, pass it in the payload"
                ),
            )
        elif dotted in _GLOBAL_RANDOM or (
            dotted.startswith(_NUMPY_GLOBAL_RANDOM_PREFIXES)
            and dotted not in _NUMPY_ALLOWED
        ):
            yield self.diag(
                ctx,
                call,
                f"{prefix} draws from the process-global RNG via "
                f"`{dotted}()` — replay order changes the stream",
                hint=(
                    "derive randomness from the payload: rng = "
                    "numpy.random.default_rng(seed) with a seed argument"
                ),
            )
        elif dotted.rsplit(".", 1)[-1] in _LEDGER_CALLS or dotted.startswith(
            _LEDGER_HEADS
        ):
            yield self.diag(
                ctx,
                call,
                f"{prefix} touches the obs/charge ledger via `{dotted}()` "
                "— the harness charges around the task; charging inside "
                "double-counts under replay",
                hint=(
                    "return op counts in the task result and let "
                    "run_task() charge them once"
                ),
            )
