"""RL004 determinism — wire formats and cost charges are pure functions.

Golden-trace byte-identity (PR 1/PR 3) only holds if the modules that
build wire buffers and charge costs are deterministic: same inputs, same
bytes, same charges, on every run and every platform.  Three classic ways
to break that silently:

* **wall clocks** — ``time.time()`` / ``datetime.now()`` leaking into a
  charged quantity or wire field;
* **unseeded randomness** — module-level ``random.random()`` /
  ``np.random.rand()`` draw from global, cross-test-polluted state; the
  repo's convention is an explicitly seeded ``random.Random(seed)`` /
  ``np.random.default_rng(seed)`` (the fault injector, the generators);
* **set-iteration order** — ``for x in {…}`` / ``set(…)`` iterates in
  hash order, which varies across processes for str keys; anything that
  feeds a wire buffer or a charge must iterate a list, a tuple or
  ``sorted(…)``.

The rule patrols the configured wire-format/cost-model modules only —
elsewhere (CLI wall-clock prints, benchmark timers) these calls are fine.
``time.perf_counter`` is always legal: it feeds wall-clock observability,
which is explicitly outside the byte-identity contract.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, dotted_name, register_rule

__all__ = ["DeterminismRule"]

#: wall-clock calls that must not feed wire formats or cost charges
_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

#: module-level (unseeded, global-state) random draws
_GLOBAL_RANDOM = {
    "random.betavariate", "random.choice", "random.choices",
    "random.expovariate", "random.gauss", "random.getrandbits",
    "random.randint", "random.random", "random.randrange",
    "random.sample", "random.seed", "random.shuffle", "random.uniform",
}

#: numpy legacy global-state RNG (np.random.default_rng(seed) is legal)
_NUMPY_GLOBAL_RANDOM_PREFIXES = ("np.random.", "numpy.random.")
_NUMPY_ALLOWED = {"np.random.default_rng", "numpy.random.default_rng"}


@register_rule
class DeterminismRule(Rule):
    """No wall clocks, global RNGs or set-order iteration in wire modules."""

    code = "RL004"
    name = "determinism"
    summary = (
        "wire-format/cost-model modules must be deterministic: no wall "
        "clocks, unseeded RNGs or set-iteration order"
    )
    protects = (
        "golden-trace byte-identity (PR 1) and backend byte-identity "
        "(PR 3): same inputs → same bytes, same charges"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.determinism_scope)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._check(ctx)

    def _check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted in _WALL_CLOCKS:
                    yield self.diag(
                        ctx,
                        node,
                        f"wall clock {dotted}() in a deterministic module "
                        "(charges and wire bytes must not depend on it)",
                        hint="derive times from the CostModel's simulated "
                        "clock; wall clocks belong to obs/ "
                        "(time.perf_counter) and benchmarks",
                    )
                elif dotted in _GLOBAL_RANDOM:
                    yield self.diag(
                        ctx,
                        node,
                        f"global-state {dotted}() is unseeded and "
                        "cross-test polluted",
                        hint="thread an explicit random.Random(seed) "
                        "instance through (the FaultInjector convention)",
                    )
                elif dotted.startswith(
                    _NUMPY_GLOBAL_RANDOM_PREFIXES
                ) and dotted not in _NUMPY_ALLOWED:
                    yield self.diag(
                        ctx,
                        node,
                        f"legacy numpy global RNG {dotted}() in a "
                        "deterministic module",
                        hint="use np.random.default_rng(seed) and pass the "
                        "Generator explicitly",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    yield self.diag(
                        ctx,
                        node.iter,
                        "iterating a set in a deterministic module: "
                        "element order is hash-order and varies across "
                        "processes",
                        hint="iterate sorted(...) or keep a list/tuple "
                        "(dicts preserve insertion order and are fine)",
                    )
            elif isinstance(node, ast.comprehension):
                if self._is_set_expr(node.iter):
                    yield self.diag(
                        ctx,
                        node.iter,
                        "comprehension over a set in a deterministic "
                        "module: element order is hash-order",
                        hint="wrap the set in sorted(...) before iterating",
                    )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        """Set literal, set comprehension or ``set(…)``/``frozenset(…)``."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False
