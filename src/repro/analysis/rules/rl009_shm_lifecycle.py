"""RL009 shm-lifecycle — every SharedMemory segment is owned by someone.

The exec layer ships rank arguments and results through POSIX shared
memory (``exec/wire.py``).  A ``SharedMemory`` handle that is neither
closed nor handed to the segment ledger is a kernel object leak: the
name stays in ``/dev/shm`` after the process dies, and the supervisor's
leak reaper (PR 7) only knows about segments the ledger recorded.  The
discipline ``wire.py`` established is therefore mandatory:

* the **creator** closes (and eventually unlinks) the segment in a
  ``finally:`` block, *and/or*
* the segment name is **registered** with the ledger hook
  (``on_segment(shm.name)``) so crash-cleanup can reap it.

This rule walks every function in the configured ``shm_scope`` and
checks each ``SharedMemory(...)`` construction (create *or* attach —
both take a kernel handle) for one of those outcomes in the same scope:

* bound to a name → that name must have ``.close()`` / ``.unlink()``
  inside a ``finally:`` block of the scope, or be passed (as ``x`` or
  ``x.name``) to a configured ledger call;
* not bound at all → flagged outright: an anonymous handle cannot be
  closed.

The walk is scope-local and conservative: passing the handle to an
arbitrary helper does not count as a release — ownership transfer must
go through the ledger, which is the one transfer the reaper understands.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Sequence

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, register_rule

__all__ = ["ShmLifecycleRule"]


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_shm_ctor(call: ast.Call) -> bool:
    dotted = _dotted(call.func)
    return dotted is not None and (
        dotted == "SharedMemory" or dotted.endswith(".SharedMemory")
    )


def _scope_nodes(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk one scope's statements without entering nested defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class ShmLifecycleRule(Rule):
    """SharedMemory create/attach pairs with close/unlink or the ledger."""

    code = "RL009"
    name = "shm-lifecycle"
    summary = (
        "every SharedMemory create/attach in exec/ is closed in a "
        "finally block or registered with the segment ledger"
    )
    protects = (
        "/dev/shm hygiene: unowned segments outlive crashed ranks and "
        "the PR 7 leak reaper can only reap what the ledger recorded"
    )

    def applies(self, ctx: FileContext) -> bool:
        return bool(ctx.config.shm_scope) and ctx.config.matches(
            ctx.path, ctx.config.shm_scope
        )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._check_scope(ctx, ctx.tree.body)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node.body)

    def _check_scope(
        self, ctx: FileContext, body: Sequence[ast.stmt]
    ) -> Iterator[Diagnostic]:
        bound: dict[int, str] = {}  # id(call) → bound name
        ctors: list[ast.Call] = []
        for node in _scope_nodes(body):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if (
                target is not None
                and isinstance(value, ast.Call)
                and _is_shm_ctor(value)
            ):
                name = _dotted(target)
                if name is not None:
                    bound[id(value)] = name
            if isinstance(node, ast.Call) and _is_shm_ctor(node):
                ctors.append(node)
        for call in ctors:
            name = bound.get(id(call))
            if name is None:
                yield self.diag_at(
                    ctx.path,
                    call,
                    "SharedMemory handle is never bound to a name — it "
                    "cannot be closed or unlinked",
                    hint=(
                        "bind it (`shm = SharedMemory(...)`) and close it "
                        "in a finally: block, or register the name with "
                        "the segment ledger"
                    ),
                )
            elif not (
                self._released_in_finally(body, name)
                or self._registered_with_ledger(ctx, body, name)
            ):
                yield self.diag_at(
                    ctx.path,
                    call,
                    f"SharedMemory segment `{name}` is neither closed in "
                    "a finally: block nor registered with the segment "
                    "ledger in this scope",
                    hint=(
                        f"wrap the use in try/finally with `{name}.close()` "
                        f"(owner also `{name}.unlink()`), or call a ledger "
                        f"hook such as `on_segment({name}.name)` so the "
                        "reaper can clean up after a crash"
                    ),
                )

    def _released_in_finally(
        self, body: Sequence[ast.stmt], name: str
    ) -> bool:
        for node in _scope_nodes(body):
            if not (isinstance(node, ast.Try) and node.finalbody):
                continue
            for inner in _scope_nodes(node.finalbody):
                if isinstance(inner, ast.Call):
                    dotted = _dotted(inner.func)
                    if dotted in (f"{name}.close", f"{name}.unlink"):
                        return True
        return False

    def _registered_with_ledger(
        self, ctx: FileContext, body: Sequence[ast.stmt], name: str
    ) -> bool:
        hooks = ctx.config.shm_ledger_calls
        if not hooks:
            return False
        for node in _scope_nodes(body):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None or dotted.rsplit(".", 1)[-1] not in hooks:
                continue
            for arg in node.args:
                arg_name = _dotted(arg)
                if arg_name in (name, f"{name}.name"):
                    return True
        return False
