"""RL008 async-loop-liveness — every async loop path must yield.

The PR 9 starvation deadlock in ``service/queue.py`` had exactly this
shape: the scheduler worker's ``while True:`` had an idle branch that
``continue``-d without awaiting anything —

.. code-block:: python

    while True:                       # pre-fix _worker shape
        batch = self._take_batch() if self._pending else None
        if batch is None:
            if self._closed:
                return
            continue                  # ← hot spin: never yields
        await self._run(batch)

Under load the loop usually hit the ``await`` arm; idle, it monopolised
the event loop, so the executor completion that would have re-armed it
could never be scheduled.  The benchmark found it; this rule finds it at
review time.

The check is path-sensitive, in the style of RL003's phase-protocol
walk: one symbolic iteration of every ``while`` loop inside an ``async
def`` is abstractly executed, forking on ``if``/``try``/``match`` and
the skip/take of inner loops.  A path is *live* when it ends the
iteration ready to go around again (falls off the end or ``continue``)
— and every live path must have crossed an ``await`` (including ``async
for`` / ``async with``, which await by construction).  Paths that leave
the loop (``break`` / ``return`` / ``raise``) need no await: they
cannot spin.

Exception-handler paths are exempt (*cold*): a handler that completes
an iteration without awaiting is a burst of error handling, not a busy
spin — requiring an await there would force contrived sleeps into
recovery code (the fixed ``_worker``'s ``except Exception`` arm is
exactly such a path).  Busy-waiting arises on the hot, normal-control
path, which is what this rule proves live.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, register_rule

__all__ = ["AsyncLoopLivenessRule"]

#: fork cap per loop body, after which enumeration degrades gracefully
#: (kept paths are still checked; excess forks are dropped — the rule
#: may then miss a spin path, never invent one)
_MAX_PATHS = 128

_LOOP_EXITS = ("break", "return", "raise")


@dataclass(frozen=True)
class _P:
    """One abstract path through a single loop iteration."""

    awaited: bool = False
    #: None = fell off the end; else "continue"/"break"/"return"/"raise"
    exit: str | None = None
    #: True once the path has entered an except handler (exempt)
    cold: bool = False


def _has_await(node: ast.AST) -> bool:
    """Whether an ``await`` occurs in ``node``, outside nested defs."""
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(cur, ast.Await):
            return True
        stack.extend(ast.iter_child_nodes(cur))
    return False


def _merge(paths: list[_P]) -> list[_P]:
    """Dedupe and cap a path set (identical abstract states collapse)."""
    out = list(dict.fromkeys(paths))
    return out[:_MAX_PATHS]


def _swallow_inner_exits(paths: list[_P]) -> list[_P]:
    """Map an inner loop's break/continue back to plain fallthrough."""
    return [
        replace(p, exit=None) if p.exit in ("break", "continue") else p
        for p in paths
    ]


def _seq(paths: list[_P], stmts: Sequence[ast.stmt]) -> list[_P]:
    """Extend every still-running path through ``stmts``."""
    for stmt in stmts:
        nxt: list[_P] = []
        for p in paths:
            if p.exit is not None:
                nxt.append(p)
            else:
                nxt.extend(_step(p, stmt))
        paths = _merge(nxt)
    return paths


def _step(p: _P, stmt: ast.stmt) -> list[_P]:
    """All abstract continuations of one path through one statement."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return [p]
    if isinstance(stmt, ast.Return):
        return [replace(p, awaited=p.awaited or _has_await(stmt), exit="return")]
    if isinstance(stmt, ast.Raise):
        return [replace(p, awaited=p.awaited or _has_await(stmt), exit="raise")]
    if isinstance(stmt, ast.Break):
        return [replace(p, exit="break")]
    if isinstance(stmt, ast.Continue):
        return [replace(p, exit="continue")]
    if isinstance(stmt, ast.If):
        entry = replace(p, awaited=p.awaited or _has_await(stmt.test))
        return _merge(_seq([entry], stmt.body) + _seq([entry], stmt.orelse))
    if isinstance(stmt, ast.Match):
        entry = replace(p, awaited=p.awaited or _has_await(stmt.subject))
        forks: list[_P] = [entry]  # no case may match
        for case in stmt.cases:
            forks.extend(_seq([entry], case.body))
        return _merge(forks)
    if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
        if isinstance(stmt, ast.AsyncFor):
            # async for awaits __anext__ before any body runs
            entry = replace(p, awaited=True)
        else:
            header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            entry = replace(p, awaited=p.awaited or _has_await(header))
        inner = _swallow_inner_exits(_seq([entry], stmt.body))
        skipped = _seq([entry], stmt.orelse) if stmt.orelse else [entry]
        return _merge(skipped + inner)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        awaited = isinstance(stmt, ast.AsyncWith) or any(
            _has_await(item) for item in stmt.items
        )
        return _seq([replace(p, awaited=p.awaited or awaited)], stmt.body)
    if isinstance(stmt, ast.Try):
        normal = _seq([p], stmt.body)
        normal = _seq(normal, stmt.orelse)
        forks = list(normal)
        for handler in stmt.handlers:
            forks.extend(_seq([replace(p, cold=True)], handler.body))
        if stmt.finalbody:
            final = _seq([_P()], stmt.finalbody)
            forks = [
                _P(
                    awaited=a.awaited or f.awaited,
                    exit=f.exit if f.exit is not None else a.exit,
                    cold=a.cold or f.cold,
                )
                for a in forks
                for f in final
            ]
        return _merge(forks)
    # simple statement: Expr / Assign / AugAssign / Assert / Delete / …
    return [replace(p, awaited=p.awaited or _has_await(stmt))]


def _body_statements(
    func: ast.AsyncFunctionDef,
) -> Iterator[ast.stmt]:
    """Statements of ``func``'s body, not descending into nested defs."""
    stack: list[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                stack.extend(child.body)


@register_rule
class AsyncLoopLivenessRule(Rule):
    """Every ``while`` in an ``async def`` awaits on every live path."""

    code = "RL008"
    name = "async-loop-liveness"
    summary = (
        "every while loop in an async def must hit an await on every "
        "path that continues the loop (path-sensitive)"
    )
    protects = (
        "the event loop: a single non-awaiting loop path busy-spins and "
        "starves every other coroutine — the PR 9 scheduler deadlock"
    )

    def applies(self, ctx: FileContext) -> bool:
        return bool(ctx.config.async_scope) and ctx.config.matches(
            ctx.path, ctx.config.async_scope
        )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for stmt in _body_statements(func):
                if not isinstance(stmt, ast.While):
                    continue
                diag = self._check_loop(ctx, func, stmt)
                if diag is not None:
                    yield diag

    def _check_loop(
        self, ctx: FileContext, func: ast.AsyncFunctionDef, loop: ast.While
    ) -> Diagnostic | None:
        if _has_await(loop.test):
            return None  # the loop header itself yields every iteration
        spins = [
            p
            for p in _seq([_P()], loop.body)
            if p.exit in (None, "continue") and not p.awaited and not p.cold
        ]
        if not spins:
            return None
        return self.diag(
            ctx,
            loop,
            f"async def {func.name}: while loop has a path that repeats "
            "without awaiting — it can busy-spin and starve the event "
            "loop",
            hint=(
                "make every continuing path yield: await an Event/queue "
                "(e.g. `self._wake.clear(); await self._wake.wait()`) or "
                "`await asyncio.sleep(...)` before `continue`"
            ),
        )
