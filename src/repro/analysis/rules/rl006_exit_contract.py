"""RL006 exit-contract — CLI error paths print one line and exit 2.

PR 2 hardened the CLI against user input: a malformed ``--faults`` file,
an unknown ``--backend`` or a missing run log prints **one friendly
line** and exits with status **2** — never a traceback, never a
multi-line dump, never an undocumented exit code.  Scripts and CI wrap
the CLI and branch on those codes (0 = ok, 1 = findings/regression,
2 = usage error), so the contract is API.

In the configured CLI modules the rule flags:

* ``sys.exit(x)`` / ``raise SystemExit(x)`` with anything other than an
  integer literal ``0``, ``1`` or ``2`` — string arguments make Python
  print the string *and exit 1*, which both breaks the code contract
  and bypasses the one-line convention;
* ``return <int>`` inside command handlers (``main`` / ``_cmd_*``) with
  a literal outside {0, 1, 2};
* ``traceback.print_exc()`` / ``print_exception`` — tracebacks are for
  programmer errors; user errors get one line;
* ``except`` handlers that exit with status 2 but print **more than one
  line** on the way out (multiple ``print`` calls).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, dotted_name, register_rule

__all__ = ["ExitContractRule"]

_ALLOWED_CODES = {0, 1, 2}
_HANDLER_NAMES = ("main",)
_HANDLER_PREFIX = "_cmd_"


def _exit_code_of(call: ast.Call) -> ast.expr | None:
    """The argument of a ``sys.exit``/``SystemExit`` call, if it is one."""
    dotted = dotted_name(call.func)
    if dotted in ("sys.exit", "SystemExit", "exit"):
        return call.args[0] if call.args else ast.Constant(value=0)
    return None


@register_rule
class ExitContractRule(Rule):
    """CLI error paths: one printed line, exit status in {0, 1, 2}."""

    code = "RL006"
    name = "exit-contract"
    summary = (
        "CLI error paths print one friendly line and exit 2; exit codes "
        "are limited to {0, 1, 2}"
    )
    protects = "PR 2 hardened CLI contract (DESIGN.md, --faults errors)"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.cli_scope)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._check_exit_codes(ctx)
        yield from self._check_tracebacks(ctx)
        yield from self._check_handlers(ctx)

    # ------------------------------------------------------------------
    def _check_exit_codes(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                arg = _exit_code_of(node)
                if arg is None:
                    continue
                if self._is_propagated_status(arg):
                    continue  # SystemExit(main()) — status computed upstream
                if not (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, int)
                    and not isinstance(arg.value, bool)
                    and arg.value in _ALLOWED_CODES
                ):
                    yield self.diag(
                        ctx,
                        node,
                        "exit status must be a literal 0, 1 or 2 "
                        "(string arguments exit 1 and print outside the "
                        "one-line contract)",
                        hint="print('error: ...') one line, then exit 2 "
                        "for usage errors (PR 2 contract)",
                    )
            elif isinstance(node, ast.FunctionDef) and (
                node.name in _HANDLER_NAMES
                or node.name.startswith(_HANDLER_PREFIX)
            ):
                for ret in ast.walk(node):
                    if (
                        isinstance(ret, ast.Return)
                        and isinstance(ret.value, ast.Constant)
                        and isinstance(ret.value.value, int)
                        and not isinstance(ret.value.value, bool)
                        and ret.value.value not in _ALLOWED_CODES
                    ):
                        yield self.diag(
                            ctx,
                            ret,
                            f"command handler {node.name} returns exit "
                            f"status {ret.value.value}; only 0 (ok), "
                            "1 (findings) and 2 (usage error) are in the "
                            "contract",
                            hint="map the condition onto 0/1/2; scripts "
                            "branch on these codes",
                        )

    @staticmethod
    def _is_propagated_status(arg: ast.expr) -> bool:
        """``SystemExit(main())`` style — the code comes from a handler."""
        return isinstance(arg, (ast.Call, ast.Name, ast.Attribute))

    # ------------------------------------------------------------------
    def _check_tracebacks(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in (
                    "traceback.print_exc",
                    "traceback.print_exception",
                    "traceback.format_exc",
                ):
                    yield self.diag(
                        ctx,
                        node,
                        "tracebacks in CLI error paths break the one-line "
                        "contract (they are for programmer errors)",
                        hint="catch the specific exception and "
                        "print(f'error: {exc}') then exit 2",
                    )

    # ------------------------------------------------------------------
    def _check_handlers(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            exits_two = False
            prints = []
            for child in ast.walk(node):
                if isinstance(child, ast.Return) and (
                    isinstance(child.value, ast.Constant)
                    and child.value.value == 2
                ):
                    exits_two = True
                elif isinstance(child, ast.Call):
                    arg = _exit_code_of(child)
                    if (
                        arg is not None
                        and isinstance(arg, ast.Constant)
                        and arg.value == 2
                    ):
                        exits_two = True
                    dotted = dotted_name(child.func)
                    if dotted == "print":
                        prints.append(child)
            if exits_two and len(prints) > 1:
                yield self.diag(
                    ctx,
                    prints[1],
                    "error handler prints more than one line before "
                    "exiting 2 (the contract is one friendly line)",
                    hint="fold the context into a single print('error: "
                    "...') line",
                )
