"""RL001 kernel-boundary — no direct numpy work behind the backend's back.

PR 3's contract: every hot-path kernel (compression, CFS pack/unpack, ED
encode/decode, index conversion, SpMV/SpGEMM traversal) dispatches
through :func:`repro.kernels.current_backend`, and the numpy and python
backends are byte-identical.  A direct ``np.`` call in a kernel-boundary
module silently forks the two implementations: the numpy path gains code
the python oracle never executes, and the differential suite can only
catch the divergence if a fixture happens to cover it.

The rule flags, in every module configured under
``LintConfig.kernel_boundary``:

* ``from numpy import …`` — aliasing that makes the boundary invisible;
* any *call* ``np.attr(…)`` / ``numpy.attr(…)`` whose dotted attribute
  is not in the module's audited glue allowlist.

Bare attribute references (``np.int64``, ``np.float64``, ``np.ndarray``
in annotations and dtype arguments) are always legal — dtypes are part
of the backend contract, not array work.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, register_rule

__all__ = ["KernelBoundaryRule"]

_NUMPY_MODULES = {"numpy"}


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the numpy module (``np`` usually)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name in _NUMPY_MODULES:
                    aliases.add(item.asname or item.name)
    return aliases


def _dotted_numpy_call(call: ast.Call, aliases: set[str]) -> str | None:
    """``"add.at"`` for ``np.add.at(…)``; None for non-numpy calls."""
    parts: list[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in aliases and parts:
        return ".".join(reversed(parts))
    return None


@register_rule
class KernelBoundaryRule(Rule):
    """Kernel-boundary modules route array work through the backend."""

    code = "RL001"
    name = "kernel-boundary"
    summary = (
        "modules behind the KernelBackend dispatch may not call numpy "
        "directly (audited glue allowlist excepted)"
    )
    protects = (
        "PR 3 byte-identity: numpy and python backends share every hot "
        "path (DESIGN.md 'Kernel backends')"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.kernel_boundary)

    def _allowed(self, ctx: FileContext) -> frozenset[str]:
        for pattern, allowed in ctx.config.kernel_boundary.items():
            if ctx.config.matches(ctx.path, [pattern]):
                return allowed
        return frozenset()

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._check(ctx)

    def _check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        allowed = self._allowed(ctx)
        aliases = _numpy_aliases(ctx.tree)
        for node in ctx.walk():
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "numpy" or module.startswith("numpy."):
                    yield self.diag(
                        ctx,
                        node,
                        f"'from {module} import …' hides the kernel "
                        "boundary in a kernel-boundary module",
                        hint="import numpy as np (so RL001 can audit call "
                        "sites) or dispatch via repro.kernels."
                        "current_backend()",
                    )
            elif isinstance(node, ast.Call) and aliases:
                dotted = _dotted_numpy_call(node, aliases)
                if dotted is not None and dotted not in allowed:
                    yield self.diag(
                        ctx,
                        node,
                        f"direct numpy call np.{dotted}() in a "
                        "kernel-boundary module bypasses the KernelBackend "
                        "dispatch",
                        hint="route the array work through repro.kernels."
                        "current_backend() (both backends must stay "
                        f"byte-identical), or audit 'np.{dotted}' into the "
                        "RL001 allowlist in repro/analysis/config.py",
                    )
