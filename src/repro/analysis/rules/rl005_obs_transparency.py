"""RL005 obs-transparency — observability can never leak or linger.

PR 4's transparency contract: with observability off the simulator is
byte-identical to an un-instrumented build, and with it on, spans nest
coherently because every ``obs.span(…)`` is entered and exited through a
``with`` block.  Two statically checkable ways instrumentation rots:

* ``obs.span(…)`` called but **not used as a context manager** — the
  span record is opened (or worse, a live ``_LiveSpan`` is dropped on
  the floor), the stack never pops, and every later span nests under a
  phantom parent.  The expression must be the context of a ``with``
  item, directly or via an ``ExitStack.enter_context(…)`` wrapper.
* **module-level mutable obs state** outside ``obs/`` — a module-global
  ``Observability()`` / ``MetricsRegistry()`` outlives the machine run
  it was meant to observe, double-counts the next run and breaks the
  one-recorder-per-machine attach contract.  The shared inert
  ``NULL_OBS`` lives in ``obs/spans.py`` and is the only sanctioned
  module-level recorder.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext, Rule, register_rule

__all__ = ["ObsTransparencyRule"]

#: constructors that build mutable observability state
_OBS_STATE = {"Observability", "MetricsRegistry"}


@register_rule
class ObsTransparencyRule(Rule):
    """``obs.span`` as context manager only; no global obs state."""

    code = "RL005"
    name = "obs-transparency"
    summary = (
        "obs.span(...) must be a `with` context; no module-level mutable "
        "obs state outside obs/"
    )
    protects = (
        "PR 4 transparency: obs off == byte-identical, obs on == "
        "coherent span nesting and one recorder per machine"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.obs_scope)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._check_span_usage(ctx)
        if not ctx.matches(ctx.config.obs_exempt):
            yield from self._check_module_state(ctx)

    # ------------------------------------------------------------------
    # span usage
    # ------------------------------------------------------------------
    def _check_span_usage(self, ctx: FileContext) -> Iterator[Diagnostic]:
        sanctioned: set[int] = set()
        for node in ctx.walk():
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    sanctioned.add(id(expr))
                    # with obs.span(...) as s / contextlib.ExitStack forms
            elif isinstance(node, ast.Call) and self._is_enter_context(node):
                for arg in node.args:
                    sanctioned.add(id(arg))
        for node in ctx.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and self._is_obs_receiver(node.func.value)
                and id(node) not in sanctioned
            ):
                yield self.diag(
                    ctx,
                    node,
                    "obs.span(...) used outside a `with` block: the span "
                    "is never closed and later spans nest under a phantom "
                    "parent",
                    hint="write `with obs.span(name, ...):` (or "
                    "stack.enter_context(obs.span(...)))",
                )

    @staticmethod
    def _is_enter_context(call: ast.Call) -> bool:
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "enter_context"
        )

    @staticmethod
    def _is_obs_receiver(node: ast.expr) -> bool:
        """``obs.span`` / ``self.obs.span`` / ``machine.obs.span``."""
        if isinstance(node, ast.Name):
            return node.id == "obs" or node.id.endswith("_obs")
        if isinstance(node, ast.Attribute):
            return node.attr == "obs" or node.attr.endswith("_obs")
        return False

    # ------------------------------------------------------------------
    # module-level obs state
    # ------------------------------------------------------------------
    def _check_module_state(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for stmt in ctx.tree.body:
            targets: list[ast.expr]
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            name = self._constructor_name(value)
            if name in _OBS_STATE:
                target = targets[0] if targets else stmt
                yield self.diag(
                    ctx,
                    target,
                    f"module-level {name}() outside obs/ outlives the run "
                    "it observes and double-counts the next one",
                    hint="build the recorder per run and pass it to "
                    "Machine(obs=...); NULL_OBS is the only sanctioned "
                    "module-level instance",
                )

    @staticmethod
    def _constructor_name(value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None
