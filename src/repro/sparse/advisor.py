"""Storage-format advisor: which ref-[4] format fits this matrix?

The paper picks CRS/CCS and defers "other data compression methods" to
future work; with five formats implemented (CRS, CCS, JDS, BSR, DIA) the
obvious library feature is a recommendation.  The advisor scores each
format by its *storage efficiency* on the actual matrix — stored elements
(values plus index overhead, in array elements) per true nonzero — which
tracks both memory and the SpMV traffic each format implies:

* CRS/CCS: ``nnz`` indices + ``segments + 1`` offsets — the safe default;
* JDS: like CRS plus the row permutation — wins only via its vector-
  friendly access pattern, so it is scored as CRS plus ``n_rows`` and
  recommended over CRS only for skew (long jags);
* BSR: one index per block, but padding zeros are stored — wins when
  nonzeros cluster into dense tiles;
* DIA: no indices at all, one strip per diagonal — wins when nonzeros
  live on few diagonals.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bsr import BSRMatrix
from .coo import COOMatrix
from .dia import DIAMatrix
from .jds import JDSMatrix

__all__ = ["FormatScore", "score_formats", "suggest_format"]


@dataclass(frozen=True)
class FormatScore:
    """One format's storage cost on a specific matrix."""

    format: str
    stored_elements: int
    #: stored elements per true nonzero (lower is better; 1.0 is optimal)
    overhead: float


def score_formats(
    matrix: COOMatrix, *, block_shape: tuple[int, int] | None = None
) -> list[FormatScore]:
    """Score every implemented format on ``matrix`` (ascending overhead).

    ``block_shape`` overrides BSR's tile (default: the largest of 2/4/8
    that tiles the shape, falling back to 1×1).
    """
    n_rows, n_cols = matrix.shape
    nnz = matrix.nnz
    if nnz == 0:
        raise ValueError("cannot advise on an empty matrix")
    scores = []

    crs_stored = 2 * nnz + n_rows + 1
    scores.append(FormatScore("crs", crs_stored, crs_stored / nnz))
    ccs_stored = 2 * nnz + n_cols + 1
    scores.append(FormatScore("ccs", ccs_stored, ccs_stored / nnz))

    jds = JDSMatrix.from_coo(matrix)
    jds_stored = 2 * nnz + n_rows + jds.n_jags + 1
    scores.append(FormatScore("jds", jds_stored, jds_stored / nnz))

    if block_shape is None:
        candidates = [b for b in (8, 4, 2) if n_rows % b == 0 and n_cols % b == 0]
        block_shape = (candidates[0], candidates[0]) if candidates else (1, 1)
    bsr = BSRMatrix.from_coo(matrix, block_shape)
    bsr_stored = bsr.stored_elements + bsr.n_blocks + len(bsr.indptr)
    scores.append(FormatScore("bsr", bsr_stored, bsr_stored / nnz))

    dia = DIAMatrix.from_coo(matrix)
    dia_stored = dia.stored_elements + dia.n_diagonals
    scores.append(FormatScore("dia", dia_stored, dia_stored / nnz))

    return sorted(scores, key=lambda s: s.overhead)


def suggest_format(
    matrix: COOMatrix, *, block_shape: tuple[int, int] | None = None
) -> str:
    """The lowest-overhead format name for ``matrix``."""
    return score_formats(matrix, block_shape=block_shape)[0].format
