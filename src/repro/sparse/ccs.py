"""Compressed Column Storage (CCS) — the paper's column-wise compression.

CCS is the column-major dual of CRS (see :mod:`repro.sparse.crs`): ``RO``
holds 1-based running offsets per *column*, ``CO`` holds the (1-based) *row*
index of each nonzero stored column by column, and ``VL`` the values.

The paper reuses the names ``RO``/``CO``/``VL`` for both methods (Section
3.1: "The CRS (CCS) method uses two one-dimensional integer arrays, RO and
CO, and one one-dimensional floating-point array, VL"), so we do too —
for CCS, ``RO`` indexes columns and ``CO`` stores row indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coo import COOMatrix

__all__ = ["CCSMatrix"]


@dataclass(frozen=True)
class CCSMatrix:
    """A sparse matrix in Compressed Column Storage.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        0-based column offsets, length ``n_cols + 1``, ``indptr[0] == 0``.
    indices:
        0-based row indices, length ``nnz``, ascending within each column.
    values:
        The nonzero values, parallel to ``indices``.
    """

    shape: tuple[int, int]
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)

    def __init__(self, shape, indptr, indices, values, *, check: bool = True):
        shape = (int(shape[0]), int(shape[1]))
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if check:
            self._validate(shape, indptr, indices, values)
        for arr in (indptr, indices, values):
            arr.setflags(write=False)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @staticmethod
    def _validate(shape, indptr, indices, values):
        n_rows, n_cols = shape
        if indptr.ndim != 1 or len(indptr) != n_cols + 1:
            raise ValueError(
                f"indptr must have length n_cols+1={n_cols + 1}, got {len(indptr)}"
            )
        if indptr[0] != 0:
            raise ValueError(f"indptr[0] must be 0, got {indptr[0]}")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(indptr[-1])
        if len(indices) != nnz or len(values) != nnz:
            raise ValueError(
                f"indices/values length must equal indptr[-1]={nnz}, "
                f"got {len(indices)}/{len(values)}"
            )
        if nnz:
            if indices.min() < 0 or indices.max() >= n_rows:
                raise ValueError("row index out of range")

    # ------------------------------------------------------------------
    # the paper's 1-based views
    # ------------------------------------------------------------------
    @property
    def RO(self) -> np.ndarray:
        """1-based column offsets (paper's ``RO`` vector for CCS)."""
        return self.indptr + 1

    @property
    def CO(self) -> np.ndarray:
        """Row indices (paper's ``CO`` vector for CCS).

        As in CRS, the paper's ``CO`` is 0-based (only ``RO`` counts from
        1), so this is identical to :attr:`indices`.
        """
        return self.indices

    @property
    def VL(self) -> np.ndarray:
        """The nonzero values (paper's ``VL`` vector)."""
        return self.values

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CCSMatrix":
        """Compress a COO matrix into CCS (column-major resorting included).

        The column-major resort and offset pass run on the active kernel
        backend (stable, so row order within a column is preserved).
        """
        from ..kernels import current_backend

        indptr, indices, values = current_backend().ccs_from_coo(
            coo.shape, coo.rows, coo.cols, coo.values
        )
        return cls(coo.shape, indptr, indices, values, check=False)

    @classmethod
    def from_dense(cls, dense) -> "CCSMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def from_paper_arrays(cls, shape, RO, CO, VL) -> "CCSMatrix":
        """Build from the paper's ``RO`` (1-based) / ``CO`` (0-based) / ``VL``."""
        RO = np.asarray(RO, dtype=np.int64)
        CO = np.asarray(CO, dtype=np.int64)
        return cls(shape, RO - 1, CO, np.asarray(VL, dtype=np.float64))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def sparse_ratio(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """``(row_indices, values)`` of column ``j`` (0-based)."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def col_counts(self) -> np.ndarray:
        """nnz per column (the ED scheme's ``R_i`` vector for CCS)."""
        return np.diff(self.indptr)

    def to_coo(self) -> COOMatrix:
        cols = np.repeat(np.arange(self.shape[1], dtype=np.int64), self.col_counts())
        return COOMatrix(self.shape, self.indices, cols, self.values)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------
    # equality / repr
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CCSMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"CCSMatrix(shape={self.shape}, nnz={self.nnz})"
