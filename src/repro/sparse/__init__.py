"""Sparse array substrate: storage formats, ops, generators, IO.

This package implements from scratch everything the paper's compression
phase relies on: COO staging, CRS/CCS compressed storage with the paper's
1-based ``RO/CO/VL`` views, format conversions, vectorised sparse kernels,
synthetic workload generators and a stand-in for the Harwell-Boeing
collection.
"""

from .advisor import FormatScore, score_formats, suggest_format
from .bsr import BSRMatrix
from .ccs import CCSMatrix
from .collection import CollectionEntry, SyntheticCollection, ratio_statistics
from .convert import AnySparse, ccs_to_crs, convert, crs_to_ccs
from .coo import COOMatrix
from .dia import DIAMatrix
from .crs import CRSMatrix
from .generators import (
    banded_sparse,
    bernoulli_sparse,
    block_diagonal_sparse,
    paper_test_array,
    random_sparse,
    row_skewed_sparse,
)
from .jds import JDSMatrix
from .io import dumps_matrix, loads_matrix, read_matrix, write_matrix
from .interop import from_scipy, to_scipy
from .ops import (
    col_norms,
    extract_diagonal,
    frobenius_norm,
    row_norms,
    sp_add,
    sp_elementwise_multiply,
    sp_scale,
    sp_transpose,
    spgemm,
    spmv,
    spmv_transpose,
)

__all__ = [
    "AnySparse",
    "BSRMatrix",
    "CCSMatrix",
    "COOMatrix",
    "CRSMatrix",
    "CollectionEntry",
    "DIAMatrix",
    "FormatScore",
    "JDSMatrix",
    "SyntheticCollection",
    "banded_sparse",
    "bernoulli_sparse",
    "block_diagonal_sparse",
    "ccs_to_crs",
    "col_norms",
    "convert",
    "crs_to_ccs",
    "dumps_matrix",
    "extract_diagonal",
    "from_scipy",
    "frobenius_norm",
    "loads_matrix",
    "paper_test_array",
    "random_sparse",
    "ratio_statistics",
    "read_matrix",
    "row_norms",
    "row_skewed_sparse",
    "sp_add",
    "sp_elementwise_multiply",
    "sp_scale",
    "score_formats",
    "sp_transpose",
    "spgemm",
    "spmv",
    "spmv_transpose",
    "suggest_format",
    "to_scipy",
    "write_matrix",
]
