"""Synthetic sparse array generators.

The paper's test samples are two-dimensional sparse arrays with a fixed
*sparse ratio* ``s = nnz / n^2`` (Section 5 sets ``s = 0.1`` everywhere).
:func:`random_sparse` reproduces that: it draws exactly ``round(s * n_rows *
n_cols)`` distinct coordinates uniformly at random, so the generated array's
sparse ratio equals the requested one to within rounding — matching the
paper's "the sparse ratio is set to 0.1 for all ... test samples".

Additional structured generators (banded, block-diagonal, row-skewed) back
the ablation benches: schemes behave differently when nonzeros cluster,
because per-processor sparse ratios ``s_i`` then diverge from the global
``s`` (the paper's ``s'`` = max local ratio).
"""

from __future__ import annotations

import numpy as np

from .coo import COOMatrix

__all__ = [
    "random_sparse",
    "bernoulli_sparse",
    "banded_sparse",
    "block_diagonal_sparse",
    "row_skewed_sparse",
    "paper_test_array",
]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def _values(rng: np.random.Generator, k: int) -> np.ndarray:
    """Nonzero values: uniform in [1, 2) so no accidental zeros occur."""
    return rng.uniform(1.0, 2.0, size=k)


def random_sparse(
    shape: tuple[int, int], sparse_ratio: float, *, seed=None
) -> COOMatrix:
    """A sparse array with *exactly* ``round(s * total)`` nonzeros.

    Coordinates are sampled without replacement uniformly over the whole
    array, matching the paper's experimental setup (fixed global sparse
    ratio, unstructured fill).
    """
    if not 0.0 <= sparse_ratio <= 1.0:
        raise ValueError(f"sparse_ratio must be in [0, 1], got {sparse_ratio}")
    n_rows, n_cols = int(shape[0]), int(shape[1])
    total = n_rows * n_cols
    k = int(round(sparse_ratio * total))
    if k == 0:
        return COOMatrix.empty((n_rows, n_cols))
    rng = _rng(seed)
    flat = rng.choice(total, size=k, replace=False)
    rows, cols = np.divmod(flat, n_cols)
    return COOMatrix((n_rows, n_cols), rows, cols, _values(rng, k))


def bernoulli_sparse(
    shape: tuple[int, int], sparse_ratio: float, *, seed=None
) -> COOMatrix:
    """A sparse array where each element is nonzero independently w.p. ``s``.

    The *expected* sparse ratio is ``s``; the realised one fluctuates.  Used
    by the exact-vs-Bernoulli ablation (DESIGN.md §5).
    """
    if not 0.0 <= sparse_ratio <= 1.0:
        raise ValueError(f"sparse_ratio must be in [0, 1], got {sparse_ratio}")
    n_rows, n_cols = int(shape[0]), int(shape[1])
    rng = _rng(seed)
    mask = rng.random((n_rows, n_cols)) < sparse_ratio
    rows, cols = np.nonzero(mask)
    return COOMatrix((n_rows, n_cols), rows, cols, _values(rng, len(rows)))


def banded_sparse(
    shape: tuple[int, int], bandwidth: int, *, fill: float = 1.0, seed=None
) -> COOMatrix:
    """Nonzeros confined to ``|i - j| <= bandwidth``, filled w.p. ``fill``.

    Typical of finite-element / finite-difference matrices.  Row and column
    partitions keep local ratios even; a 2-D mesh partition leaves off-
    diagonal processors nearly empty — the skew the ``s'`` notation exists
    for.
    """
    if bandwidth < 0:
        raise ValueError(f"bandwidth must be >= 0, got {bandwidth}")
    n_rows, n_cols = int(shape[0]), int(shape[1])
    rng = _rng(seed)
    rows_list, cols_list = [], []
    for i in range(n_rows):
        lo = max(0, i - bandwidth)
        hi = min(n_cols, i + bandwidth + 1)
        if lo >= hi:
            continue
        cols = np.arange(lo, hi, dtype=np.int64)
        if fill < 1.0:
            cols = cols[rng.random(len(cols)) < fill]
        rows_list.append(np.full(len(cols), i, dtype=np.int64))
        cols_list.append(cols)
    if not rows_list:
        return COOMatrix.empty((n_rows, n_cols))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return COOMatrix((n_rows, n_cols), rows, cols, _values(rng, len(rows)))


def block_diagonal_sparse(
    n_blocks: int, block_size: int, *, block_ratio: float = 0.5, seed=None
) -> COOMatrix:
    """``n_blocks`` dense-ish blocks along the diagonal (domain decomposition)."""
    if n_blocks <= 0 or block_size <= 0:
        raise ValueError("n_blocks and block_size must be positive")
    rng = _rng(seed)
    n = n_blocks * block_size
    rows_list, cols_list = [], []
    for b in range(n_blocks):
        block = random_sparse((block_size, block_size), block_ratio, seed=rng)
        rows_list.append(block.rows + b * block_size)
        cols_list.append(block.cols + b * block_size)
    rows = np.concatenate(rows_list) if rows_list else np.empty(0, dtype=np.int64)
    cols = np.concatenate(cols_list) if cols_list else np.empty(0, dtype=np.int64)
    return COOMatrix((n, n), rows, cols, _values(rng, len(rows)))


def row_skewed_sparse(
    shape: tuple[int, int], sparse_ratio: float, *, skew: float = 2.0, seed=None
) -> COOMatrix:
    """Nonzeros concentrated toward low-index rows (Zipf-like row weights).

    ``skew = 0`` degenerates to uniform; larger values concentrate harder.
    This makes the *max* local sparse ratio ``s'`` exceed the global ``s``
    under row partitioning, separating formulas that depend on ``s`` from
    those that depend on ``s'`` — and is the workload where the bin-packing
    partitioner (Ziantz et al.) visibly beats plain blocking.
    """
    if not 0.0 <= sparse_ratio <= 1.0:
        raise ValueError(f"sparse_ratio must be in [0, 1], got {sparse_ratio}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    n_rows, n_cols = int(shape[0]), int(shape[1])
    k = int(round(sparse_ratio * n_rows * n_cols))
    if k == 0:
        return COOMatrix.empty((n_rows, n_cols))
    rng = _rng(seed)
    weights = 1.0 / (np.arange(1, n_rows + 1, dtype=np.float64) ** skew)
    weights /= weights.sum()
    # cap per-row draws at n_cols by sampling rows then columns w/o replacement
    row_draws = rng.choice(n_rows, size=4 * k, replace=True, p=weights)
    rows_out, cols_out = [], []
    remaining = k
    counts = np.bincount(row_draws, minlength=n_rows)
    for i in np.argsort(-counts):
        if remaining <= 0:
            break
        take = min(int(counts[i]), n_cols, remaining)
        if take == 0:
            continue
        cols = rng.choice(n_cols, size=take, replace=False)
        rows_out.append(np.full(take, i, dtype=np.int64))
        cols_out.append(cols.astype(np.int64))
        remaining -= take
    rows = np.concatenate(rows_out)
    cols = np.concatenate(cols_out)
    return COOMatrix((n_rows, n_cols), rows, cols, _values(rng, len(rows)))


def paper_test_array(n: int, *, seed=0) -> COOMatrix:
    """An ``n x n`` test sample exactly as in the paper's Section 5.

    Square, unstructured, sparse ratio fixed at 0.1.
    """
    return random_sparse((n, n), 0.1, seed=seed)
