"""Optional scipy.sparse interoperability.

The repo's formats are self-contained (scipy appears only in the test
suite as an oracle), but downstream users live in the scipy ecosystem, so
adapters are provided: they import scipy lazily and raise a clear error
when it is absent.

Layout compatibility is exact — our CRS/CCS `indptr`/`indices`/`values`
triples are bit-identical to ``csr_matrix``/``csc_matrix`` attributes — so
conversion is a wrap, not a translation.
"""

from __future__ import annotations

from .ccs import CCSMatrix
from .coo import COOMatrix
from .crs import CRSMatrix
from .convert import AnySparse

__all__ = ["to_scipy", "from_scipy"]


def _scipy_sparse():
    try:
        import scipy.sparse as sp
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise ImportError(
            "scipy is required for to_scipy/from_scipy; install the 'test' "
            "extra or scipy itself"
        ) from exc
    return sp


def to_scipy(matrix: AnySparse):
    """Convert to the corresponding scipy.sparse class.

    COO → ``coo_matrix``, CRS → ``csr_matrix``, CCS → ``csc_matrix``.
    """
    sp = _scipy_sparse()
    if isinstance(matrix, COOMatrix):
        return sp.coo_matrix(
            (matrix.values, (matrix.rows, matrix.cols)), shape=matrix.shape
        )
    if isinstance(matrix, CRSMatrix):
        return sp.csr_matrix(
            (matrix.values, matrix.indices, matrix.indptr), shape=matrix.shape
        )
    if isinstance(matrix, CCSMatrix):
        return sp.csc_matrix(
            (matrix.values, matrix.indices, matrix.indptr), shape=matrix.shape
        )
    raise TypeError(f"unsupported sparse type {type(matrix).__name__}")


def from_scipy(matrix) -> AnySparse:
    """Convert a scipy sparse matrix to the matching repro class.

    ``csr_matrix`` → CRS, ``csc_matrix`` → CCS, anything else → COO.
    Duplicate entries are summed (our canonical-form rule).
    """
    sp = _scipy_sparse()
    if sp.issparse(matrix):
        if matrix.format == "csr":
            m = matrix.sorted_indices()
            m.sum_duplicates()
            return CRSMatrix(m.shape, m.indptr, m.indices, m.data)
        if matrix.format == "csc":
            m = matrix.sorted_indices()
            m.sum_duplicates()
            return CCSMatrix(m.shape, m.indptr, m.indices, m.data)
        coo = matrix.tocoo()
        return COOMatrix(coo.shape, coo.row, coo.col, coo.data)
    raise TypeError(f"expected a scipy sparse matrix, got {type(matrix).__name__}")
