"""Compressed Diagonal Storage (DIA/CDS) — the banded format of ref [4].

Finite-difference stencils produce matrices whose nonzeros live on a few
diagonals.  DIA stores one dense strip per populated diagonal:

* ``offsets`` — the stored diagonals, ``k = col − row`` (0 = main,
  positive above), ascending;
* ``data``    — ``(n_diagonals, n_rows)`` strips; ``data[d, i]`` holds
  ``A[i, i + offsets[d]]`` (positions falling outside the matrix are
  padding zeros).

Ideal for :func:`~repro.sparse.generators.banded_sparse` workloads; the
``density`` property reports how full the stored strips are — the
format-selection criterion mirroring BSR's ``fill_ratio``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coo import COOMatrix

__all__ = ["DIAMatrix"]


@dataclass(frozen=True)
class DIAMatrix:
    """A sparse matrix in (compressed) diagonal storage."""

    shape: tuple[int, int]
    offsets: np.ndarray = field(repr=False)
    data: np.ndarray = field(repr=False)

    def __init__(self, shape, offsets, data, *, check: bool = True):
        shape = (int(shape[0]), int(shape[1]))
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        data = np.ascontiguousarray(data, dtype=np.float64)
        if check:
            self._validate(shape, offsets, data)
        offsets.setflags(write=False)
        data.setflags(write=False)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "data", data)

    @staticmethod
    def _validate(shape, offsets, data):
        n_rows, n_cols = shape
        if offsets.ndim != 1:
            raise ValueError("offsets must be one-dimensional")
        if len(np.unique(offsets)) != len(offsets):
            raise ValueError("offsets must be unique")
        if np.any(np.diff(offsets) <= 0):
            raise ValueError("offsets must be strictly ascending")
        if len(offsets) and (
            offsets.min() < -(n_rows - 1) or offsets.max() > n_cols - 1
        ):
            raise ValueError("offset outside the matrix band range")
        if data.shape != (len(offsets), n_rows):
            raise ValueError(
                f"data must have shape ({len(offsets)}, {n_rows}), got {data.shape}"
            )
        # padding positions (outside the matrix) must be zero
        for d, k in enumerate(offsets):
            rows = np.arange(n_rows)
            outside = (rows + k < 0) | (rows + k >= n_cols)
            if np.any(data[d, outside] != 0.0):
                raise ValueError(
                    f"diagonal {k}: nonzero stored outside the matrix"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "DIAMatrix":
        n_rows, n_cols = coo.shape
        diag_of = coo.cols - coo.rows
        offsets = np.unique(diag_of)
        data = np.zeros((len(offsets), n_rows), dtype=np.float64)
        d_index = np.searchsorted(offsets, diag_of)
        data[d_index, coo.rows] = coo.values
        return cls(coo.shape, offsets, data, check=False)

    @classmethod
    def from_dense(cls, dense) -> "DIAMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    @property
    def n_diagonals(self) -> int:
        return len(self.offsets)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def stored_elements(self) -> int:
        return int(self.data.size)

    @property
    def density(self) -> float:
        """nnz / stored elements — how full the diagonal strips are."""
        return self.nnz / self.stored_elements if self.stored_elements else 1.0

    @property
    def bandwidth(self) -> int:
        """max |offset| of a stored diagonal (0 for diagonal matrices)."""
        return int(np.abs(self.offsets).max()) if len(self.offsets) else 0

    def diagonal(self, k: int) -> np.ndarray:
        """The full strip of diagonal ``k`` (zeros where unstored)."""
        idx = np.searchsorted(self.offsets, k)
        if idx < len(self.offsets) and self.offsets[idx] == k:
            return self.data[idx].copy()
        return np.zeros(self.shape[0], dtype=np.float64)

    def to_coo(self) -> COOMatrix:
        d, rows = np.nonzero(self.data)
        cols = rows + self.offsets[d]
        return COOMatrix(self.shape, rows, cols, self.data[d, rows])

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` as one shifted-strip product per diagonal."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x must have shape ({self.shape[1]},), got {x.shape}")
        n_rows = self.shape[0]
        y = np.zeros(n_rows, dtype=np.float64)
        rows = np.arange(n_rows)
        for d, k in enumerate(self.offsets):
            valid = (rows + k >= 0) & (rows + k < self.shape[1])
            y[valid] += self.data[d, valid] * x[rows[valid] + k]
        return y

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, DIAMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.data, other.data)
        )

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return (
            f"DIAMatrix(shape={self.shape}, diagonals={self.n_diagonals}, "
            f"bandwidth={self.bandwidth}, density={self.density:.2f})"
        )
