"""Block Sparse Row (BSR) storage — the blocked format of Barrett et al. [4].

FEM meshes and multi-component PDEs produce sparse matrices whose nonzeros
cluster in small dense ``br × bc`` blocks.  BSR stores one index per
*block* instead of one per element — CRS on the block grid with dense
little tiles as values:

* ``indptr``   — block-row offsets, length ``n_block_rows + 1``;
* ``indices``  — block-column index of each stored block;
* ``blocks``   — ``(n_blocks, br, bc)`` array of the dense tiles.

A stored block may contain explicit zeros (that is the format's trade:
index overhead shrinks by ``br·bc``, padding grows).  ``fill_ratio``
reports the fraction of stored elements that are true nonzeros, the
quantity that decides whether BSR pays off for a given matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coo import COOMatrix

__all__ = ["BSRMatrix"]


@dataclass(frozen=True)
class BSRMatrix:
    """A sparse matrix in Block Sparse Row storage."""

    shape: tuple[int, int]
    block_shape: tuple[int, int]
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    blocks: np.ndarray = field(repr=False)

    def __init__(self, shape, block_shape, indptr, indices, blocks, *, check=True):
        shape = (int(shape[0]), int(shape[1]))
        block_shape = (int(block_shape[0]), int(block_shape[1]))
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        blocks = np.ascontiguousarray(blocks, dtype=np.float64)
        if check:
            self._validate(shape, block_shape, indptr, indices, blocks)
        for arr in (indptr, indices, blocks):
            arr.setflags(write=False)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "block_shape", block_shape)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "blocks", blocks)

    @staticmethod
    def _validate(shape, block_shape, indptr, indices, blocks):
        n_rows, n_cols = shape
        br, bc = block_shape
        if br <= 0 or bc <= 0:
            raise ValueError(f"block_shape must be positive, got {block_shape}")
        if n_rows % br or n_cols % bc:
            raise ValueError(
                f"block_shape {block_shape} must tile the matrix shape {shape}"
            )
        n_block_rows = n_rows // br
        if len(indptr) != n_block_rows + 1 or indptr[0] != 0:
            raise ValueError("indptr must have length n_block_rows+1 and start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n_blocks = int(indptr[-1])
        if len(indices) != n_blocks:
            raise ValueError(
                f"indices must have length indptr[-1]={n_blocks}, got {len(indices)}"
            )
        if blocks.shape != (n_blocks, br, bc):
            raise ValueError(
                f"blocks must have shape ({n_blocks}, {br}, {bc}), got {blocks.shape}"
            )
        if n_blocks and (indices.min() < 0 or indices.max() >= n_cols // bc):
            raise ValueError("block-column index out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, block_shape: tuple[int, int]) -> "BSRMatrix":
        br, bc = (int(block_shape[0]), int(block_shape[1]))
        n_rows, n_cols = coo.shape
        if br <= 0 or bc <= 0 or n_rows % br or n_cols % bc:
            raise ValueError(
                f"block_shape {block_shape} must tile the matrix shape {coo.shape}"
            )
        n_block_cols = n_cols // bc
        brow = coo.rows // br
        bcol = coo.cols // bc
        keys = brow * n_block_cols + bcol
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        unique_keys, first_idx = np.unique(keys_sorted, return_index=True)
        block_of_entry = np.searchsorted(unique_keys, keys)
        n_blocks = len(unique_keys)
        blocks = np.zeros((n_blocks, br, bc), dtype=np.float64)
        blocks[
            block_of_entry, coo.rows % br, coo.cols % bc
        ] = coo.values
        indices = (unique_keys % n_block_cols).astype(np.int64)
        block_rows = (unique_keys // n_block_cols).astype(np.int64)
        indptr = np.zeros(n_rows // br + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(block_rows, minlength=n_rows // br), out=indptr[1:]
        )
        return cls(coo.shape, (br, bc), indptr, indices, blocks, check=False)

    @classmethod
    def from_dense(cls, dense, block_shape) -> "BSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), block_shape)

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return int(self.indptr[-1])

    @property
    def nnz(self) -> int:
        """True nonzeros (stored elements that are not padding zeros)."""
        return int(np.count_nonzero(self.blocks))

    @property
    def stored_elements(self) -> int:
        """All stored elements including block padding."""
        return int(self.blocks.size)

    @property
    def fill_ratio(self) -> float:
        """nnz / stored elements — 1.0 means no padding at all."""
        return self.nnz / self.stored_elements if self.stored_elements else 1.0

    def block_row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(block_column_indices, tiles)`` of block-row ``i``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.blocks[lo:hi]

    def to_coo(self) -> COOMatrix:
        br, bc = self.block_shape
        if self.n_blocks == 0:
            return COOMatrix.empty(self.shape)
        counts = np.diff(self.indptr)
        block_rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        b, r, c = np.nonzero(self.blocks)
        rows = block_rows[b] * br + r
        cols = self.indices[b] * bc + c
        return COOMatrix(self.shape, rows, cols, self.blocks[b, r, c])

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` block row by block row (dense tile GEMVs)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x must have shape ({self.shape[1]},), got {x.shape}")
        br, bc = self.block_shape
        y = np.zeros(self.shape[0], dtype=np.float64)
        if self.n_blocks == 0:
            return y
        counts = np.diff(self.indptr)
        block_rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        x_tiles = x.reshape(-1, bc)[self.indices]          # (n_blocks, bc)
        partial = np.einsum("nij,nj->ni", self.blocks, x_tiles)  # (n_blocks, br)
        np.add.at(y.reshape(-1, br), block_rows, partial)
        return y

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, BSRMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.block_shape == other.block_shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.blocks, other.blocks)
        )

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return (
            f"BSRMatrix(shape={self.shape}, block_shape={self.block_shape}, "
            f"blocks={self.n_blocks}, fill={self.fill_ratio:.2f})"
        )
