"""A synthetic stand-in for the Harwell-Boeing sparse matrix collection.

The paper justifies Remark 2 with: "According to the Harwell-Boeing Sparse
Matrix Collection [8, 9], ... over 80% sparse array applications in which
the sparse ratio of a sparse array is less than 0.1."

The real collection is not redistributable here, so this module generates a
*synthetic collection* whose sparse-ratio distribution matches the published
statistic: a log-uniform ratio distribution clipped so that (by
construction) roughly 80–90 % of matrices land below s = 0.1, drawn across
the structural families the collection actually contains (unstructured,
banded FEM-like, block-diagonal, skewed).  The substitution is documented in
DESIGN.md §2; only the *ratio statistics* feed the paper's argument, never
individual matrix values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from .coo import COOMatrix
from . import generators as gen

__all__ = ["CollectionEntry", "SyntheticCollection", "ratio_statistics"]


@dataclass(frozen=True)
class CollectionEntry:
    """One matrix of the synthetic collection plus HB-style metadata."""

    name: str
    family: str
    matrix: COOMatrix

    @property
    def sparse_ratio(self) -> float:
        return self.matrix.sparse_ratio

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz


class SyntheticCollection:
    """Generate and iterate a deterministic synthetic matrix collection.

    Parameters
    ----------
    n_matrices:
        Number of entries to generate.
    size_range:
        ``(min_n, max_n)`` bounds for the square matrix dimension.
    below_01_fraction:
        Target fraction of matrices with sparse ratio < 0.1 (the paper's
        ">80%" figure; default 0.85).
    seed:
        Deterministic seed for reproducibility.
    """

    def __init__(
        self,
        n_matrices: int = 50,
        *,
        size_range: tuple[int, int] = (20, 120),
        below_01_fraction: float = 0.85,
        seed: int = 20020101,
    ) -> None:
        if n_matrices <= 0:
            raise ValueError("n_matrices must be positive")
        if not 0.0 <= below_01_fraction <= 1.0:
            raise ValueError("below_01_fraction must be in [0, 1]")
        self.n_matrices = n_matrices
        self.size_range = size_range
        self.below_01_fraction = below_01_fraction
        self.seed = seed
        self._entries: list[CollectionEntry] | None = None

    # ------------------------------------------------------------------
    def _draw_ratio(self, rng: np.random.Generator) -> float:
        """Log-uniform over [1e-3, 0.1) w.p. ``below_01_fraction``, else
        uniform over [0.1, 0.4]."""
        if rng.random() < self.below_01_fraction:
            return float(10 ** rng.uniform(-3, -1))
        return float(rng.uniform(0.1, 0.4))

    def _make_matrix(
        self, rng: np.random.Generator, family: str, n: int, ratio: float
    ) -> COOMatrix:
        if family == "unstructured":
            return gen.random_sparse((n, n), ratio, seed=rng)
        if family == "banded":
            # choose bandwidth so the in-band fill approximates the ratio
            bw = max(1, int(ratio * n / 2))
            return gen.banded_sparse((n, n), bw, fill=min(1.0, ratio * n / (2 * bw + 1)), seed=rng)
        if family == "block_diagonal":
            blocks = max(2, n // 16)
            bs = max(2, n // blocks)
            return gen.block_diagonal_sparse(blocks, bs, block_ratio=min(1.0, ratio * blocks), seed=rng)
        if family == "skewed":
            return gen.row_skewed_sparse((n, n), ratio, skew=1.5, seed=rng)
        raise ValueError(f"unknown family {family!r}")

    def entries(self) -> Sequence[CollectionEntry]:
        """The full (memoised) collection."""
        if self._entries is None:
            rng = np.random.default_rng(self.seed)
            families = ["unstructured", "banded", "block_diagonal", "skewed"]
            out: list[CollectionEntry] = []
            for k in range(self.n_matrices):
                family = families[k % len(families)]
                n = int(rng.integers(self.size_range[0], self.size_range[1] + 1))
                ratio = self._draw_ratio(rng)
                m = self._make_matrix(rng, family, n, ratio)
                out.append(CollectionEntry(f"synth{k:04d}_{family}", family, m))
            self._entries = out
        return self._entries

    def __iter__(self) -> Iterator[CollectionEntry]:
        return iter(self.entries())

    def __len__(self) -> int:
        return self.n_matrices

    def filter(self, predicate: Callable[[CollectionEntry], bool]) -> list[CollectionEntry]:
        return [e for e in self.entries() if predicate(e)]


def ratio_statistics(entries: Sequence[CollectionEntry]) -> dict:
    """Summary statistics of the sparse ratios across a collection.

    Returns the fraction below 0.1 (Remark 2's premise), plus quartiles.
    """
    ratios = np.array([e.sparse_ratio for e in entries], dtype=np.float64)
    if len(ratios) == 0:
        raise ValueError("empty collection")
    return {
        "count": int(len(ratios)),
        "fraction_below_0.1": float(np.mean(ratios < 0.1)),
        "min": float(ratios.min()),
        "q25": float(np.quantile(ratios, 0.25)),
        "median": float(np.median(ratios)),
        "q75": float(np.quantile(ratios, 0.75)),
        "max": float(ratios.max()),
    }
