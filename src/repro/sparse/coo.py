"""Coordinate-format sparse matrix (the exchange/staging format).

The paper's schemes all start from a two-dimensional *global sparse array*
held on the host.  ``COOMatrix`` is our canonical in-memory description of
such an array before partitioning/compression: three parallel vectors
``(rows, cols, values)`` plus a ``shape``.

Conventions
-----------
* Indices are **0-based** internally (numpy-friendly).  The paper's figures
  use 1-based indices; the compressed classes (:class:`~repro.sparse.crs.
  CRSMatrix`, :class:`~repro.sparse.ccs.CCSMatrix`) expose 1-based ``RO/CO/
  VL`` views for figure-exact comparisons.
* A *canonical* COO matrix is sorted row-major (row, then col) and contains
  no duplicate coordinates and no explicitly stored zeros.  All constructors
  canonicalise unless told otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["COOMatrix"]


def _as_index_array(x, name: str) -> np.ndarray:
    arr = np.asarray(x, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class COOMatrix:
    """An immutable coordinate-format sparse matrix.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)`` of the (conceptually dense) array.
    rows, cols:
        0-based coordinates of the nonzero elements, parallel arrays.
    values:
        The nonzero values, parallel to ``rows``/``cols``.
    """

    shape: tuple[int, int]
    rows: np.ndarray = field(repr=False)
    cols: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)

    def __init__(self, shape, rows, cols, values, *, canonical: bool = False):
        n_rows, n_cols = (int(shape[0]), int(shape[1]))
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"shape must be non-negative, got {(n_rows, n_cols)}")
        rows = _as_index_array(rows, "rows")
        cols = _as_index_array(cols, "cols")
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be one-dimensional, got shape {values.shape}")
        if not (len(rows) == len(cols) == len(values)):
            raise ValueError(
                "rows, cols and values must have equal length, got "
                f"{len(rows)}, {len(cols)}, {len(values)}"
            )
        if len(rows):
            if rows.min(initial=0) < 0 or (n_rows and rows.max(initial=0) >= n_rows):
                raise ValueError("row index out of range")
            if cols.min(initial=0) < 0 or (n_cols and cols.max(initial=0) >= n_cols):
                raise ValueError("column index out of range")
            if n_rows == 0 or n_cols == 0:
                raise ValueError("nonzeros given for an empty shape")
        if not canonical:
            rows, cols, values = self._canonicalise(rows, cols, values)
        for arr in (rows, cols, values):
            arr.setflags(write=False)
        object.__setattr__(self, "shape", (n_rows, n_cols))
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _canonicalise(rows, cols, values):
        """Sort row-major, sum duplicates, drop explicit zeros."""
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if len(rows):
            # collapse duplicate coordinates by summation
            new_group = np.empty(len(rows), dtype=bool)
            new_group[0] = True
            new_group[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group_ids = np.cumsum(new_group) - 1
            n_groups = group_ids[-1] + 1
            summed = np.zeros(n_groups, dtype=np.float64)
            np.add.at(summed, group_ids, values)
            keep_first = np.flatnonzero(new_group)
            rows, cols, values = rows[keep_first], cols[keep_first], summed
            # drop explicit zeros
            nz = values != 0.0
            rows, cols, values = rows[nz], cols[nz], values[nz]
        return rows.copy(), cols.copy(), values.copy()

    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build a COO matrix from a dense 2-D array.

        The nonzero scan (one test per element, the paper's compression
        inner loop) runs on the active kernel backend.
        """
        from ..kernels import current_backend

        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={dense.ndim}")
        rows, cols, values = current_backend().coo_from_dense(dense)
        return cls(dense.shape, rows, cols, values, canonical=True)

    @classmethod
    def empty(cls, shape) -> "COOMatrix":
        """A sparse matrix of the given shape with no nonzero elements."""
        z = np.empty(0, dtype=np.int64)
        return cls(shape, z, z, np.empty(0, dtype=np.float64), canonical=True)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored nonzero elements."""
        return int(len(self.values))

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def sparse_ratio(self) -> float:
        """The paper's *sparse ratio* ``s``: nnz / (n_rows * n_cols)."""
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        """Materialise the dense 2-D array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[self.rows, self.cols] = self.values
        return dense

    def row_counts(self) -> np.ndarray:
        """nnz per row, length ``n_rows`` (the ED scheme's ``R_i`` for CRS)."""
        return np.bincount(self.rows, minlength=self.shape[0]).astype(np.int64)

    def col_counts(self) -> np.ndarray:
        """nnz per column, length ``n_cols`` (the ED scheme's ``R_i`` for CCS)."""
        return np.bincount(self.cols, minlength=self.shape[1]).astype(np.int64)

    # ------------------------------------------------------------------
    # slicing (used by the partition methods)
    # ------------------------------------------------------------------
    def submatrix(self, row_slice: slice, col_slice: slice) -> "COOMatrix":
        """Extract a contiguous block as a new COO matrix with local indices.

        ``row_slice``/``col_slice`` must be plain ``slice`` objects with
        non-negative bounds and step 1 (the paper only uses contiguous block
        partitions; block-cyclic partitioning goes through
        :meth:`take_rows` / :meth:`take_cols`).
        """
        r0, r1, rstep = row_slice.indices(self.shape[0])
        c0, c1, cstep = col_slice.indices(self.shape[1])
        if rstep != 1 or cstep != 1:
            raise ValueError("submatrix requires step-1 slices")
        mask = (
            (self.rows >= r0)
            & (self.rows < r1)
            & (self.cols >= c0)
            & (self.cols < c1)
        )
        return COOMatrix(
            (max(r1 - r0, 0), max(c1 - c0, 0)),
            self.rows[mask] - r0,
            self.cols[mask] - c0,
            self.values[mask],
            canonical=True,
        )

    def take_rows(self, row_ids) -> "COOMatrix":
        """Gather an arbitrary ordered set of rows into a new local matrix.

        ``row_ids[k]`` becomes local row ``k``.  Used by block-cyclic and
        bin-packing partitions where a processor's rows are not contiguous.
        """
        row_ids = _as_index_array(row_ids, "row_ids")
        lookup = np.full(self.shape[0], -1, dtype=np.int64)
        lookup[row_ids] = np.arange(len(row_ids), dtype=np.int64)
        local = lookup[self.rows]
        mask = local >= 0
        return COOMatrix(
            (len(row_ids), self.shape[1]),
            local[mask],
            self.cols[mask],
            self.values[mask],
        )

    def take_cols(self, col_ids) -> "COOMatrix":
        """Gather an arbitrary ordered set of columns (see :meth:`take_rows`)."""
        col_ids = _as_index_array(col_ids, "col_ids")
        lookup = np.full(self.shape[1], -1, dtype=np.int64)
        lookup[col_ids] = np.arange(len(col_ids), dtype=np.int64)
        local = lookup[self.cols]
        mask = local >= 0
        return COOMatrix(
            (self.shape[0], len(col_ids)),
            self.rows[mask],
            local[mask],
            self.values[mask],
        )

    def transpose(self) -> "COOMatrix":
        """The transposed matrix."""
        return COOMatrix(
            (self.shape[1], self.shape[0]), self.cols, self.rows, self.values
        )

    # ------------------------------------------------------------------
    # equality / repr
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):  # frozen dataclass wants it; identity is fine
        return id(self)

    def __repr__(self) -> str:
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"sparse_ratio={self.sparse_ratio:.4f})"
        )
