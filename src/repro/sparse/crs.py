"""Compressed Row Storage (CRS) — the paper's row-wise compression method.

The paper (Section 3.1, Figure 4) describes CRS exactly as in Barrett et al.
[4]: two integer vectors ``RO`` and ``CO`` plus a floating-point vector
``VL``:

* ``RO`` has ``n_rows + 1`` entries, ``RO[0] = 1``, and
  ``RO[i+1] = RO[i] + (nnz in row i)`` — i.e. 1-based running offsets;
* ``CO`` holds the (1-based, in the paper's figures) column index of each
  nonzero, row by row;
* ``VL`` holds the corresponding values.

Internally we store the ubiquitous 0-based ``indptr``/``indices``/``values``
triple (identical to scipy's ``csr_matrix`` layout) and expose the paper's
1-based ``RO``/``CO``/``VL`` as properties, so that tests can compare
directly against the published Figure 4 and the wire format can choose
either convention explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coo import COOMatrix

__all__ = ["CRSMatrix"]


@dataclass(frozen=True)
class CRSMatrix:
    """A sparse matrix in Compressed Row Storage.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        0-based row offsets, length ``n_rows + 1``, ``indptr[0] == 0``.
    indices:
        0-based column indices, length ``nnz``, ascending within each row.
    values:
        The nonzero values, parallel to ``indices``.
    """

    shape: tuple[int, int]
    indptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)

    def __init__(self, shape, indptr, indices, values, *, check: bool = True):
        shape = (int(shape[0]), int(shape[1]))
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if check:
            self._validate(shape, indptr, indices, values)
        for arr in (indptr, indices, values):
            arr.setflags(write=False)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @staticmethod
    def _validate(shape, indptr, indices, values):
        n_rows, n_cols = shape
        if indptr.ndim != 1 or len(indptr) != n_rows + 1:
            raise ValueError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {len(indptr)}"
            )
        if indptr[0] != 0:
            raise ValueError(f"indptr[0] must be 0, got {indptr[0]}")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(indptr[-1])
        if len(indices) != nnz or len(values) != nnz:
            raise ValueError(
                f"indices/values length must equal indptr[-1]={nnz}, "
                f"got {len(indices)}/{len(values)}"
            )
        if nnz:
            if indices.min() < 0 or indices.max() >= n_cols:
                raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    # the paper's 1-based views
    # ------------------------------------------------------------------
    @property
    def RO(self) -> np.ndarray:
        """1-based row offsets exactly as printed in the paper's Figure 4."""
        return self.indptr + 1

    @property
    def CO(self) -> np.ndarray:
        """Column indices exactly as printed in the paper's Figure 4.

        The paper mixes conventions: ``RO`` counts positions from 1, while
        ``CO`` stores 0-based indices (Figure 4, e.g. P3's ``CO = 1 2 4 0 3
        6``; Figure 7 converts global rows 3..5 to local 0..2 by
        subtracting 3).  ``CO`` is therefore identical to :attr:`indices`.
        """
        return self.indices

    @property
    def VL(self) -> np.ndarray:
        """The nonzero values (paper's ``VL`` vector)."""
        return self.values

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CRSMatrix":
        """Compress a canonical COO matrix (row-major sorted) into CRS.

        The row-count/offset pass runs on the active kernel backend.
        """
        from ..kernels import current_backend

        indptr, indices, values = current_backend().crs_from_coo(
            coo.shape, coo.rows, coo.cols, coo.values
        )
        return cls(coo.shape, indptr, indices, values, check=False)

    @classmethod
    def from_dense(cls, dense) -> "CRSMatrix":
        """Compress a dense array (the SFC scheme's per-processor step)."""
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def from_paper_arrays(cls, shape, RO, CO, VL) -> "CRSMatrix":
        """Build from the paper's ``RO`` (1-based) / ``CO`` (0-based) / ``VL``."""
        RO = np.asarray(RO, dtype=np.int64)
        CO = np.asarray(CO, dtype=np.int64)
        return cls(shape, RO - 1, CO, np.asarray(VL, dtype=np.float64))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def sparse_ratio(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(column_indices, values)`` of row ``i`` (0-based)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def row_counts(self) -> np.ndarray:
        """nnz per row (the ED scheme's ``R_i`` vector for CRS)."""
        return np.diff(self.indptr)

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_counts())
        return COOMatrix(self.shape, rows, self.indices, self.values, canonical=True)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------
    # equality / repr
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CRSMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"CRSMatrix(shape={self.shape}, nnz={self.nnz})"
