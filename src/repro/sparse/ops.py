"""Sparse array operations on the CRS/CCS substrate.

The paper's introduction motivates the distribution schemes with "array
operations ... in a large number of important scientific codes" (molecular
dynamics, finite elements, climate modeling).  These kernels are what a
processor runs on its compressed local array *after* distribution, and what
the :mod:`repro.apps` workloads are built from.

The traversal kernels (``spmv``, ``spmv_transpose``, ``spgemm``) dispatch
to the active kernel backend (:mod:`repro.kernels`): vectorised numpy by
default, or the per-nonzero python oracle under ``backend="python"`` —
byte-identical outputs either way (the differential suite's contract).
"""

from __future__ import annotations

import numpy as np

from ..kernels import current_backend
from .ccs import CCSMatrix
from .coo import COOMatrix
from .crs import CRSMatrix
from .convert import AnySparse, convert

__all__ = [
    "spmv",
    "spmv_transpose",
    "sp_add",
    "sp_scale",
    "sp_transpose",
    "sp_elementwise_multiply",
    "spgemm",
    "row_norms",
    "col_norms",
    "extract_diagonal",
    "frobenius_norm",
]


def spmv(m: AnySparse, x: np.ndarray) -> np.ndarray:
    """Sparse matrix–vector product ``y = m @ x``.

    Accepts any of the three sparse classes; ``x`` must have length
    ``m.n_cols``.  The traversal runs on the active kernel backend.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (m.shape[1],):
        raise ValueError(f"x must have shape ({m.shape[1]},), got {x.shape}")
    kernels = current_backend()
    if isinstance(m, CRSMatrix):
        return kernels.spmv_crs(m.shape, m.indptr, m.indices, m.values, x)
    if isinstance(m, CCSMatrix):
        return kernels.spmv_ccs(m.shape, m.indptr, m.indices, m.values, x)
    if isinstance(m, COOMatrix):
        return kernels.spmv_coo(m.shape, m.rows, m.cols, m.values, x)
    raise TypeError(f"unsupported sparse type {type(m).__name__}")


def spmv_transpose(m: AnySparse, x: np.ndarray) -> np.ndarray:
    """``y = m.T @ x`` without materialising the transpose."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (m.shape[0],):
        raise ValueError(f"x must have shape ({m.shape[0]},), got {x.shape}")
    kernels = current_backend()
    if isinstance(m, CRSMatrix):
        return kernels.spmv_t_crs(m.shape, m.indptr, m.indices, m.values, x)
    if isinstance(m, CCSMatrix):
        return kernels.spmv_t_ccs(m.shape, m.indptr, m.indices, m.values, x)
    if isinstance(m, COOMatrix):
        return kernels.spmv_t_coo(m.shape, m.rows, m.cols, m.values, x)
    raise TypeError(f"unsupported sparse type {type(m).__name__}")


def sp_add(a: AnySparse, b: AnySparse) -> COOMatrix:
    """Sparse matrix addition ``a + b`` (result in canonical COO)."""
    a = convert(a, COOMatrix)
    b = convert(b, COOMatrix)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return COOMatrix(
        a.shape,
        np.concatenate([a.rows, b.rows]),
        np.concatenate([a.cols, b.cols]),
        np.concatenate([a.values, b.values]),
    )


def sp_scale(m: AnySparse, alpha: float) -> AnySparse:
    """Scalar multiple ``alpha * m``, preserving the storage class."""
    if alpha == 0.0:
        return type(m).from_coo(COOMatrix.empty(m.shape)) if not isinstance(
            m, COOMatrix
        ) else COOMatrix.empty(m.shape)
    if isinstance(m, COOMatrix):
        return COOMatrix(m.shape, m.rows, m.cols, m.values * alpha, canonical=True)
    if isinstance(m, CRSMatrix):
        return CRSMatrix(m.shape, m.indptr, m.indices, m.values * alpha, check=False)
    if isinstance(m, CCSMatrix):
        return CCSMatrix(m.shape, m.indptr, m.indices, m.values * alpha, check=False)
    raise TypeError(f"unsupported sparse type {type(m).__name__}")


def sp_transpose(m: AnySparse) -> AnySparse:
    """Transpose, preserving the storage class (CRS stays CRS, etc.)."""
    coo_t = convert(m, COOMatrix).transpose()
    if isinstance(m, COOMatrix):
        return coo_t
    return type(m).from_coo(coo_t)


def sp_elementwise_multiply(a: AnySparse, b: AnySparse) -> COOMatrix:
    """Hadamard product ``a * b`` (nonzero only where both are nonzero)."""
    a = convert(a, COOMatrix)
    b = convert(b, COOMatrix)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    # canonical COO is row-major sorted and duplicate-free: intersect keys
    ka = a.rows * max(a.shape[1], 1) + a.cols
    kb = b.rows * max(b.shape[1], 1) + b.cols
    common, ia, ib = np.intersect1d(ka, kb, assume_unique=True, return_indices=True)
    del common
    return COOMatrix(
        a.shape, a.rows[ia], a.cols[ia], a.values[ia] * b.values[ib], canonical=False
    )


def row_norms(m: AnySparse, ord: float = 2.0) -> np.ndarray:
    """Per-row vector norms (used by the bin-packing partitioner's weights)."""
    coo = convert(m, COOMatrix)
    acc = np.zeros(m.shape[0], dtype=np.float64)
    np.add.at(acc, coo.rows, np.abs(coo.values) ** ord)
    return acc ** (1.0 / ord)


def col_norms(m: AnySparse, ord: float = 2.0) -> np.ndarray:
    """Per-column vector norms."""
    coo = convert(m, COOMatrix)
    acc = np.zeros(m.shape[1], dtype=np.float64)
    np.add.at(acc, coo.cols, np.abs(coo.values) ** ord)
    return acc ** (1.0 / ord)


def extract_diagonal(m: AnySparse) -> np.ndarray:
    """The main diagonal as a dense vector of length ``min(shape)``."""
    coo = convert(m, COOMatrix)
    d = np.zeros(min(m.shape), dtype=np.float64)
    mask = coo.rows == coo.cols
    d[coo.rows[mask]] = coo.values[mask]
    return d


def frobenius_norm(m: AnySparse) -> float:
    """The Frobenius norm sqrt(sum of squares of nonzeros)."""
    coo = convert(m, COOMatrix)
    return float(np.sqrt(np.sum(coo.values**2)))


def spgemm(a: AnySparse, b: AnySparse) -> COOMatrix:
    """Sparse matrix–matrix product ``C = A @ B`` (result in canonical COO).

    Row-by-row expansion on CRS operands: for each stored ``A[i, k]`` the
    whole compressed row ``B[k, :]`` is scaled and accumulated.  The
    expansion traversal runs on the active kernel backend (the numpy
    backend vectorises per distinct ``k`` — gather–scale–scatter — so its
    Python-level loop is over the populated columns of ``A``, not over
    nonzeros; the python oracle walks nonzero by nonzero in the identical
    order).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"inner dimensions disagree: {a.shape} @ {b.shape}"
        )
    a_crs = convert(a, CRSMatrix)
    b_crs = convert(b, CRSMatrix)
    a_coo = a_crs.to_coo()
    rows, cols, vals = current_backend().spgemm_expand(
        a_coo.rows, a_coo.cols, a_coo.values,
        b_crs.indptr, b_crs.indices, b_crs.values,
    )
    if not len(rows):
        return COOMatrix.empty((a.shape[0], b.shape[1]))
    return COOMatrix((a.shape[0], b.shape[1]), rows, cols, vals)
