"""Plain-text sparse matrix IO (MatrixMarket-coordinate dialect).

The paper cites the Harwell-Boeing collection [8, 9] as the source of its
"over 80% of sparse array applications have sparse ratio < 0.1" statistic.
We cannot ship that proprietary-format collection, so the repo reads and
writes the simpler MatrixMarket ``coordinate real general`` dialect, which
every modern sparse tool emits, and :mod:`repro.sparse.collection`
synthesises a collection with matching ratio statistics.

Only the features the repo needs are implemented: real-valued general
coordinate matrices, 1-based on disk (as both MatrixMarket and the paper's
figures are), 0-based in memory.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from .coo import COOMatrix

__all__ = ["write_matrix", "read_matrix", "dumps_matrix", "loads_matrix"]

_HEADER = "%%MatrixMarket matrix coordinate real general"


def write_matrix(m: COOMatrix, f: Union[str, Path, TextIO], *, comment: str = "") -> None:
    """Write ``m`` in MatrixMarket coordinate format (1-based indices)."""
    if isinstance(f, (str, Path)):
        with open(f, "w", encoding="ascii") as fh:
            write_matrix(m, fh, comment=comment)
        return
    f.write(_HEADER + "\n")
    for line in comment.splitlines():
        f.write(f"%{line}\n")
    f.write(f"{m.shape[0]} {m.shape[1]} {m.nnz}\n")
    for r, c, v in zip(m.rows, m.cols, m.values):
        f.write(f"{r + 1} {c + 1} {float(v)!r}\n")


def read_matrix(f: Union[str, Path, TextIO]) -> COOMatrix:
    """Read a MatrixMarket ``coordinate real general`` matrix."""
    if isinstance(f, (str, Path)):
        with open(f, "r", encoding="ascii") as fh:
            return read_matrix(fh)
    header = f.readline().strip()
    if not header.startswith("%%MatrixMarket"):
        raise ValueError(f"not a MatrixMarket file (header: {header!r})")
    tokens = header.split()
    if tokens[1:3] != ["matrix", "coordinate"] or tokens[3] not in ("real", "integer"):
        raise ValueError(f"unsupported MatrixMarket variant: {header!r}")
    if tokens[4] != "general":
        raise ValueError(f"only 'general' symmetry is supported, got {tokens[4]!r}")
    line = f.readline()
    while line.lstrip().startswith("%") or not line.strip():
        line = f.readline()
        if line == "":
            raise ValueError("truncated MatrixMarket file: no size line")
    n_rows, n_cols, nnz = (int(t) for t in line.split())
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    for k in range(nnz):
        line = f.readline()
        if line == "":
            raise ValueError(f"truncated MatrixMarket file: expected {nnz} entries, got {k}")
        parts = line.split()
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        vals[k] = float(parts[2])
    return COOMatrix((n_rows, n_cols), rows, cols, vals)


def dumps_matrix(m: COOMatrix, *, comment: str = "") -> str:
    """Serialise to a MatrixMarket string."""
    buf = io.StringIO()
    write_matrix(m, buf, comment=comment)
    return buf.getvalue()


def loads_matrix(text: str) -> COOMatrix:
    """Parse a MatrixMarket string."""
    return read_matrix(io.StringIO(text))
