"""Jagged Diagonal Storage (JDS) — from Barrett et al., the paper's ref [4].

The paper notes that "many data compression methods in [4] can be used"
in the compression phase and names analysing them as future work (1).
JDS is the most prominent of those alternatives: rows are sorted by
descending nonzero count, their elements compacted left, and the matrix is
stored column-of-jags by column-of-jags — the layout vector machines (and
the paper's Ziantz-et-al related work on SIMD SpMV) prefer.

Layout
------
* ``perm``     — row permutation, ``perm[k]`` is the original index of the
  k-th longest row;
* ``jd_ptr``   — start offset of each jagged diagonal, length
  ``max_row_nnz + 1``;
* ``indices``  — column index of each stored element, jag by jag;
* ``values``   — the elements, parallel to ``indices``.

Jag ``j`` holds the ``j``-th nonzero of every row that has one; within a
jag, entries follow the permuted row order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coo import COOMatrix

__all__ = ["JDSMatrix"]


@dataclass(frozen=True)
class JDSMatrix:
    """A sparse matrix in Jagged Diagonal Storage."""

    shape: tuple[int, int]
    perm: np.ndarray = field(repr=False)
    jd_ptr: np.ndarray = field(repr=False)
    indices: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)

    def __init__(self, shape, perm, jd_ptr, indices, values, *, check: bool = True):
        shape = (int(shape[0]), int(shape[1]))
        perm = np.ascontiguousarray(perm, dtype=np.int64)
        jd_ptr = np.ascontiguousarray(jd_ptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if check:
            self._validate(shape, perm, jd_ptr, indices, values)
        for arr in (perm, jd_ptr, indices, values):
            arr.setflags(write=False)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "perm", perm)
        object.__setattr__(self, "jd_ptr", jd_ptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @staticmethod
    def _validate(shape, perm, jd_ptr, indices, values):
        n_rows, n_cols = shape
        if len(perm) != n_rows:
            raise ValueError(f"perm must have length n_rows={n_rows}, got {len(perm)}")
        if len(perm) and not np.array_equal(np.sort(perm), np.arange(n_rows)):
            raise ValueError("perm must be a permutation of 0..n_rows-1")
        if len(jd_ptr) == 0 or jd_ptr[0] != 0:
            raise ValueError("jd_ptr must start with 0")
        if np.any(np.diff(jd_ptr) < 0):
            raise ValueError("jd_ptr must be non-decreasing")
        # each jag must be no longer than the previous (jagged shape)
        lengths = np.diff(jd_ptr)
        if len(lengths) > 1 and np.any(np.diff(lengths) > 0):
            raise ValueError("jag lengths must be non-increasing")
        if len(lengths) and lengths[0] > n_rows:
            raise ValueError("first jag longer than the row count")
        nnz = int(jd_ptr[-1])
        if len(indices) != nnz or len(values) != nnz:
            raise ValueError(
                f"indices/values must have length jd_ptr[-1]={nnz}, got "
                f"{len(indices)}/{len(values)}"
            )
        if nnz and (indices.min() < 0 or indices.max() >= n_cols):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "JDSMatrix":
        n_rows, n_cols = coo.shape
        counts = coo.row_counts()
        perm = np.argsort(-counts, kind="stable").astype(np.int64)
        max_len = int(counts.max()) if n_rows else 0
        # within-row position of every nonzero (canonical COO is row-major)
        firsts = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=firsts[1:])
        within = np.arange(coo.nnz, dtype=np.int64) - firsts[coo.rows]
        # permuted row rank of every nonzero
        rank_of_row = np.empty(n_rows, dtype=np.int64)
        rank_of_row[perm] = np.arange(n_rows, dtype=np.int64)
        ranks = rank_of_row[coo.rows]
        # jag j holds rows with count > j; jag length = #rows with count > j
        sorted_counts = counts[perm]
        jag_lengths = np.array(
            [(sorted_counts > j).sum() for j in range(max_len)], dtype=np.int64
        )
        jd_ptr = np.zeros(max_len + 1, dtype=np.int64)
        np.cumsum(jag_lengths, out=jd_ptr[1:])
        # position of element (jag=within, rank) = jd_ptr[within] + rank
        pos = jd_ptr[within] + ranks
        indices = np.empty(coo.nnz, dtype=np.int64)
        values = np.empty(coo.nnz, dtype=np.float64)
        indices[pos] = coo.cols
        values[pos] = coo.values
        return cls(coo.shape, perm, jd_ptr, indices, values, check=False)

    @classmethod
    def from_dense(cls, dense) -> "JDSMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.jd_ptr[-1])

    @property
    def n_jags(self) -> int:
        return len(self.jd_ptr) - 1

    @property
    def sparse_ratio(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def jag(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """``(column_indices, values)`` of jagged diagonal ``j``."""
        lo, hi = self.jd_ptr[j], self.jd_ptr[j + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def to_coo(self) -> COOMatrix:
        rows = np.empty(self.nnz, dtype=np.int64)
        for j in range(self.n_jags):
            lo, hi = self.jd_ptr[j], self.jd_ptr[j + 1]
            rows[lo:hi] = self.perm[: hi - lo]
        return COOMatrix(self.shape, rows, self.indices, self.values)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """``y = A @ x`` jag by jag — the vectorisable JDS kernel."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x must have shape ({self.shape[1]},), got {x.shape}")
        y = np.zeros(self.shape[0], dtype=np.float64)
        for j in range(self.n_jags):
            lo, hi = self.jd_ptr[j], self.jd_ptr[j + 1]
            rows = self.perm[: hi - lo]
            y[rows] += self.values[lo:hi] * x[self.indices[lo:hi]]
        return y

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, JDSMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.perm, other.perm)
            and np.array_equal(self.jd_ptr, other.jd_ptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"JDSMatrix(shape={self.shape}, nnz={self.nnz}, jags={self.n_jags})"
