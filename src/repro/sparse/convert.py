"""Conversions between the sparse storage formats.

A thin façade over the per-class constructors plus the direct CRS<->CCS
transposition-based conversions, so callers can write
``convert(matrix, CCSMatrix)`` generically (the scheme drivers do this when
parameterised over a compression method).
"""

from __future__ import annotations

from typing import Type, Union

import numpy as np

from .ccs import CCSMatrix
from .coo import COOMatrix
from .crs import CRSMatrix

__all__ = ["AnySparse", "convert", "crs_to_ccs", "ccs_to_crs"]

AnySparse = Union[COOMatrix, CRSMatrix, CCSMatrix]


def crs_to_ccs(m: CRSMatrix) -> CCSMatrix:
    """Direct CRS → CCS conversion (a stable column-major resort)."""
    return CCSMatrix.from_coo(m.to_coo())


def ccs_to_crs(m: CCSMatrix) -> CRSMatrix:
    """Direct CCS → CRS conversion (a stable row-major resort)."""
    return CRSMatrix.from_coo(m.to_coo())


def convert(m: AnySparse | np.ndarray, target: Type[AnySparse]) -> AnySparse:
    """Convert ``m`` (any sparse class or dense ndarray) to ``target``.

    Returns ``m`` unchanged when it already is a ``target`` instance.
    """
    if isinstance(m, target):
        return m
    if isinstance(m, np.ndarray):
        return target.from_dense(m)
    if isinstance(m, CRSMatrix) and target is CCSMatrix:
        return crs_to_ccs(m)
    if isinstance(m, CCSMatrix) and target is CRSMatrix:
        return ccs_to_crs(m)
    if isinstance(m, (CRSMatrix, CCSMatrix)) and target is COOMatrix:
        return m.to_coo()
    if isinstance(m, COOMatrix):
        return target.from_coo(m)
    raise TypeError(f"cannot convert {type(m).__name__} to {target.__name__}")
