"""Hierarchical spans + the per-machine observability recorder.

The :class:`Observability` object is the one handle the rest of the system
talks to.  Attached to a :class:`~repro.machine.machine.Machine` it

* subscribes to the machine's :class:`~repro.machine.trace.TraceLog`, so
  every charged event (ops, message, retry, fault) is mirrored into a
  per-actor **simulated clock** record and rolled into the metrics
  registry (bytes on wire per rank pair, retries per phase, …);
* hands out :meth:`span` context managers — hierarchical, labelled
  regions (``obs.span("ed.encode", rank=r)``) stamped with *both* the
  simulated clock and the wall clock;
* double-books nothing: observability never records trace events, never
  charges costs, and never touches wire buffers.  With observability
  disabled (the default) every instrumentation site short-circuits on an
  ``enabled`` check and the simulator is byte-identical to an
  un-instrumented build — the golden-trace fixtures pin this.

Because the metrics are accumulated from the *same* event stream that
:class:`~repro.machine.trace.PhaseBreakdown` reduces,
:meth:`Observability.verify_against_trace` can assert the two accountings
agree exactly — bytes, ops, messages, retries and retry time per phase —
so the observability layer and the paper's cost ledger can never drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..machine.topology import HOST
from ..machine.trace import Event, EventKind, Phase, TraceLog
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.machine import Machine

__all__ = [
    "EventRecord",
    "NULL_OBS",
    "ObservabilityDriftError",
    "Observability",
    "ObsSnapshot",
    "SpanRecord",
    "actor_label",
]


def actor_label(actor: int) -> str:
    """Stable string label for a lane: ``"host"`` or the rank number."""
    return "host" if actor == HOST else str(actor)


class ObservabilityDriftError(AssertionError):
    """The metrics registry and the TraceLog breakdowns disagree.

    Raised by :meth:`Observability.verify_against_trace`; firing means an
    instrumentation site double-counted or missed an event — a bug in the
    observability layer, never in the cost accounting (the TraceLog is
    the source of truth).
    """


@dataclass(frozen=True)
class EventRecord:
    """One charged machine event on the simulated clock.

    ``ts_ms`` is the *actor's* accumulated simulated time when the event
    began (host-serial / processor-parallel, exactly the model the paper
    reasons about), so the Perfetto export can draw one lane per actor.
    """

    phase: str
    kind: str
    actor: int
    ts_ms: float
    dur_ms: float
    quantity: int
    label: str
    src: int | None
    dst: int | None


@dataclass
class SpanRecord:
    """One hierarchical instrumented region.

    Spans carry two clocks: the global simulated clock (sum of every
    charged millisecond, in event order — coherent nesting for the trace
    viewer) and the wall clock (``time.perf_counter``), plus the number
    of machine events charged while the span was open.
    """

    span_id: int
    parent_id: int | None
    name: str
    labels: dict[str, Any]
    depth: int
    sim_start_ms: float
    wall_start_s: float
    sim_elapsed_ms: float = 0.0
    wall_elapsed_s: float = 0.0
    n_events: int = 0
    closed: bool = False
    #: events recorded when the span opened (internal bookkeeping for
    #: ``n_events``; not part of :meth:`to_dict`)
    _event_mark: int = field(default=0, repr=False, compare=False)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible snapshot of the span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "labels": {str(k): v for k, v in self.labels.items()},
            "depth": self.depth,
            "sim_start_ms": self.sim_start_ms,
            "sim_elapsed_ms": self.sim_elapsed_ms,
            "wall_elapsed_s": self.wall_elapsed_s,
            "n_events": self.n_events,
        }


class _NullSpan:
    """The shared no-op context manager handed out when obs is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Observability:
    """Span + metrics recorder for one simulated machine run.

    Parameters
    ----------
    enabled:
        ``False`` builds the inert recorder (:data:`NULL_OBS` is the
        shared instance): every method returns immediately and
        :meth:`span` hands back one cached no-op context manager, so the
        golden paths pay a single attribute check.
    meta:
        Free-form run metadata (scheme, partition, n, p, …) carried into
        every exporter's header.
    """

    def __init__(self, *, enabled: bool = True, **meta: Any) -> None:
        self.enabled = enabled
        self.meta: dict[str, Any] = dict(meta)
        self.metrics = MetricsRegistry()
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.n_procs: int | None = None
        self._trace: TraceLog | None = None
        self._actor_clock: dict[int, float] = {}
        self._sim_total = 0.0
        self._stack: list[SpanRecord] = []
        self._next_span_id = 1

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, machine: "Machine") -> None:
        """Subscribe to ``machine``'s trace; one recorder per machine.

        Attaching the same recorder to a second machine raises — the
        verification contract compares the registry against exactly one
        TraceLog, so totals from two machines must never mix.
        """
        if not self.enabled:
            return
        if self._trace is not None and self._trace is not machine.trace:
            raise ValueError(
                "this Observability is already attached to another machine; "
                "build a fresh recorder per run"
            )
        self.n_procs = machine.n_procs
        self.meta.setdefault("n_procs", machine.n_procs)
        if self._trace is None:
            self._trace = machine.trace
            machine.trace.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str, **labels: Any):
        """A context manager recording a hierarchical, labelled region.

        Zero-cost when disabled: the same cached no-op object is returned
        for every call.  Example::

            with obs.span("ed.encode", rank=r):
                ...
        """
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, labels)

    def _open_span(self, name: str, labels: dict[str, Any]) -> SpanRecord:
        record = SpanRecord(
            span_id=self._next_span_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            labels=labels,
            depth=len(self._stack),
            sim_start_ms=self._sim_total,
            wall_start_s=time.perf_counter(),
        )
        self._next_span_id += 1
        self.spans.append(record)
        self._stack.append(record)
        record._event_mark = len(self.events)
        return record

    def _close_span(self, record: SpanRecord) -> None:
        # close any children left open (exception unwound past them)
        while self._stack and self._stack[-1] is not record:
            self._close_span(self._stack[-1])
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        record.sim_elapsed_ms = self._sim_total - record.sim_start_ms
        record.wall_elapsed_s = time.perf_counter() - record.wall_start_s
        record.n_events = len(self.events) - record._event_mark
        record.closed = True

    # ------------------------------------------------------------------
    # event stream -> metrics + simulated clocks
    # ------------------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        """TraceLog subscription callback: mirror one charged event."""
        ts = self._actor_clock.get(event.actor, 0.0)
        self._actor_clock[event.actor] = ts + event.time
        self._sim_total += event.time
        self.events.append(
            EventRecord(
                phase=event.phase.value,
                kind=event.kind.value,
                actor=event.actor,
                ts_ms=ts,
                dur_ms=event.time,
                quantity=event.quantity,
                label=event.label,
                src=event.src,
                dst=event.dst,
            )
        )
        m = self.metrics
        phase = event.phase.value
        if event.kind is EventKind.MESSAGE:
            m.counter(
                "repro_messages_total", "Messages sent (incl. resends)"
            ).inc(1, phase=phase)
            m.counter(
                "repro_wire_elements_total",
                "Array elements on the wire per sender/receiver pair",
            ).inc(
                event.quantity,
                phase=phase,
                src=actor_label(event.src if event.src is not None else event.actor),
                dst=actor_label(event.dst if event.dst is not None else event.actor),
            )
        elif event.kind is EventKind.OPS:
            m.counter(
                "repro_ops_total", "Elementary array-element operations"
            ).inc(event.quantity, phase=phase)
        elif event.kind is EventKind.RETRY:
            m.counter(
                "repro_retries_total", "Failed attempts that triggered a backoff"
            ).inc(1, phase=phase)
            m.counter(
                "repro_retry_time_ms_total", "Backoff/timeout time charged"
            ).inc(event.time, phase=phase)
        elif event.kind is EventKind.FAULT:
            m.counter(
                "repro_faults_total", "Injected fault observations by label"
            ).inc(1, phase=phase, label=event.label)
            if event.label == "duplicate":
                m.counter(
                    "repro_dedup_drops_total",
                    "Duplicate frames discarded by sequence number",
                ).inc(1, phase=phase)
        m.gauge(
            "repro_sim_time_ms", "Accumulated simulated busy time per lane"
        ).set(self._actor_clock[event.actor], actor=actor_label(event.actor))

    # ------------------------------------------------------------------
    # direct instrumentation hooks
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1, help: str = "", **labels: Any) -> None:
        """Increment counter ``name`` by ``amount`` (no-op when disabled)."""
        if not self.enabled:
            return
        self.metrics.counter(name, help).inc(amount, **labels)

    def observe(self, name: str, value: float, help: str = "", **labels: Any) -> None:
        """Record one histogram observation (no-op when disabled)."""
        if not self.enabled:
            return
        self.metrics.histogram(name, help).observe(value, **labels)

    def record_kernel_call(self, backend: str, kernel: str) -> None:
        """Count one kernel dispatch (wired via ``observe_kernel_calls``)."""
        if not self.enabled:
            return
        self.metrics.counter(
            "repro_kernel_calls_total", "Kernel dispatches per backend"
        ).inc(1, backend=backend, kernel=kernel)

    def record_compressed(self, scheme: str, n_elements: int) -> None:
        """Count ``n_elements`` nonzeros compressed/encoded by ``scheme``."""
        if not self.enabled:
            return
        self.metrics.counter(
            "repro_elements_compressed_total",
            "Nonzero elements compressed or encoded, per scheme",
        ).inc(n_elements, scheme=scheme)

    def record_detection(self, rank: int, missed_acks: int, time_ms: float) -> None:
        """Record one completed fail-stop detection and its latency."""
        if not self.enabled:
            return
        self.metrics.counter(
            "repro_detections_total", "Fail-stop rank deaths declared"
        ).inc(1, rank=str(rank))
        self.metrics.histogram(
            "repro_detection_latency_ms",
            "Simulated time from first missed ack to declaration",
        ).observe(time_ms)
        self.metrics.counter(
            "repro_missed_acks_total", "Missed acks that fed detections"
        ).inc(missed_acks)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def sim_time_ms(self) -> float:
        """Total simulated milliseconds charged while observing."""
        return self._sim_total

    def comm_matrix(self) -> dict[str, dict[str, int]]:
        """Wire elements per sender → receiver (the communication matrix).

        Keys are lane labels (``"host"``, ``"0"``, …); values are the
        total array elements each pair put on the wire, including
        resends — the quantity SpComm3D-style communication profiling
        makes first-class.
        """
        matrix: dict[str, dict[str, int]] = {}
        metric = self.metrics.get("repro_wire_elements_total")
        if metric is None:
            return matrix
        for key in metric.labelsets():
            labels = dict(key)
            src, dst = labels.get("src", "?"), labels.get("dst", "?")
            matrix.setdefault(src, {})[dst] = (
                matrix.get(src, {}).get(dst, 0) + int(metric.samples[key])
            )
        return matrix

    def top_spans(self, n: int = 5) -> list[SpanRecord]:
        """The ``n`` spans with the largest simulated elapsed time."""
        return sorted(
            (s for s in self.spans if s.closed),
            key=lambda s: (-s.sim_elapsed_ms, s.span_id),
        )[:n]

    # ------------------------------------------------------------------
    # the no-drift contract
    # ------------------------------------------------------------------
    def verify_against_trace(self, trace: TraceLog | None = None) -> None:
        """Assert metric totals equal the TraceLog breakdowns exactly.

        Checks, per phase: wire elements, message count, op count, retry
        count, retry time (identical float-summation order, so exact
        equality) and fault count.  Raises
        :class:`ObservabilityDriftError` on any mismatch.
        """
        if not self.enabled:
            return
        trace = trace if trace is not None else self._trace
        if trace is None:
            raise ValueError("no trace attached or given to verify against")
        m = self.metrics
        for phase in Phase:
            bd = trace.breakdown(phase)
            ph = phase.value
            checks = (
                ("wire elements", bd.elements_sent,
                 m.total("repro_wire_elements_total", phase=ph)),
                ("messages", bd.n_messages,
                 m.total("repro_messages_total", phase=ph)),
                ("ops", bd.ops, m.total("repro_ops_total", phase=ph)),
                ("retries", bd.n_retries,
                 m.total("repro_retries_total", phase=ph)),
                ("retry time", bd.retry_time,
                 m.total("repro_retry_time_ms_total", phase=ph)),
                ("faults", bd.n_faults,
                 m.total("repro_faults_total", phase=ph)),
            )
            for what, ledger, observed in checks:
                if ledger != observed:
                    raise ObservabilityDriftError(
                        f"{ph}: {what} drifted — TraceLog says {ledger!r}, "
                        f"metrics say {observed!r}"
                    )

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self, *, top: int = 10) -> "ObsSnapshot":
        """Freeze the recorder into a result-attachable summary."""
        return ObsSnapshot(
            meta=dict(self.meta),
            n_spans=len(self.spans),
            n_events=len(self.events),
            sim_time_ms=self._sim_total,
            actor_sim_ms={
                actor_label(a): t for a, t in sorted(self._actor_clock.items())
            },
            comm_matrix=self.comm_matrix(),
            metrics=self.metrics.to_dict(),
            top_spans=tuple(s.to_dict() for s in self.top_spans(top)),
        )

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Observability({state}, {len(self.spans)} spans, "
            f"{len(self.events)} events, {len(self.metrics)} metrics)"
        )


class _LiveSpan:
    """Context manager backing :meth:`Observability.span` when enabled."""

    __slots__ = ("_obs", "_name", "_labels", "_record")

    def __init__(self, obs: Observability, name: str, labels: dict[str, Any]):
        self._obs = obs
        self._name = name
        self._labels = labels
        self._record: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        self._record = self._obs._open_span(self._name, self._labels)
        return self._record

    def __exit__(self, *exc: object) -> None:
        if self._record is not None:
            self._obs._close_span(self._record)
            self._record = None


@dataclass(frozen=True)
class ObsSnapshot:
    """Immutable observability summary attached to a ``SchemeResult``.

    Everything inside is JSON-compatible (``to_dict`` is the identity
    over plain containers), so ``result_to_dict`` can embed it directly.
    """

    meta: dict[str, Any]
    n_spans: int
    n_events: int
    sim_time_ms: float
    actor_sim_ms: dict[str, float]
    comm_matrix: dict[str, dict[str, int]]
    metrics: dict[str, Any]
    top_spans: tuple[dict[str, Any], ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict (what ``result_to_dict`` embeds)."""
        return {
            "meta": dict(self.meta),
            "n_spans": self.n_spans,
            "n_events": self.n_events,
            "sim_time_ms": self.sim_time_ms,
            "actor_sim_ms": dict(self.actor_sim_ms),
            "comm_matrix": {s: dict(d) for s, d in self.comm_matrix.items()},
            "metrics": self.metrics,
            "top_spans": [dict(s) for s in self.top_spans],
        }


#: the shared disabled recorder every un-instrumented machine points at
NULL_OBS = Observability(enabled=False)
