"""ASCII rendering of saved run logs (the ``repro inspect`` subcommand).

Works purely from a :class:`~repro.obs.exporters.RunLog` (a parsed JSONL
run log), so a run can be inspected long after the process that produced
it is gone — the same decoupling Prometheus/Perfetto give, but for a
terminal.
"""

from __future__ import annotations

from pathlib import Path

from .exporters import RunLog, read_run_log

__all__ = [
    "inspect_run_log",
    "render_comm_matrix",
    "render_metrics_summary",
    "render_top_spans",
]


def _lane_sort_key(label: str) -> tuple[int, int | str]:
    """Sort lanes host-first, then ranks numerically."""
    if label == "host":
        return (0, 0)
    try:
        return (1, int(label))
    except ValueError:
        return (2, label)


def render_comm_matrix(matrix: dict[str, dict[str, int]]) -> str:
    """ASCII table of wire elements per sender (rows) → receiver (cols)."""
    if not matrix:
        return "(no wire traffic recorded)"
    senders = sorted(matrix, key=_lane_sort_key)
    receivers = sorted(
        {dst for row in matrix.values() for dst in row}, key=_lane_sort_key
    )
    cells = {
        (src, dst): str(matrix.get(src, {}).get(dst, 0) or "·")
        for src in senders for dst in receivers
    }
    src_w = max(len("src\\dst"), *(len(s) for s in senders))
    col_w = {
        dst: max(len(dst), *(len(cells[(src, dst)]) for src in senders))
        for dst in receivers
    }
    lines = [
        " ".join(["src\\dst".ljust(src_w)]
                 + [dst.rjust(col_w[dst]) for dst in receivers])
    ]
    for src in senders:
        lines.append(
            " ".join([src.ljust(src_w)]
                     + [cells[(src, dst)].rjust(col_w[dst])
                        for dst in receivers])
        )
    total = sum(v for row in matrix.values() for v in row.values())
    lines.append(f"total elements on wire: {total}")
    return "\n".join(lines)


def render_top_spans(log: RunLog, n: int = 5) -> str:
    """The ``n`` slowest spans as an indented table (simulated + wall)."""
    spans = log.top_spans(n)
    if not spans:
        return "(no spans recorded)"
    lines = [f"{'sim ms':>10}  {'wall ms':>9}  {'events':>6}  span"]
    for span in spans:
        labels = ",".join(f"{k}={v}" for k, v in span.labels.items())
        name = f"{'  ' * span.depth}{span.name}"
        if labels:
            name += f" [{labels}]"
        lines.append(
            f"{span.sim_elapsed_ms:>10.3f}  {span.wall_elapsed_s * 1e3:>9.3f}"
            f"  {span.n_events:>6d}  {name}"
        )
    return "\n".join(lines)


def render_metrics_summary(log: RunLog) -> str:
    """One line per counter family: name and grand total."""
    lines = []
    for metric in log.metrics.collect():
        if metric.kind != "counter":
            continue
        total = sum(metric.samples[k] for k in metric.labelsets())
        value = int(total) if float(total).is_integer() else total
        lines.append(f"  {metric.name}: {value}")
    return "\n".join(lines) if lines else "  (no counters)"


def inspect_run_log(path: str | Path, *, top: int = 5) -> str:
    """Full ``repro inspect`` report for one JSONL run log."""
    log = read_run_log(path)
    meta = ", ".join(f"{k}={v}" for k, v in sorted(log.meta.items()))
    parts = [
        f"run log: {path}",
        f"meta: {meta or '(none)'}",
        f"simulated time: {log.sim_time_ms:.3f} ms over "
        f"{len(log.events)} events, {len(log.spans)} spans",
        "",
        "communication matrix (elements on wire, incl. resends):",
        render_comm_matrix(log.comm_matrix()),
        "",
        f"top {top} spans by simulated time:",
        render_top_spans(log, top),
        "",
        "counter totals:",
        render_metrics_summary(log),
    ]
    return "\n".join(parts)
