"""Metrics registry: counters, gauges and histograms with label support.

A deliberately small, dependency-free take on the Prometheus data model —
just enough structure that one registry can hold every quantity the
observability layer derives from a run (bytes on the wire per rank pair,
retries per phase, kernel calls per backend, detection latencies, …) and
the exporters in :mod:`repro.obs.exporters` can render it losslessly as
Prometheus text, JSONL, or a plain dict.

Design rules:

* **Labels are sorted tuples.**  A sample is keyed by the sorted
  ``(name, value)`` pairs of its labels, so ``inc(src="host", dst="0")``
  and ``inc(dst="0", src="host")`` address the same series.
* **Metric types never collide.**  Re-requesting a metric with the same
  name but a different type (or help string) raises — the same contract
  Prometheus client libraries enforce.
* **Everything is JSON-compatible.**  ``MetricsRegistry.to_dict()`` emits
  plain dicts/lists/numbers, and :func:`metrics_from_dict` round-trips
  them — the basis of the JSONL run-log format read back by
  ``repro inspect``.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "metrics_from_dict",
]

#: default histogram buckets, in simulated milliseconds (plus +Inf)
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Normalise a label mapping to a hashable, order-independent key."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class of one named metric family (all samples share the name).

    Subclasses set :attr:`kind` (``"counter"`` | ``"gauge"`` |
    ``"histogram"``) and define how samples are updated; this base class
    owns the name, the help string and the per-label-set sample store.
    """

    kind: str = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        if name[0].isdigit():
            raise ValueError(f"metric name {name!r} may not start with a digit")
        self.name = name
        self.help = help
        self.samples: dict[LabelKey, Any] = {}

    def labelsets(self) -> Iterable[LabelKey]:
        """All label-key tuples with at least one recorded sample."""
        return self.samples.keys()

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible snapshot: kind, help and every sample."""
        return {
            "kind": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": self._sample_value(key)}
                for key in sorted(self.samples)
            ],
        }

    def _sample_value(self, key: LabelKey) -> Any:
        return self.samples[key]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} ({len(self.samples)} series)>"


class Counter(Metric):
    """A monotonically increasing sum (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never incremented)."""
        return self.samples.get(_label_key(labels), 0)

    def total(self, **match: Any) -> float:
        """Sum over every series whose labels include all of ``match``."""
        want = set(_label_key(match))
        return sum(v for k, v in self.samples.items() if want <= set(k))


class Gauge(Metric):
    """A value that can go up and down (e.g. a per-lane simulated clock)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled series to ``value``."""
        self.samples[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled series (0 if never set)."""
        return self.samples.get(_label_key(labels), 0)


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Each labelled series keeps per-bucket counts, a running sum and a
    count; buckets are upper bounds with an implicit ``+Inf`` final
    bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b != b or b == -math.inf for b in bounds):  # NaN / -inf guard
            raise ValueError(f"invalid bucket bounds {bounds}")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(labels)
        sample = self.samples.get(key)
        if sample is None:
            sample = {"bucket_counts": [0] * (len(self.buckets) + 1),
                      "sum": 0.0, "count": 0}
            self.samples[key] = sample
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        sample["bucket_counts"][idx] += 1
        sample["sum"] += value
        sample["count"] += 1

    def count(self, **labels: Any) -> int:
        """Number of observations in one labelled series."""
        sample = self.samples.get(_label_key(labels))
        return 0 if sample is None else sample["count"]

    def sum(self, **labels: Any) -> float:
        """Sum of observations in one labelled series."""
        sample = self.samples.get(_label_key(labels))
        return 0.0 if sample is None else sample["sum"]

    def to_dict(self) -> dict[str, Any]:
        """JSON snapshot including the bucket bounds."""
        out = super().to_dict()
        out["buckets"] = list(self.buckets)
        return out

    def _sample_value(self, key: LabelKey) -> Any:
        s = self.samples[key]
        return {"bucket_counts": list(s["bucket_counts"]),
                "sum": s["sum"], "count": s["count"]}


class MetricsRegistry:
    """A named collection of metrics, the single source the exporters read.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return by name, so
    instrumentation sites can call them repeatedly without coordination;
    a name registered as one kind can never be re-registered as another.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- registration ----------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} is a {existing.kind}, not a "
                    f"{cls.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Create or fetch the counter called ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Create or fetch the gauge called ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Create or fetch the histogram called ``name``."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- reading ----------------------------------------------------------
    def get(self, name: str) -> Metric | None:
        """The metric called ``name``, or None."""
        return self._metrics.get(name)

    def collect(self) -> list[Metric]:
        """Every registered metric, in name order (exporters iterate this)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def value(self, name: str, **labels: Any) -> float:
        """Shortcut: a counter/gauge series value (0 for unknown names)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if not isinstance(metric, (Counter, Gauge)):
            raise TypeError(f"metric {name!r} is a {metric.kind}; use get()")
        return metric.value(**labels)

    def total(self, name: str, **match: Any) -> float:
        """Shortcut: a counter's sum over series matching ``match``."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a counter")
        return metric.total(**match)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible snapshot of every metric (name-sorted)."""
        return {m.name: m.to_dict() for m in self.collect()}

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


def metrics_from_dict(payload: Mapping[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.to_dict` output.

    Used by ``repro inspect`` to reload the metrics block of a JSONL run
    log; values survive the round trip exactly (they are plain floats and
    integer bucket counts).
    """
    registry = MetricsRegistry()
    for name, body in payload.items():
        kind = body.get("kind")
        if kind == "counter":
            metric: Metric = registry.counter(name, body.get("help", ""))
            for sample in body.get("samples", ()):
                metric.inc(sample["value"], **sample["labels"])
        elif kind == "gauge":
            metric = registry.gauge(name, body.get("help", ""))
            for sample in body.get("samples", ()):
                metric.set(sample["value"], **sample["labels"])
        elif kind == "histogram":
            metric = registry.histogram(
                name, body.get("help", ""),
                buckets=tuple(body.get("buckets", DEFAULT_BUCKETS)),
            )
            for sample in body.get("samples", ()):
                key = _label_key(sample["labels"])
                metric.samples[key] = {
                    "bucket_counts": list(sample["value"]["bucket_counts"]),
                    "sum": sample["value"]["sum"],
                    "count": sample["value"]["count"],
                }
        else:
            raise ValueError(f"metric {name!r} has unknown kind {kind!r}")
    return registry
