"""Unified observability: spans, metrics and exporters for simulated runs.

The layer the ROADMAP's optimisation PRs measure against.  One
:class:`Observability` recorder per run mirrors every charged machine
event into per-actor simulated clocks and a Prometheus-style metrics
registry, wraps the interesting regions (phases, per-rank pack/send/
recv/unpack, ack/retry cycles, checkpoint/rollback, kernel dispatch) in
hierarchical spans, and renders the result as a Perfetto-loadable Chrome
trace, Prometheus text, or a JSONL run log that ``repro inspect`` reads
back.

Byte-transparency contract: with observability disabled (the default,
:data:`NULL_OBS`), the simulator's traces, wire bytes and cost charges
are identical to an un-instrumented build; with it enabled,
:meth:`Observability.verify_against_trace` asserts the metric totals
equal the :class:`~repro.machine.trace.TraceLog` breakdowns exactly, so
the two accountings can never drift.

Quickstart::

    from repro import run_scheme
    from repro.obs import Observability, write_chrome_trace

    obs = Observability(scheme="ed")
    r = run_scheme("ed", A, n_procs=16, obs=obs)
    write_chrome_trace(obs, "trace.json")      # open in ui.perfetto.dev
    print(obs.comm_matrix())                   # elements per rank pair
"""

from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    metrics_from_dict,
)
from .spans import (
    NULL_OBS,
    EventRecord,
    Observability,
    ObservabilityDriftError,
    ObsSnapshot,
    SpanRecord,
    actor_label,
)
from .exporters import (
    MACHINE_PID,
    SPAN_PID,
    RunLog,
    read_run_log,
    to_chrome_trace,
    to_prometheus_text,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .inspect import (
    inspect_run_log,
    render_comm_matrix,
    render_metrics_summary,
    render_top_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EventRecord",
    "Gauge",
    "Histogram",
    "MACHINE_PID",
    "Metric",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "ObservabilityDriftError",
    "ObsSnapshot",
    "RunLog",
    "SPAN_PID",
    "SpanRecord",
    "actor_label",
    "inspect_run_log",
    "metrics_from_dict",
    "read_run_log",
    "render_comm_matrix",
    "render_metrics_summary",
    "render_top_spans",
    "to_chrome_trace",
    "to_prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
