"""Exporters: Chrome trace-event JSON, Prometheus text, JSONL run logs.

Three renderings of one :class:`~repro.obs.spans.Observability` recorder:

* :func:`to_chrome_trace` — the Chrome trace-event format (the JSON
  Perfetto and ``chrome://tracing`` load).  Machine events become ``"X"``
  complete events on **pid 0**, one ``tid`` lane per actor mirroring the
  paper's host-serial / processor-parallel model (host = lane 0, rank
  *r* = lane *r*+1); zero-duration faults become ``"i"`` instants;
  hierarchical spans become ``"X"`` events on **pid 1** over the global
  simulated clock, so nesting renders as flame-graph stacking;
  ``supervisor.*`` spans (real-fault restarts/degradations) get their own
  lane (``tid`` 1 under pid 1), present only on supervised runs.
* :func:`to_prometheus_text` — the Prometheus exposition format
  (``# HELP`` / ``# TYPE`` headers, escaped labels, cumulative
  ``_bucket{le=…}`` / ``_sum`` / ``_count`` for histograms).
* :func:`write_jsonl` / :func:`read_run_log` — a typed-line JSONL run
  log (``meta`` / ``event`` / ``span`` / ``metrics`` lines) that
  round-trips losslessly; ``repro inspect`` reads it back.

All timestamps in the Chrome export are **simulated** time: the paper's
cost model is the clock being visualised, not the wall clock (wall-clock
span durations ride along in the args of each span event).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .metrics import Histogram, MetricsRegistry, metrics_from_dict
from .spans import EventRecord, Observability, SpanRecord, actor_label

__all__ = [
    "RunLog",
    "read_run_log",
    "to_chrome_trace",
    "to_prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]

#: pid of the per-actor machine-event lanes in the Chrome export
MACHINE_PID = 0
#: pid of the hierarchical span lanes in the Chrome export
SPAN_PID = 1
#: tid (under SPAN_PID) of the real-fault supervisor lane — restarts and
#: degradations render beside, not inside, the algorithmic span stack
SUPERVISOR_TID = 1
#: tid (under SPAN_PID) of the sweep-orchestration lane — cell lifecycle
#: spans render beside the per-run algorithmic span stack
SWEEP_TID = 2


def _tid_for_actor(actor: int) -> int:
    """Lane number for one actor: host -> 0, rank r -> r + 1."""
    return 0 if actor < 0 else actor + 1


def to_chrome_trace(obs: Observability) -> dict[str, Any]:
    """Render the recorder as a Chrome trace-event JSON object.

    The result is a dict with ``traceEvents`` (list of event objects
    obeying the ``ph``/``ts``/``pid``/``tid`` contract, timestamps in
    microseconds of *simulated* time), ``displayTimeUnit`` and the run
    metadata under ``otherData`` — exactly what Perfetto /
    ``chrome://tracing`` expect from a JSON trace.
    """
    events: list[dict[str, Any]] = []

    # -- metadata: name the processes and the per-actor lanes ------------
    events.append({
        "ph": "M", "pid": MACHINE_PID, "tid": 0, "ts": 0,
        "name": "process_name",
        "args": {"name": "machine (simulated clock)"},
    })
    events.append({
        "ph": "M", "pid": SPAN_PID, "tid": 0, "ts": 0,
        "name": "process_name",
        "args": {"name": "spans (global simulated clock)"},
    })
    actors = {e.actor for e in obs.events}
    if obs.n_procs is not None:  # name every rank's lane, busy or not
        actors.update(range(obs.n_procs))
    for actor in sorted(actors):
        lane = "host (serial)" if actor < 0 else f"rank {actor}"
        events.append({
            "ph": "M", "pid": MACHINE_PID, "tid": _tid_for_actor(actor),
            "ts": 0, "name": "thread_name", "args": {"name": lane},
        })
    events.append({
        "ph": "M", "pid": SPAN_PID, "tid": 0, "ts": 0,
        "name": "thread_name", "args": {"name": "span stack"},
    })
    # supervisor lane metadata only when supervisor spans exist, so
    # unsupervised exports stay byte-identical to earlier builds
    if any(s.name.startswith("supervisor.") for s in obs.spans):
        events.append({
            "ph": "M", "pid": SPAN_PID, "tid": SUPERVISOR_TID, "ts": 0,
            "name": "thread_name", "args": {"name": "supervisor"},
        })
    # likewise the sweep-orchestration lane: only manifests when a sweep
    # actually ran under this recorder
    if any(s.name.startswith("sweep.") for s in obs.spans):
        events.append({
            "ph": "M", "pid": SPAN_PID, "tid": SWEEP_TID, "ts": 0,
            "name": "thread_name", "args": {"name": "sweep"},
        })

    # -- machine events: one lane per actor ------------------------------
    for rec in obs.events:
        args: dict[str, Any] = {
            "phase": rec.phase, "kind": rec.kind, "quantity": rec.quantity,
        }
        if rec.src is not None:
            args["src"] = actor_label(rec.src)
        if rec.dst is not None:
            args["dst"] = actor_label(rec.dst)
        base = {
            "name": rec.label or rec.kind,
            "cat": f"{rec.phase},{rec.kind}",
            "pid": MACHINE_PID,
            "tid": _tid_for_actor(rec.actor),
            "ts": rec.ts_ms * 1000.0,  # ms -> µs
            "args": args,
        }
        if rec.dur_ms <= 0.0:
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append({**base, "ph": "X", "dur": rec.dur_ms * 1000.0})

    # -- spans: flame-graph nesting over the global simulated clock ------
    for span in obs.spans:
        if not span.closed:
            continue
        args = {str(k): v for k, v in span.labels.items()}
        args["wall_ms"] = span.wall_elapsed_s * 1000.0
        args["n_events"] = span.n_events
        supervisor = span.name.startswith("supervisor.")
        sweep = span.name.startswith("sweep.")
        if supervisor:
            tid, cat = SUPERVISOR_TID, "supervisor"
        elif sweep:
            tid, cat = SWEEP_TID, "sweep"
        else:
            tid, cat = 0, "span"
        events.append({
            "name": span.name,
            "cat": cat,
            "ph": "X",
            "pid": SPAN_PID,
            "tid": tid,
            "ts": span.sim_start_ms * 1000.0,
            "dur": span.sim_elapsed_ms * 1000.0,
            "args": args,
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(obs.meta),
    }


def write_chrome_trace(obs: Observability, path: str | Path) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(obs), indent=1) + "\n")
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus exposition rules."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus_text(metrics: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters/gauges emit one sample line per label set; histograms emit
    cumulative ``_bucket{le=…}`` lines (ending at ``le="+Inf"``) plus
    ``_sum`` and ``_count`` — the exact shape a Prometheus scrape of a
    real client library produces.
    """
    lines: list[str] = []
    for metric in metrics.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key in sorted(metric.samples):
                labels = dict(key)
                sample = metric.samples[key]
                cumulative = 0
                bounds = list(metric.buckets) + [math.inf]
                for bound, count in zip(bounds, sample["bucket_counts"]):
                    cumulative += count
                    le = 'le="' + _format_value(float(bound)) + '"'
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(labels, le)} {cumulative}"
                    )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} "
                    f"{sample['count']}"
                )
        else:
            for key in sorted(metric.samples):
                labels = dict(key)
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(metric.samples[key])}"
                )
    return "\n".join(lines) + "\n"


def write_prometheus(obs: Observability, path: str | Path) -> Path:
    """Write the recorder's registry as Prometheus text; returns the path."""
    path = Path(path)
    path.write_text(to_prometheus_text(obs.metrics))
    return path


# ---------------------------------------------------------------------------
# JSONL run logs (read back by `repro inspect`)
# ---------------------------------------------------------------------------

def write_jsonl(obs: Observability, path: str | Path) -> Path:
    """Write the full recorder state as a typed-line JSONL run log.

    Line types: one ``meta`` header, one ``event`` line per machine
    event, one ``span`` line per closed span, one trailing ``metrics``
    line holding the whole registry snapshot.  :func:`read_run_log`
    round-trips the file.
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write(json.dumps({
            "type": "meta",
            "meta": dict(obs.meta),
            "sim_time_ms": obs.sim_time_ms,
            "n_events": len(obs.events),
            "n_spans": len(obs.spans),
        }) + "\n")
        for rec in obs.events:
            fh.write(json.dumps({
                "type": "event",
                "phase": rec.phase, "kind": rec.kind, "actor": rec.actor,
                "ts_ms": rec.ts_ms, "dur_ms": rec.dur_ms,
                "quantity": rec.quantity, "label": rec.label,
                "src": rec.src, "dst": rec.dst,
            }) + "\n")
        for span in obs.spans:
            fh.write(json.dumps({"type": "span", **span.to_dict()}) + "\n")
        fh.write(json.dumps({
            "type": "metrics", "metrics": obs.metrics.to_dict(),
        }) + "\n")
    return path


@dataclass
class RunLog:
    """A parsed JSONL run log (what ``repro inspect`` works from)."""

    meta: dict[str, Any] = field(default_factory=dict)
    sim_time_ms: float = 0.0
    events: list[EventRecord] = field(default_factory=list)
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def comm_matrix(self) -> dict[str, dict[str, int]]:
        """Sender → receiver wire-element totals, from the metrics block."""
        matrix: dict[str, dict[str, int]] = {}
        metric = self.metrics.get("repro_wire_elements_total")
        if metric is None:
            return matrix
        for key in metric.labelsets():
            labels = dict(key)
            src, dst = labels.get("src", "?"), labels.get("dst", "?")
            row = matrix.setdefault(src, {})
            row[dst] = row.get(dst, 0) + int(metric.samples[key])
        return matrix

    def top_spans(self, n: int = 5) -> list[SpanRecord]:
        """The ``n`` spans with the largest simulated elapsed time."""
        return sorted(
            self.spans, key=lambda s: (-s.sim_elapsed_ms, s.span_id)
        )[:n]


def read_run_log(path: str | Path) -> RunLog:
    """Parse a :func:`write_jsonl` run log back into a :class:`RunLog`."""
    log = RunLog()
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                body = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            kind = body.get("type")
            if kind == "meta":
                log.meta = dict(body.get("meta", {}))
                log.sim_time_ms = float(body.get("sim_time_ms", 0.0))
            elif kind == "event":
                log.events.append(EventRecord(
                    phase=body["phase"], kind=body["kind"],
                    actor=int(body["actor"]), ts_ms=float(body["ts_ms"]),
                    dur_ms=float(body["dur_ms"]),
                    quantity=int(body["quantity"]), label=body.get("label", ""),
                    src=body.get("src"), dst=body.get("dst"),
                ))
            elif kind == "span":
                log.spans.append(SpanRecord(
                    span_id=int(body["span_id"]),
                    parent_id=body.get("parent_id"),
                    name=body["name"], labels=dict(body.get("labels", {})),
                    depth=int(body.get("depth", 0)),
                    sim_start_ms=float(body.get("sim_start_ms", 0.0)),
                    wall_start_s=0.0,
                    sim_elapsed_ms=float(body.get("sim_elapsed_ms", 0.0)),
                    wall_elapsed_s=float(body.get("wall_elapsed_s", 0.0)),
                    n_events=int(body.get("n_events", 0)),
                    closed=True,
                ))
            elif kind == "metrics":
                log.metrics = metrics_from_dict(body.get("metrics", {}))
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown run-log line type {kind!r}"
                )
    return log
