"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        distribute one generated array and print the phase times
``tables``     reproduce the paper's Tables 3–5 next to the published numbers
``figures``    print the Figures 1–7 worked example artefacts
``crossover``  print the Remark-5 thresholds and exact model crossovers
``sweep``      sweep s / T_Data/T_Op / p / n and chart the scheme costs
``analyze``    memory footprints, break-even iterations, format advice
``collection`` sparse-ratio statistics of the synthetic HB-style collection
``report``     write EXPERIMENTS.md (paper-vs-measured for everything)
``inspect``    render the comm matrix / top spans of a saved JSONL run log
``serve``      run the throughput run-service (JSONL protocol + /metrics)
``load``       drive a running service with deterministic seeded load
``lint``       run the reprolint static-analysis rules (RL001–RL006)
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Data Distribution Schemes of Sparse Arrays "
            "on Distributed Memory Multicomputers' (ICPP 2002)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="distribute one array, print phase times")
    run.add_argument("--scheme", choices=["sfc", "cfs", "ed", "all"], default="all")
    run.add_argument("--n", type=int, default=1000, help="array is n x n")
    run.add_argument("--procs", type=int, default=16)
    run.add_argument(
        "--partition", choices=["row", "column", "mesh2d"], default="row"
    )
    run.add_argument("--compression", choices=["crs", "ccs"], default="crs")
    run.add_argument("--sparse-ratio", type=float, default=0.1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--timeline", action="store_true",
        help="print a per-lane ASCII busy timeline for the last scheme",
    )
    run.add_argument(
        "--faults", metavar="SPEC.json", default=None,
        help="fault plan (JSON FaultSpec) enabling fault injection and "
        "reliable delivery; see examples/faults/lossy.json",
    )
    run.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the deterministic fault injector (default 0)",
    )
    run.add_argument(
        "--recovery", choices=["off", "host-resend", "peer-redistribute"],
        default="off",
        help="fail-stop recovery policy: repair rank deaths from the fault "
        "plan's fail_stop spec on the surviving processors (needs --faults)",
    )
    run.add_argument(
        "--backend", metavar="NAME", default=None,
        help="kernel backend the hot paths run on (numpy | python); results "
        "are byte-identical either way, only wall-clock differs "
        "(default: the process default, numpy)",
    )
    run.add_argument(
        "--executor", metavar="NAME", default=None,
        help="executor rank tasks run on (sim | process); results are "
        "byte-identical either way — process runs one OS process per "
        "rank (default: $REPRO_EXECUTOR, else sim)",
    )
    run.add_argument(
        "--supervise", metavar="SPEC.json", default=None,
        help="supervise the process executor against real faults (JSON "
        "SuperviseSpec: deadlines, restart budget, degradation); needs "
        "--executor process; see examples/supervise/default.json",
    )
    run.add_argument(
        "--trace-out", metavar="TRACE.json", default=None,
        help="write a Chrome trace-event JSON of the last scheme's run "
        "(open in ui.perfetto.dev or chrome://tracing); enables "
        "observability for the run",
    )
    run.add_argument(
        "--metrics-out", metavar="METRICS.prom", default=None,
        help="write the last scheme's metrics registry in Prometheus text "
        "format; enables observability for the run",
    )
    run.add_argument(
        "--log-out", metavar="RUN.jsonl", default=None,
        help="write the last scheme's full observability state as a JSONL "
        "run log readable by `repro inspect`; enables observability",
    )

    tables = sub.add_parser("tables", help="reproduce Tables 3-5")
    tables.add_argument(
        "table",
        nargs="?",
        choices=["table3", "table4", "table5", "all"],
        default="all",
    )
    tables.add_argument(
        "--quick", action="store_true", help="restrict to n <= 800, two p values"
    )
    tables.add_argument(
        "--faults", metavar="SPEC.json", default=None,
        help="re-derive the tables under a fault plan (JSON FaultSpec)",
    )
    tables.add_argument("--fault-seed", type=int, default=0)
    tables.add_argument(
        "--backend", metavar="NAME", default=None,
        help="kernel backend for every cell (numpy | python); results are "
        "byte-identical either way",
    )
    tables.add_argument(
        "--executor", metavar="NAME", default=None,
        help="executor for every cell (sim | process); results are "
        "byte-identical either way",
    )
    tables.add_argument(
        "--supervise", metavar="SPEC.json", default=None,
        help="supervise the process executor against real faults for "
        "every cell (JSON SuperviseSpec); needs --executor process",
    )

    sub.add_parser("figures", help="print the Figures 1-7 worked example")

    crossover = sub.add_parser(
        "crossover", help="Remark-5 thresholds and exact crossovers"
    )
    crossover.add_argument("--n", type=int, default=1000)
    crossover.add_argument("--procs", type=int, default=16)
    crossover.add_argument("--sparse-ratio", type=float, default=0.1)
    crossover.add_argument(
        "--partition", choices=["row", "column", "mesh2d"], default="row"
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="run a manifest of experiment cells, or sweep a model knob",
    )
    sweep_p.add_argument(
        "parameter", metavar="MANIFEST.json | s|ratio|p|n",
        help="an experiment manifest to run into a result store, or a "
        "model knob to chart (sparse ratio, T_Data/T_Op, processors, size)",
    )
    sweep_p.add_argument("--start", type=float, default=None)
    sweep_p.add_argument("--stop", type=float, default=None)
    sweep_p.add_argument(
        "--store", metavar="RESULTS.jsonl", default=None,
        help="result store path (manifest mode; default: the manifest "
        "path with a .results.jsonl suffix)",
    )
    sweep_p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep: skip committed cells, "
        "re-run a torn final record (manifest mode)",
    )
    sweep_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="cells to run concurrently, one worker process per cell "
        "(manifest mode; default 1 = in-process)",
    )
    sweep_p.add_argument(
        "--executor", choices=["sim", "process"], default=None,
        help="executor every cell's rank tasks run on (manifest mode; "
        "placement only — results and the store are identical either way)",
    )
    sweep_p.add_argument("--points", type=int, default=20)
    sweep_p.add_argument("--n", type=int, default=500)
    sweep_p.add_argument("--procs", type=int, default=8)
    sweep_p.add_argument("--sparse-ratio", type=float, default=0.1)
    sweep_p.add_argument(
        "--partition", choices=["row", "column", "mesh2d"], default="row"
    )
    sweep_p.add_argument("--compression", choices=["crs", "ccs"], default="crs")
    sweep_p.add_argument(
        "--metric",
        choices=["t_total", "t_distribution", "t_compression"],
        default="t_total",
    )
    sweep_p.add_argument(
        "--simulate", action="store_true",
        help="run the simulator at each point instead of the closed forms",
    )

    analyze = sub.add_parser(
        "analyze", help="memory, break-even and format advice for a workload"
    )
    analyze.add_argument("--n", type=int, default=1000)
    analyze.add_argument("--procs", type=int, default=16)
    analyze.add_argument("--sparse-ratio", type=float, default=0.1)
    analyze.add_argument("--seed", type=int, default=0)

    collection = sub.add_parser(
        "collection", help="sparse-ratio stats of the synthetic collection"
    )
    collection.add_argument("--count", type=int, default=100)
    collection.add_argument("--seed", type=int, default=20020101)

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    report.add_argument(
        "--store", metavar="RESULTS.jsonl", default=None,
        help="persistent sweep store for the table grids: resumes it if "
        "partial, reuses it verbatim if complete (default: a temporary "
        "store, discarded after rendering)",
    )

    inspect_p = sub.add_parser(
        "inspect", help="render a saved JSONL run log (comm matrix, top spans)"
    )
    inspect_p.add_argument(
        "log", metavar="RUN.jsonl",
        help="run log written by `repro run --log-out RUN.jsonl`",
    )
    inspect_p.add_argument(
        "--top", type=int, default=5,
        help="how many spans to show, slowest (simulated) first (default 5)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the throughput run-service (JSONL requests + GET /metrics)",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="listen on a unix socket at PATH (exclusive with --port)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1; only with --port)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port to listen on (0 = pick a free port; "
        "default 7027 when --socket is not given)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent run workers draining the queue (default 2)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded queue capacity; beyond it requests get a typed 429 "
        "reject line (default 64)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=8,
        help="warm RunSession pool bound, LRU-evicted (default 8)",
    )
    serve.add_argument(
        "--backend", metavar="NAME", default=None,
        help="default kernel backend for requests that do not pick one "
        "(numpy | python); results are byte-identical either way",
    )
    serve.add_argument(
        "--executor", metavar="NAME", default=None,
        help="default executor for requests that do not pick one (sim | "
        "process); results are byte-identical either way",
    )

    load = sub.add_parser(
        "load",
        help="drive a running service with a deterministic seeded load",
    )
    load.add_argument(
        "--socket", metavar="PATH", default=None,
        help="connect to a unix socket at PATH (exclusive with --port)",
    )
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument(
        "--port", type=int, default=None,
        help="TCP port the service listens on (default 7027 without --socket)",
    )
    load.add_argument(
        "--rps", type=float, default=50.0,
        help="offered request rate, open-loop (default 50)",
    )
    load.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds to keep offering load (default 5)",
    )
    load.add_argument(
        "--seed", type=int, default=0,
        help="request-stream seed; the same seed replays byte-identical "
        "traffic (default 0)",
    )
    load.add_argument(
        "--n", type=int, default=120, help="array size per request (default 120)"
    )
    load.add_argument(
        "--procs", type=int, default=4,
        help="processors per request (default 4)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="prove the repo's invariants statically (rules RL001-RL006)",
    )
    from .analysis.cli import add_lint_arguments

    add_lint_arguments(lint_p)

    return parser


class FaultSpecError(SystemExit):
    """Friendly one-line exit for a bad ``--faults`` argument."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}")
        super().__init__(2)


class BackendError(SystemExit):
    """Friendly one-line exit for a bad ``--backend`` argument."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}")
        super().__init__(2)


def _resolve_backend(args):
    """Validate ``--backend`` against the kernel registry or return None.

    Mirrors the ``--faults`` convention: a typo'd backend name exits with
    one friendly line (listing the real choices) instead of a traceback.
    """
    name = getattr(args, "backend", None)
    if name is None:
        return None
    from .kernels import get_backend

    try:
        get_backend(name)
    except ValueError as exc:
        raise BackendError(str(exc))
    return name


class ExecutorError(SystemExit):
    """Friendly one-line exit for a bad ``--executor`` argument."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}")
        super().__init__(2)


def _resolve_executor(args):
    """Validate ``--executor`` against the executor registry or return None."""
    name = getattr(args, "executor", None)
    if name is None:
        return None
    from .exec import get_executor

    try:
        get_executor(name)
    except ValueError as exc:
        raise ExecutorError(str(exc))
    return name


def _load_fault_spec(args):
    """Parse ``--faults`` (a JSON FaultSpec path) or return None.

    Malformed JSON, unknown spec keys and out-of-range values all exit
    with a single friendly line instead of a traceback — the file is user
    input, not programmer input.
    """
    if getattr(args, "faults", None) is None:
        return None
    import json

    from .faults import FaultSpec

    try:
        return FaultSpec.from_file(args.faults)
    except FileNotFoundError:
        raise FaultSpecError(f"fault spec {args.faults!r} does not exist")
    except IsADirectoryError:
        raise FaultSpecError(f"fault spec {args.faults!r} is a directory")
    except json.JSONDecodeError as exc:
        raise FaultSpecError(
            f"fault spec {args.faults!r} is not valid JSON "
            f"(line {exc.lineno}, column {exc.colno}: {exc.msg})"
        )
    except (TypeError, ValueError) as exc:
        raise FaultSpecError(f"fault spec {args.faults!r} is invalid: {exc}")


class SuperviseSpecError(SystemExit):
    """Friendly one-line exit for a bad ``--supervise`` argument."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}")
        super().__init__(2)


def _load_supervise_spec(args, executor):
    """Parse ``--supervise`` (a JSON SuperviseSpec path) or return None.

    Mirrors ``--faults``: malformed JSON, unknown keys and out-of-range
    values exit with one friendly line.  Supervision only means anything
    on the process executor, so a spec without ``--executor process``
    (or ``REPRO_EXECUTOR=process``) is rejected rather than silently
    ignored.
    """
    if getattr(args, "supervise", None) is None:
        return None
    import json

    from .exec import SuperviseSpec, current_executor_name

    effective = executor if executor is not None else current_executor_name()
    if effective != "process":
        raise SuperviseSpecError(
            "--supervise needs the process executor (pass --executor "
            f"process or set REPRO_EXECUTOR=process; current: {effective})"
        )
    try:
        return SuperviseSpec.from_file(args.supervise)
    except FileNotFoundError:
        raise SuperviseSpecError(f"supervise spec {args.supervise!r} does not exist")
    except IsADirectoryError:
        raise SuperviseSpecError(f"supervise spec {args.supervise!r} is a directory")
    except json.JSONDecodeError as exc:
        raise SuperviseSpecError(
            f"supervise spec {args.supervise!r} is not valid JSON "
            f"(line {exc.lineno}, column {exc.colno}: {exc.msg})"
        )
    except (TypeError, ValueError) as exc:
        raise SuperviseSpecError(f"supervise spec {args.supervise!r} is invalid: {exc}")


def _print_fault_summary(result) -> None:
    """Surface retries/drops/corruptions per phase for one scheme run."""
    print(f"    {result.fault_line()}")
    if result.fault_summary:
        for phase, bucket in result.fault_summary.items():
            counters = " ".join(f"{k}={v}" for k, v in bucket.items())
            print(f"      {phase}: {counters}")


def _cmd_run(args) -> int:
    from .core import get_compression, get_scheme
    from .exec import WorkerCrashError
    from .machine import Machine, render_timeline
    from .runtime import run_scheme, verify_all_schemes_agree
    from .sparse import random_sparse

    fault_spec = _load_fault_spec(args)
    backend = _resolve_backend(args)
    executor = _resolve_executor(args)
    supervise_spec = _load_supervise_spec(args, executor)
    recovery = None if args.recovery == "off" else args.recovery
    if recovery is not None and fault_spec is None:
        print("error: --recovery needs a fault plan (--faults SPEC.json)")
        return 2
    observe = any((args.trace_out, args.metrics_out, args.log_out))
    matrix = random_sparse((args.n, args.n), args.sparse_ratio, seed=args.seed)
    schemes = ["sfc", "cfs", "ed"] if args.scheme == "all" else [args.scheme]
    print(
        f"array {args.n}x{args.n}, s={args.sparse_ratio}, p={args.procs}, "
        f"{args.partition} partition, {args.compression.upper()} compression"
    )
    if fault_spec is not None:
        print(
            f"fault injection on (seed {args.fault_seed}): "
            f"drop={fault_spec.drop} dup={fault_spec.duplicate} "
            f"reorder={fault_spec.reorder} corrupt={fault_spec.corrupt}"
        )
    results = []
    last_machine = None
    last_obs = None
    for scheme in schemes:
        obs = None
        if observe:
            from .obs import Observability

            # one recorder per scheme run (the verification contract
            # compares against exactly one machine's trace)
            obs = Observability(
                scheme=scheme, n=args.n, sparse_ratio=args.sparse_ratio,
                partition=args.partition, compression=args.compression,
                seed=args.seed,
            )
            last_obs = obs
        try:
            if args.timeline:
                from .core.registry import get_partition
                from .exec import use_supervision
                from .faults import FaultInjector

                plan = get_partition(args.partition).plan(matrix.shape, args.procs)
                injector = (
                    FaultInjector(fault_spec, seed=args.fault_seed)
                    if fault_spec is not None
                    else None
                )
                last_machine = Machine(
                    args.procs, faults=injector, backend=backend,
                    executor=executor, obs=obs,
                )
                try:
                    with use_supervision(supervise_spec):
                        if recovery is not None:
                            from .recovery import run_with_recovery

                            result = run_with_recovery(
                                scheme, last_machine, matrix,
                                get_partition(args.partition),
                                get_compression(args.compression),
                                policy=recovery,
                            )
                        else:
                            result = get_scheme(scheme).run(
                                last_machine, matrix, plan,
                                get_compression(args.compression),
                            )
                finally:
                    # the trace survives for --timeline; only workers die
                    last_machine.shutdown()
            else:
                result = run_scheme(
                    scheme,
                    matrix,
                    partition=args.partition,
                    n_procs=args.procs,
                    compression=args.compression,
                    faults=fault_spec,
                    fault_seed=args.fault_seed,
                    recovery=recovery,
                    backend=backend,
                    executor=executor,
                    obs=obs,
                    supervise=supervise_spec,
                )
        except WorkerCrashError as exc:
            # degrade=false and the restart budget ran out: one friendly
            # line (which rank, which task) instead of a traceback
            print(f"error: {exc}")
            return 2
        results.append(result)
        print(f"  {result.summary()}")
        if fault_spec is not None:
            _print_fault_summary(result)
        if result.recovery_summary is not None:
            print(f"    {result.recovery_line()}")
        if result.supervisor_summary is not None and not result.supervisor_summary.clean:
            print(f"    {result.supervisor_line()}")
    if len(results) > 1:
        verify_all_schemes_agree(results)
        print("  all schemes delivered identical local arrays (verified)")
    if args.timeline and last_machine is not None:
        print()
        print(render_timeline(last_machine.trace))
    if last_obs is not None:
        from .obs import write_chrome_trace, write_jsonl, write_prometheus

        if args.trace_out:
            write_chrome_trace(last_obs, args.trace_out)
            print(f"wrote Chrome trace to {args.trace_out} (open in ui.perfetto.dev)")
        if args.metrics_out:
            write_prometheus(last_obs, args.metrics_out)
            print(f"wrote Prometheus metrics to {args.metrics_out}")
        if args.log_out:
            write_jsonl(last_obs, args.log_out)
            print(f"wrote run log to {args.log_out} (repro inspect {args.log_out})")
    return 0


def _cmd_inspect(args) -> int:
    from .obs import inspect_run_log

    try:
        print(inspect_run_log(args.log, top=args.top))
    except FileNotFoundError:
        print(f"error: run log {args.log!r} does not exist")
        return 2
    except IsADirectoryError:
        print(f"error: run log {args.log!r} is a directory")
        return 2
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    return 0


def _cmd_tables(args) -> int:
    from .exec import use_supervision
    from .runtime import TABLE_SPECS, format_table, reproduce_table, shape_report

    fault_spec = _load_fault_spec(args)
    backend = _resolve_backend(args)
    executor = _resolve_executor(args)
    supervise_spec = _load_supervise_spec(args, executor)
    names = ["table3", "table4", "table5"] if args.table == "all" else [args.table]
    for name in names:
        spec = TABLE_SPECS[name]
        sizes = [n for n in spec.sizes if n <= 800] if args.quick else None
        procs = spec.proc_counts[:2] if args.quick else None
        with use_supervision(supervise_spec):
            repro = reproduce_table(
                name,
                sizes=sizes,
                proc_counts=procs,
                faults=fault_spec,
                fault_seed=args.fault_seed,
                backend=backend,
                executor=executor,
            )
        print(format_table(repro))
        print(f"   shape report: {shape_report(repro)}")
        if fault_spec is not None:
            totals = repro.fault_totals()
            print(f"   fault totals (seed {args.fault_seed}):")
            for phase, bucket in totals.items():
                counters = " ".join(f"{k}={v}" for k, v in bucket.items())
                print(f"     {phase}: {counters}")
        print()
    return 0


def _cmd_figures(args) -> int:
    import runpy
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "paper_figures.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    # installed without the examples tree: inline minimal rendering
    from .data import sparse_array_A
    from .partition import RowPartition
    from .sparse import CRSMatrix

    A = sparse_array_A()
    print("Figure 1 — sparse array A (10x8, 16 nonzeros)")
    plan = RowPartition().plan(A.shape, 4)
    for a, loc in zip(plan, plan.extract_all(A)):
        c = CRSMatrix.from_coo(loc)
        print(f"  P{a.rank}: RO={c.RO.tolist()} CO={c.CO.tolist()} VL={c.VL.tolist()}")
    return 0


def _cmd_crossover(args) -> int:
    from .machine import ratio_cost_model
    from .model import (
        ProblemSpec,
        data_op_ratio_crossover,
        remark5_thresholds,
        sparse_ratio_crossover,
    )

    spec = ProblemSpec(
        n=args.n, p=args.procs, s=args.sparse_ratio, cost=ratio_cost_model(1.0)
    )
    ed_thr, cfs_thr = remark5_thresholds(spec, args.partition)
    print(
        f"Remark 5 asymptotic thresholds ({args.partition}, s={args.sparse_ratio}):"
    )
    print(f"  ED  beats SFC overall when T_Data/T_Op > {ed_thr:.4f}")
    print(f"  CFS beats SFC overall when T_Data/T_Op > {cfs_thr:.4f}")
    for scheme in ("ed", "cfs"):
        star = data_op_ratio_crossover(
            spec, scheme, "sfc", partition=args.partition
        )
        print(
            f"  exact finite-size crossover for {scheme.upper()}: "
            + (f"{star:.4f}" if star else "none in range")
        )
    from .machine import sp2_cost_model

    s_star = sparse_ratio_crossover(
        spec.with_cost(sp2_cost_model()), "ed", "sfc", partition=args.partition
    )
    print(
        "  sparse-ratio crossover at the SP2 ratio (1.2): "
        + (f"s* = {s_star:.4f}" if s_star else "none in range")
    )
    return 0


class SweepManifestError(SystemExit):
    """Friendly one-line exit for a bad sweep manifest/store/argument."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}")
        super().__init__(2)


def _cmd_sweep_manifest(args) -> int:
    """Manifest mode: run (or resume) the grid into a JSONL result store."""
    from pathlib import Path

    from .sweep import Manifest, ManifestError, StoreError, SweepError, run_sweep

    executor = _resolve_executor(args)
    if args.jobs < 1:
        raise SweepManifestError(f"--jobs must be >= 1, got {args.jobs}")
    try:
        manifest = Manifest.from_file(args.parameter)
    except ManifestError as exc:
        raise SweepManifestError(str(exc))
    store_path = (
        Path(args.store)
        if args.store is not None
        else Path(args.parameter).with_suffix(".results.jsonl")
    )
    try:
        report = run_sweep(
            manifest,
            store_path,
            resume=args.resume,
            jobs=args.jobs,
            executor=executor,
            echo=print,
        )
    except (ManifestError, StoreError) as exc:
        raise SweepManifestError(str(exc))
    except SweepError as exc:
        print(f"error: {exc}")
        return 1
    print(
        f"sweep {manifest.name!r}: {report.executed} cell(s) run, "
        f"{report.skipped} resumed, {report.total} total -> {report.store_path}"
    )
    return 0


def _cmd_sweep(args) -> int:
    if args.parameter not in ("s", "ratio", "p", "n"):
        return _cmd_sweep_manifest(args)
    if args.start is None or args.stop is None:
        raise SweepManifestError(
            f"knob sweeps over {args.parameter!r} need --start and --stop"
        )
    import numpy as np

    from .machine import sp2_cost_model
    from .model import ProblemSpec, sweep
    from .runtime import ascii_chart

    spec = ProblemSpec(
        n=args.n, p=args.procs, s=args.sparse_ratio, cost=sp2_cost_model()
    )
    values = np.linspace(args.start, args.stop, args.points)
    result = sweep(
        spec,
        args.parameter,
        values,
        partition=args.partition,
        compression=args.compression,
        metric=args.metric,
        simulate=args.simulate,
    )
    print(ascii_chart(result))
    crossings = result.crossover_indices()
    if crossings:
        points = ", ".join(f"{result.series[0].x[i]:.4g}" for i in crossings)
        print(f"winner changes near {args.parameter} = {points}")
    else:
        print(f"{result.winner_at(0).upper()} wins across the whole range")
    return 0


def _cmd_analyze(args) -> int:
    from .model import ProblemSpec, amortization, memory_footprint
    from .sparse import random_sparse, suggest_format, score_formats

    spec = ProblemSpec(n=args.n, p=args.procs, s=args.sparse_ratio)
    print(f"workload: {args.n}x{args.n}, s={args.sparse_ratio}, p={args.procs}\n")

    print("peak memory (array elements):")
    for scheme in ("sfc", "cfs", "ed"):
        m = memory_footprint(spec, scheme)
        print(
            f"  {scheme.upper():>3}: receiver {m.proc_peak:>12.0f} "
            f"(transient {m.proc_overhead:.0f})   host extra {m.host_peak:>12.0f}"
        )

    rep = amortization(spec)
    print("\namortisation (row partition, CRS):")
    for scheme in ("sfc", "cfs", "ed"):
        print(f"  {scheme.upper():>3} setup: {rep.setup[scheme]:10.3f} ms")
    print(f"  per-SpMV iteration: {rep.iteration:.3f} ms")
    print(
        f"  schemes within 5% of each other after "
        f"{rep.iterations_to_5_percent} iterations"
    )

    matrix = random_sparse((args.n, args.n), args.sparse_ratio, seed=args.seed)
    print(f"\nstorage-format advice for this workload: "
          f"{suggest_format(matrix).upper()}")
    for s in score_formats(matrix):
        print(f"  {s.format:>4}: {s.overhead:6.2f} stored elements per nonzero")
    return 0


def _cmd_collection(args) -> int:
    from .sparse import SyntheticCollection, ratio_statistics

    col = SyntheticCollection(args.count, seed=args.seed)
    stats = ratio_statistics(col.entries())
    print(f"synthetic Harwell-Boeing-style collection ({args.count} matrices):")
    for key, value in stats.items():
        print(f"  {key}: {value:.4f}" if isinstance(value, float) else f"  {key}: {value}")
    print(
        "  (the paper's Remark 2 premise: >80% of applications have s < 0.1)"
    )
    return 0


def _cmd_report(args) -> int:
    from .runtime.report import main as report_main

    argv = ["report", args.path]
    if args.store is not None:
        argv += ["--store", args.store]
    return report_main(argv)


class ServiceArgError(SystemExit):
    """Friendly one-line exit for a bad serve/load argument."""

    def __init__(self, message: str) -> None:
        print(f"error: {message}")
        super().__init__(2)


def _service_endpoint(args):
    """``(socket_path, host, port)`` from --socket/--host/--port.

    ``--socket`` and ``--port`` are exclusive; with neither, the TCP
    default port 7027 is used so `repro serve` and `repro load` pair up
    out of the box.
    """
    if args.socket is not None and args.port is not None:
        raise ServiceArgError("--socket and --port are exclusive; pick one")
    if args.socket is not None:
        return args.socket, None, None
    port = args.port if args.port is not None else 7027
    if not 0 <= port <= 65535:
        raise ServiceArgError(f"--port must be in [0, 65535], got {port}")
    return None, args.host, port


def _cmd_serve(args) -> int:
    import asyncio

    from .service import RunService

    backend = _resolve_backend(args)
    executor = _resolve_executor(args)
    socket_path, host, port = _service_endpoint(args)
    for name, floor in (("workers", 1), ("queue_size", 1), ("max_sessions", 1)):
        value = getattr(args, name)
        if value < floor:
            raise ServiceArgError(
                f"--{name.replace('_', '-')} must be >= {floor}, got {value}"
            )

    async def _serve() -> None:
        service = RunService(
            host=host or "127.0.0.1",
            port=port,
            socket_path=socket_path,
            workers=args.workers,
            queue_size=args.queue_size,
            max_sessions=args.max_sessions,
            backend=backend,
            executor=executor,
        )
        await service.start()
        kind = "unix socket" if socket_path is not None else "tcp"
        print(
            f"repro service listening on {kind} {service.address} "
            f"(workers={args.workers} queue={args.queue_size} "
            f"sessions<={args.max_sessions}); GET /metrics for Prometheus, "
            "ctrl-c to stop",
            flush=True,
        )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()
            print("repro service stopped", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_load(args) -> int:
    from .service import run_load

    socket_path, host, port = _service_endpoint(args)
    if args.rps <= 0:
        raise ServiceArgError(f"--rps must be > 0, got {args.rps}")
    if args.duration <= 0:
        raise ServiceArgError(f"--duration must be > 0, got {args.duration}")
    if args.n < 1 or args.procs < 1:
        raise ServiceArgError("--n and --procs must be >= 1")
    try:
        report = run_load(
            rps=args.rps,
            duration_s=args.duration,
            seed=args.seed,
            host=host or "127.0.0.1",
            port=port,
            socket_path=socket_path,
            n=args.n,
            n_procs=args.procs,
        )
    except (ConnectionError, OSError) as exc:
        where = socket_path if socket_path is not None else f"{host}:{port}"
        raise ServiceArgError(f"cannot reach a service at {where}: {exc}")
    print(report.line())
    if report.dropped or report.errors:
        print(
            f"error: {report.dropped} response(s) dropped, "
            f"{report.errors} failed"
        )
        return 1
    return 0


def _cmd_lint(args) -> int:
    from .analysis.cli import cmd_lint

    return cmd_lint(args)


_COMMANDS = {
    "run": _cmd_run,
    "tables": _cmd_tables,
    "figures": _cmd_figures,
    "crossover": _cmd_crossover,
    "sweep": _cmd_sweep,
    "analyze": _cmd_analyze,
    "collection": _cmd_collection,
    "report": _cmd_report,
    "inspect": _cmd_inspect,
    "serve": _cmd_serve,
    "load": _cmd_load,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
