"""Per-phase fault counters — what the injector did to a run.

Kept deliberately free of machine imports (phases are passed in as enum
members or strings and stored by their ``value``), so the stats layer can
be consumed by reports without pulling in the simulator.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["FaultStats", "COUNTER_KEYS"]

#: every counter a run can accumulate, in reporting order
COUNTER_KEYS = (
    "attempts",      # send attempts that went onto the wire (incl. resends)
    "retries",       # failed attempts that triggered a backoff + resend
    "drops",         # frames lost on the wire
    "corruptions",   # frames delivered corrupted and caught by checksum
    "crash_drops",   # frames rejected by a transiently-crashed processor
    "duplicates",    # duplicate deliveries discarded by sequence number
    "reorders",      # deliveries that arrived out of order
    "forced",        # deliveries forced after max_retries (escalation)
    "failstop_drops",  # frames sent to a permanently dead rank (no ack ever)
    "detections",    # rank deaths declared after detect_after missed acks
    "heartbeats",    # explicit heartbeat probes sent by the host
)


def _phase_key(phase: Any) -> str:
    return getattr(phase, "value", str(phase))


class FaultStats:
    """Mutable per-phase counters, keyed ``phase value -> counter name``."""

    def __init__(self) -> None:
        self.by_phase: dict[str, dict[str, int]] = {}

    def count(self, phase: Any, what: str, n: int = 1) -> None:
        if what not in COUNTER_KEYS:
            raise KeyError(f"unknown fault counter {what!r}; known: {COUNTER_KEYS}")
        bucket = self.by_phase.setdefault(_phase_key(phase), dict.fromkeys(COUNTER_KEYS, 0))
        bucket[what] += n

    def get(self, phase: Any, what: str) -> int:
        return self.by_phase.get(_phase_key(phase), {}).get(what, 0)

    def total(self, what: str) -> int:
        """One counter summed over all phases."""
        return sum(bucket.get(what, 0) for bucket in self.by_phase.values())

    @property
    def retries(self) -> int:
        return self.total("retries")

    @property
    def drops(self) -> int:
        return self.total("drops")

    @property
    def corruptions(self) -> int:
        return self.total("corruptions")

    @property
    def duplicates(self) -> int:
        return self.total("duplicates")

    def summary(self) -> dict[str, dict[str, int]]:
        """A JSON-compatible snapshot (phases with no activity omitted)."""
        return {
            phase: {k: v for k, v in bucket.items() if v}
            for phase, bucket in sorted(self.by_phase.items())
            if any(bucket.values())
        }

    @staticmethod
    def merge(summaries: list[Mapping[str, Mapping[str, int]]]) -> dict[str, dict[str, int]]:
        """Combine several :meth:`summary` snapshots (e.g. across a table grid).

        The output order is pinned — phases sorted, counters in
        :data:`COUNTER_KEYS` reporting order — rather than inherited from
        whichever summary mentioned a phase first, so merged reports
        serialise identically however the inputs were collected (a table
        grid iterated in a different order, or per-rank summaries merged
        back from worker processes).
        """
        out: dict[str, dict[str, int]] = {}
        for s in summaries:
            for phase, bucket in s.items():
                dst = out.setdefault(phase, {})
                for k, v in bucket.items():
                    dst[k] = dst.get(k, 0) + v

        def bucket_order(bucket: dict[str, int]) -> dict[str, int]:
            known = [k for k in COUNTER_KEYS if k in bucket]
            extras = sorted(set(bucket) - set(known))
            return {k: bucket[k] for k in (*known, *extras)}

        return {phase: bucket_order(out[phase]) for phase in sorted(out)}

    def clear(self) -> None:
        self.by_phase.clear()

    def __repr__(self) -> str:
        return f"FaultStats({self.summary()})"
