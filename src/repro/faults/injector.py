"""The deterministic fault engine.

A :class:`FaultInjector` owns a seeded ``numpy`` generator and turns a
:class:`~repro.faults.spec.FaultSpec` into concrete decisions, one draw
per question in a fixed order — so a given ``(spec, seed)`` pair replays
the *exact* same fault sequence on the exact same run, which the
determinism tests pin (same seed ⇒ identical trace and identical charged
costs).

The injector is transport-agnostic: it never touches payloads or the
trace itself.  :class:`~repro.machine.machine.Machine` asks it questions
(:meth:`attempt_outcome`, :meth:`should_duplicate`,
:meth:`reorder_insert`, :meth:`slowdown_factor`) and does the actual
charging, corruption, delivery and retrying.

Per-processor state (slowdown factors, transient-crash budgets) is
sampled *up front* in :meth:`bind`, in rank order, so those draws do not
depend on the traffic pattern.
"""

from __future__ import annotations

import enum

import numpy as np

from .spec import FaultSpec
from .stats import FaultStats

__all__ = ["Attempt", "FaultInjector"]

#: rank the injector uses for "the host" in crash/slowdown tables — the
#: host never crashes in this model (it owns the global array), but the
#: constant keeps dict keys honest if that ever changes.
_HOST = -1


class Attempt(enum.Enum):
    """Outcome of one send attempt, as decided by the injector."""

    DELIVER = "deliver"    # frame arrives intact
    DROP = "drop"          # frame lost on the wire
    CORRUPT = "corrupt"    # frame arrives bit-flipped (checksum catches it)
    CRASH = "crash"        # destination transiently down; counts as a loss


class FaultInjector:
    """Seedable, deterministic source of fault decisions.

    Parameters
    ----------
    spec:
        The fault plan.
    seed:
        Seed for the injector's private generator; the whole fault
        sequence is a pure function of ``(spec, seed, machine run)``.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)
        self.stats = FaultStats()
        self.rng = np.random.default_rng(self.seed)
        self._next_seq = 0
        self._slow_factor: dict[int, float] = {}
        self._crash_budget: dict[int, int] = {}
        self._bound_procs: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, n_procs: int) -> None:
        """Sample per-processor state for a machine of ``n_procs`` ranks.

        Called by the machine at attach time.  Draws happen in rank order
        (slowdowns first, then crash budgets) so per-processor fates are
        independent of later traffic.
        """
        self._bound_procs = n_procs
        self._slow_factor = {}
        self._crash_budget = {}
        sd, cr = self.spec.slowdown, self.spec.crash
        for rank in range(n_procs):
            slowed = sd.probability > 0 and self.rng.random() < sd.probability
            self._slow_factor[rank] = sd.factor if slowed else 1.0
        for rank in range(n_procs):
            crashed = cr.probability > 0 and self.rng.random() < cr.probability
            self._crash_budget[rank] = (
                int(self.rng.integers(1, cr.max_failed_sends + 1)) if crashed else 0
            )

    def reset(self) -> None:
        """Restore the injector to its just-constructed state (same seed)."""
        self.stats.clear()
        self.rng = np.random.default_rng(self.seed)
        self._next_seq = 0
        if self._bound_procs is not None:
            self.bind(self._bound_procs)

    # ------------------------------------------------------------------
    # per-message decisions (called by the machine, in traffic order)
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """A fresh message sequence number (duplicate detection)."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def attempt_outcome(self, dst: int, *, corruptible: bool) -> Attempt:
        """Fate of one send attempt towards ``dst``.

        A transiently-crashed destination rejects the attempt outright
        (consuming one unit of its crash budget); otherwise one uniform
        draw picks drop / corrupt / deliver.  ``corruptible`` is False for
        empty wire buffers (no bits to flip) — the corruption band then
        collapses into a successful delivery.
        """
        if self._crash_budget.get(dst, 0) > 0:
            self._crash_budget[dst] -= 1
            return Attempt.CRASH
        u = self.rng.random()
        if u < self.spec.drop:
            return Attempt.DROP
        if u < self.spec.drop + self.spec.corrupt and corruptible:
            return Attempt.CORRUPT
        return Attempt.DELIVER

    def should_duplicate(self) -> bool:
        """Whether the network duplicates a just-delivered frame."""
        return self.spec.duplicate > 0 and self.rng.random() < self.spec.duplicate

    def reorder_insert(self, mailbox_len: int) -> int | None:
        """Out-of-order arrival position, or ``None`` for in-order append.

        With probability ``reorder`` the frame overtakes traffic already
        queued at the destination: it is inserted at a uniformly-drawn
        position *before* the end of the mailbox.  An empty mailbox has
        nothing to overtake, so arrival stays in order (no draw is made —
        the decision would be unobservable).
        """
        if self.spec.reorder <= 0 or mailbox_len == 0:
            return None
        if self.rng.random() < self.spec.reorder:
            return int(self.rng.integers(0, mailbox_len))
        return None

    def slowdown_factor(self, rank: int) -> float:
        """This rank's constant op-time multiplier (1.0 = nominal)."""
        return self._slow_factor.get(rank, 1.0)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, spec={self.spec!r}, "
            f"stats={self.stats.summary()})"
        )
