"""The deterministic fault engine.

A :class:`FaultInjector` owns a seeded ``numpy`` generator and turns a
:class:`~repro.faults.spec.FaultSpec` into concrete decisions, one draw
per question in a fixed order — so a given ``(spec, seed)`` pair replays
the *exact* same fault sequence on the exact same run, which the
determinism tests pin (same seed ⇒ identical trace and identical charged
costs).

The injector is transport-agnostic: it never touches payloads or the
trace itself.  :class:`~repro.machine.machine.Machine` asks it questions
(:meth:`attempt_outcome`, :meth:`should_duplicate`,
:meth:`reorder_insert`, :meth:`slowdown_factor`) and does the actual
charging, corruption, delivery and retrying.

Per-processor state (slowdown factors, transient-crash budgets) is
sampled *up front* in :meth:`bind`, in rank order, so those draws do not
depend on the traffic pattern.
"""

from __future__ import annotations

import enum

import numpy as np

from .spec import FaultSpec
from .stats import FaultStats

__all__ = ["Attempt", "FaultInjector"]

#: rank the injector uses for "the host" in crash/slowdown tables — the
#: host never crashes in this model (it owns the global array), but the
#: constant keeps dict keys honest if that ever changes.
_HOST = -1


class Attempt(enum.Enum):
    """Outcome of one send attempt, as decided by the injector."""

    DELIVER = "deliver"    # frame arrives intact
    DROP = "drop"          # frame lost on the wire
    CORRUPT = "corrupt"    # frame arrives bit-flipped (checksum catches it)
    CRASH = "crash"        # destination transiently down; counts as a loss
    FAILSTOP = "fail-stop" # destination permanently dead; never acks again


class FaultInjector:
    """Seedable, deterministic source of fault decisions.

    Parameters
    ----------
    spec:
        The fault plan.
    seed:
        Seed for the injector's private generator; the whole fault
        sequence is a pure function of ``(spec, seed, machine run)``.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)
        self.stats = FaultStats()
        self.rng = np.random.default_rng(self.seed)
        self._next_seq = 0
        self._slow_factor: dict[int, float] = {}
        self._crash_budget: dict[int, int] = {}
        #: fail-stop state: doomed rank -> frames it accepts before dying
        self._fail_after: dict[int, int] = {}
        #: frames accepted so far by each doomed rank
        self._accepted: dict[int, int] = {}
        self._bound_procs: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, n_procs: int) -> None:
        """Sample per-processor state for a machine of ``n_procs`` ranks.

        Called by the machine at attach time.  Draws happen in rank order
        (slowdowns first, then crash budgets) so per-processor fates are
        independent of later traffic.
        """
        self._bound_procs = n_procs
        self._slow_factor = {}
        self._crash_budget = {}
        sd, cr = self.spec.slowdown, self.spec.crash
        for rank in range(n_procs):
            slowed = sd.probability > 0 and self.rng.random() < sd.probability
            self._slow_factor[rank] = sd.factor if slowed else 1.0
        for rank in range(n_procs):
            crashed = cr.probability > 0 and self.rng.random() < cr.probability
            self._crash_budget[rank] = (
                int(self.rng.integers(1, cr.max_failed_sends + 1)) if crashed else 0
            )
        # fail-stop fates, in rank order after the transient draws.  The
        # explicit kill list is honoured first (no draw needed), then each
        # remaining rank rolls against the probability.  At least one rank
        # is always spared: a machine that loses every processor has no
        # surviving membership to recover onto (and a p=1 machine cannot
        # lose its only rank at all).
        fs = self.spec.fail_stop
        self._fail_after = {}
        self._accepted = {}
        doomed = {r for r in fs.dead_ranks if 0 <= r < n_procs}
        if fs.probability > 0:
            for rank in range(n_procs):
                if rank not in doomed and self.rng.random() < fs.probability:
                    doomed.add(rank)
        while doomed and len(doomed) >= n_procs:
            doomed.discard(max(doomed))  # deterministically spare the top rank
        for rank in sorted(doomed):
            self._fail_after[rank] = fs.after_accepts
            self._accepted[rank] = 0

    def reset(self) -> None:
        """Restore the injector to its just-constructed state (same seed)."""
        self.stats.clear()
        self.rng = np.random.default_rng(self.seed)
        self._next_seq = 0
        if self._bound_procs is not None:
            self.bind(self._bound_procs)

    # ------------------------------------------------------------------
    # per-message decisions (called by the machine, in traffic order)
    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        """A fresh message sequence number (duplicate detection)."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def attempt_outcome(self, dst: int, *, corruptible: bool) -> Attempt:
        """Fate of one send attempt towards ``dst``.

        A transiently-crashed destination rejects the attempt outright
        (consuming one unit of its crash budget); otherwise one uniform
        draw picks drop / corrupt / deliver.  ``corruptible`` is False for
        empty wire buffers (no bits to flip) — the corruption band then
        collapses into a successful delivery.
        """
        if self._crash_budget.get(dst, 0) > 0:
            self._crash_budget[dst] -= 1
            return Attempt.CRASH
        u = self.rng.random()
        if u < self.spec.drop:
            return Attempt.DROP
        if u < self.spec.drop + self.spec.corrupt and corruptible:
            return Attempt.CORRUPT
        return Attempt.DELIVER

    def should_duplicate(self) -> bool:
        """Whether the network duplicates a just-delivered frame."""
        return self.spec.duplicate > 0 and self.rng.random() < self.spec.duplicate

    def reorder_insert(self, mailbox_len: int) -> int | None:
        """Out-of-order arrival position, or ``None`` for in-order append.

        With probability ``reorder`` the frame overtakes traffic already
        queued at the destination: it is inserted at a uniformly-drawn
        position *before* the end of the mailbox.  An empty mailbox has
        nothing to overtake, so arrival stays in order (no draw is made —
        the decision would be unobservable).
        """
        if self.spec.reorder <= 0 or mailbox_len == 0:
            return None
        if self.rng.random() < self.spec.reorder:
            return int(self.rng.integers(0, mailbox_len))
        return None

    def slowdown_factor(self, rank: int) -> float:
        """This rank's constant op-time multiplier (1.0 = nominal)."""
        return self._slow_factor.get(rank, 1.0)

    # ------------------------------------------------------------------
    # fail-stop (permanent death) state
    # ------------------------------------------------------------------
    @property
    def doomed_ranks(self) -> tuple[int, ...]:
        """Ranks fated to die this run (whether or not they have yet)."""
        return tuple(sorted(self._fail_after))

    def rank_failed(self, rank: int) -> bool:
        """True once ``rank`` is permanently dead (fail-stop fired).

        A doomed rank dies the moment it has accepted its
        ``after_accepts``-th frame (0 = dead from the start).  Death is
        a *physical* fact; whether the host has paid to detect it is the
        :class:`~repro.machine.membership.Membership` layer's business.
        """
        fa = self._fail_after.get(rank)
        return fa is not None and self._accepted.get(rank, 0) >= fa

    def record_accept(self, rank: int) -> None:
        """Count one successfully accepted frame at a doomed rank."""
        if rank in self._fail_after:
            self._accepted[rank] = self._accepted.get(rank, 0) + 1

    def kill_rank(self, rank: int) -> None:
        """Force ``rank`` permanently dead right now (test / scenario hook).

        Used to script post-distribution failures deterministically; the
        rank behaves exactly like a doomed rank whose budget just ran out.
        ``reset()`` forgets scripted kills (they are not part of the
        seeded plan).
        """
        self._fail_after[rank] = 0
        self._accepted[rank] = 0

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, spec={self.spec!r}, "
            f"stats={self.stats.summary()})"
        )
