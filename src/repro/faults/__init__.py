"""Fault injection and reliable delivery for the simulated multicomputer.

The paper's Section 4 cost model assumes every host→processor message
arrives intact and in order.  Real distributed-memory machines (and the
modern fleets the ROADMAP points at) do not get that for free: links drop
and corrupt frames, NICs duplicate them, switches reorder them, nodes
stall or crash transiently.  This package adds that reliability dimension
to the simulator without perturbing the fault-free reproduction:

* :class:`FaultSpec` — a declarative, JSON-loadable description of a fault
  plan (per-message drop/duplicate/reorder/corrupt probabilities, per-
  processor slowdown and transient-crash behaviour, and the retry policy);
* :class:`FaultInjector` — a deterministic, seedable engine that turns the
  spec into per-send-attempt outcomes and keeps per-phase fault counters;
* :mod:`~repro.faults.checksum` — CRC-32 wire checksums over every wire
  buffer (CFS packed ``RO/CO/VL``, the ED special buffer ``B``, SFC dense
  blocks), plus the deterministic bit-flip used to model corruption;
* a reliable-delivery protocol implemented by
  :class:`~repro.machine.machine.Machine`: every send attempt (original or
  resend) is charged the full ``T_Startup + m·T_Data·hops`` through the
  existing :class:`~repro.machine.cost_model.CostModel`, failed attempts
  additionally charge an exponential-backoff timeout, and the trace gains
  ``RETRY``/``FAULT`` event kinds so the retry tax is visible per phase.

With no injector attached (``Machine(..., faults=None)``, the default) the
machine takes the exact pre-existing code path: the trace and every
charged cost are byte-identical to the fault-free simulator, which the
golden-trace tests pin.

See DESIGN.md §"Fault model" for the taxonomy and accounting contract.
"""

from .checksum import (
    CorruptFrameError,
    corrupt_payload,
    payload_checksum,
    payload_wire_data,
    wire_checksum,
)
from .injector import Attempt, FaultInjector
from .spec import CrashSpec, FailStopSpec, FaultSpec, RetryPolicy, SlowdownSpec
from .stats import FaultStats

__all__ = [
    "Attempt",
    "CorruptFrameError",
    "CrashSpec",
    "FailStopSpec",
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "RetryPolicy",
    "SlowdownSpec",
    "corrupt_payload",
    "payload_checksum",
    "payload_wire_data",
    "wire_checksum",
]
