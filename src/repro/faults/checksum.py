"""Wire checksums and the corruption model.

Every wire buffer the schemes transmit — a CFS :class:`~repro.machine.
packing.PackedBuffer` (packed ``RO/CO/VL``), an ED :class:`~repro.core.
encoded_buffer.EncodedBuffer` (the special buffer ``B``), or an SFC dense
block (plain ``ndarray``) — reduces to one contiguous ``float64`` array.
The checksum is CRC-32 over those bytes: cheap, deterministic, and any
single bit flip changes it, so the receiver (or the simulated NIC) can
detect the corruption faults :class:`~repro.faults.injector.FaultInjector`
introduces and trigger a retransmission.

Corruption itself is modelled as one deterministic bit flip in one element
of a *copy* of the buffer — the sender's original is never touched, so a
retransmission always carries the intact data (eventual delivery keeps the
final machine state equal to the fault-free run).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any
from zlib import crc32

import numpy as np

__all__ = [
    "CorruptFrameError",
    "wire_checksum",
    "payload_wire_data",
    "payload_checksum",
    "corrupt_payload",
]


class CorruptFrameError(RuntimeError):
    """A received frame failed checksum verification.

    Raised by :meth:`repro.machine.machine.Machine.receive` when a message
    consumed from a mailbox does not match the checksum computed at send
    time.  Under the machine's reliable-delivery protocol corrupt frames
    are NACKed and retransmitted before they reach a mailbox, so seeing
    this means something tampered with a payload *after* delivery — the
    share-nothing discipline was violated.
    """


def wire_checksum(data: np.ndarray) -> int:
    """CRC-32 over the raw bytes of a (flattened, contiguous) array."""
    arr = np.ascontiguousarray(data)
    return crc32(arr.view(np.uint8) if arr.ndim == 1 else arr.tobytes())


def payload_wire_data(payload: Any) -> np.ndarray | None:
    """The flat wire array behind a payload, or ``None`` if there is none.

    Understands the three wire formats: objects exposing a flat ``data``
    array (``PackedBuffer``, ``EncodedBuffer``) and raw numpy arrays (SFC
    dense blocks).  Anything else (e.g. an opaque Python object used by a
    unit test) has no defined wire image.
    """
    data = getattr(payload, "data", None)
    if isinstance(data, np.ndarray):
        return data
    if isinstance(payload, np.ndarray):
        return payload
    return None


def payload_checksum(payload: Any) -> int | None:
    """Checksum of a payload's wire image (``None`` for opaque payloads)."""
    data = payload_wire_data(payload)
    if data is None:
        return None
    return wire_checksum(data)


def corrupt_payload(payload: Any, rng: np.random.Generator) -> Any | None:
    """A copy of ``payload`` with one bit flipped in its wire image.

    Returns ``None`` when the payload has no wire image or the image is
    empty (nothing to corrupt — the injector treats that attempt as
    delivered intact).  The flipped bit position is drawn from ``rng``, so
    corruption is deterministic under a fixed fault seed.
    """
    data = payload_wire_data(payload)
    if data is None or data.size == 0:
        return None
    flat = np.ascontiguousarray(data).reshape(-1).copy()
    byte_view = flat.view(np.uint8)
    pos = int(rng.integers(0, byte_view.size))
    bit = int(rng.integers(0, 8))
    byte_view[pos] ^= np.uint8(1 << bit)
    corrupted = flat.reshape(data.shape)
    if isinstance(payload, np.ndarray):
        return corrupted
    # frozen dataclass wire buffers (PackedBuffer / EncodedBuffer)
    return replace(payload, data=corrupted)
