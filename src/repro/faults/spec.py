"""Declarative fault plans: what can go wrong, how often, and the retry policy.

A :class:`FaultSpec` is pure data — probabilities and policy knobs, no
randomness.  The :class:`~repro.faults.injector.FaultInjector` combines a
spec with a seed to produce a deterministic stream of per-attempt
outcomes.  Specs round-trip through plain dicts/JSON so the CLI can load
them from a file (``repro run --faults spec.json``).

Fault taxonomy (see DESIGN.md §"Fault model"):

==============  =====================================================
``drop``        the frame vanishes on the wire; sender times out, backs
                off and resends
``corrupt``     the frame arrives with a flipped bit; the receiver's
                CRC-32 check fails, it NACKs, the sender resends
``duplicate``   the network delivers the frame twice; the receiver
                discards the second copy by sequence number
``reorder``     the frame overtakes (or is overtaken by) other traffic
                to the same destination; arrival order is permuted but
                tagged receives still find their message
``slowdown``    a processor runs all its element operations a constant
                factor slower for the whole run (thermal throttling,
                noisy neighbour)
``crash``       a processor is unreachable for its first ``k`` incoming
                send attempts (transient crash + reboot); those sends
                are retried like drops
``fail_stop``   a processor dies *permanently* (fail-stop model): it
                accepts its first ``after_accepts`` frames, then never
                acks again.  The host learns of the death only by
                paying for ``detect_after`` missed-ack timeouts, after
                which the membership layer declares the rank dead and
                recovery (src/repro/recovery/) takes over
==============  =====================================================

Eventual delivery is guaranteed by construction for every *transient*
class: per-message failures are capped at ``retry.max_retries`` after
which the attempt succeeds (a real stack would escalate; the simulator's
fault plans are by contract eventually-delivered), and crash budgets are
finite.  ``fail_stop`` is the deliberate exception — sends to a dead rank
are *never* forced through; they surface as a
:class:`~repro.machine.membership.DeadRankError` after the detection
timeouts are charged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = ["RetryPolicy", "SlowdownSpec", "CrashSpec", "FailStopSpec", "FaultSpec"]


def _check_probability(name: str, value: float, *, upper: float = 1.0) -> None:
    if not 0.0 <= value < upper:
        raise ValueError(
            f"{name} must be a probability in [0, {upper}), got {value}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Ack/timeout/resend policy for reliable delivery.

    ``timeout_ms`` is the initial retransmission timeout charged to the
    sender when an attempt fails; attempt ``k``'s timeout is
    ``timeout_ms · backoff^(k-1)`` (exponential backoff).  After
    ``max_retries`` failed attempts the next attempt is forced to succeed,
    guaranteeing eventual delivery.
    """

    timeout_ms: float = 0.04
    backoff: float = 2.0
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.timeout_ms < 0:
            raise ValueError(f"timeout_ms must be >= 0, got {self.timeout_ms}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def backoff_ms(self, attempt: int) -> float:
        """Timeout charged after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.timeout_ms * self.backoff ** (attempt - 1)


@dataclass(frozen=True)
class SlowdownSpec:
    """Per-processor constant slowdown: with ``probability``, a processor
    runs its ops ``factor``× slower for the whole run."""

    probability: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        _check_probability("slowdown.probability", self.probability)
        if self.factor < 1.0:
            raise ValueError(
                f"slowdown.factor must be >= 1 (faults never speed a "
                f"processor up), got {self.factor}"
            )


@dataclass(frozen=True)
class CrashSpec:
    """Transient processor crash: with ``probability``, a processor rejects
    its first 1..``max_failed_sends`` incoming send attempts."""

    probability: float = 0.0
    max_failed_sends: int = 3

    def __post_init__(self) -> None:
        _check_probability("crash.probability", self.probability)
        if self.max_failed_sends < 1:
            raise ValueError(
                f"crash.max_failed_sends must be >= 1, got "
                f"{self.max_failed_sends}"
            )


@dataclass(frozen=True)
class FailStopSpec:
    """Permanent (fail-stop) processor death — distinct from the transient
    :class:`CrashSpec`, whose victims eventually come back.

    Attributes
    ----------
    probability:
        Per-rank chance of being doomed, sampled once at bind time.  The
        injector always spares at least one rank so a run can complete on
        a non-empty surviving membership (and never kills the only rank
        of a ``p = 1`` machine).
    dead_ranks:
        Explicit, deterministic kill list (union'd with the sampled
        victims; out-of-range ranks are ignored at bind time).
    after_accepts:
        How many frames a doomed rank accepts before dying.  ``0`` (the
        default) means dead on arrival — the failure strikes during
        distribution; a larger value lets the rank survive distribution
        and die mid-application, which is the peer-redistribution
        recovery scenario.
    detect_after:
        Missed-ack threshold ``k``: the host only *declares* a rank dead
        after ``k`` consecutive unacknowledged attempts, each charged
        the full message cost plus its backoff timeout — detection is
        never free knowledge.
    """

    probability: float = 0.0
    dead_ranks: tuple[int, ...] = ()
    after_accepts: int = 0
    detect_after: int = 3

    def __post_init__(self) -> None:
        _check_probability("fail_stop.probability", self.probability)
        object.__setattr__(self, "dead_ranks", tuple(int(r) for r in self.dead_ranks))
        if any(r < 0 for r in self.dead_ranks):
            raise ValueError(
                f"fail_stop.dead_ranks must be non-negative, got {self.dead_ranks}"
            )
        if self.after_accepts < 0:
            raise ValueError(
                f"fail_stop.after_accepts must be >= 0, got {self.after_accepts}"
            )
        if self.detect_after < 1:
            raise ValueError(
                f"fail_stop.detect_after must be >= 1, got {self.detect_after}"
            )

    @property
    def active(self) -> bool:
        """True when this spec can actually kill a rank."""
        return self.probability > 0 or bool(self.dead_ranks)


@dataclass(frozen=True)
class FaultSpec:
    """A complete fault plan (see module docstring for the taxonomy)."""

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    slowdown: SlowdownSpec = field(default_factory=SlowdownSpec)
    crash: CrashSpec = field(default_factory=CrashSpec)
    fail_stop: FailStopSpec = field(default_factory=FailStopSpec)
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "corrupt"):
            _check_probability(name, getattr(self, name))
        if self.drop + self.corrupt >= 1.0:
            raise ValueError(
                "drop + corrupt must be < 1 so a send attempt can succeed "
                f"(got {self.drop} + {self.corrupt})"
            )

    # ------------------------------------------------------------------
    @property
    def any_faults(self) -> bool:
        """True when this plan can actually perturb a run."""
        return (
            self.drop > 0
            or self.duplicate > 0
            or self.reorder > 0
            or self.corrupt > 0
            or (self.slowdown.probability > 0 and self.slowdown.factor > 1)
            or self.crash.probability > 0
            or self.fail_stop.active
        )

    @classmethod
    def disabled(cls) -> "FaultSpec":
        """The all-zero plan (useful for overhead-only measurements)."""
        return cls()

    @classmethod
    def lossy(cls, f: float = 0.05) -> "FaultSpec":
        """A simple preset: rate ``f`` for drop and ``f/2`` for the rest —
        the single-knob "failure rate" used to re-derive Tables 3–5."""
        return cls(drop=f, duplicate=f / 2, reorder=f / 2, corrupt=f / 2)

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultSpec":
        """Build a spec from a plain mapping (e.g. parsed JSON).

        Unknown keys are rejected so typos in a spec file fail loudly.
        """
        known = {
            "drop", "duplicate", "reorder", "corrupt",
            "slowdown", "crash", "fail_stop", "retry",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown fault-spec keys {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs: dict[str, Any] = {
            k: float(raw[k])
            for k in ("drop", "duplicate", "reorder", "corrupt")
            if k in raw
        }
        if "slowdown" in raw:
            kwargs["slowdown"] = SlowdownSpec(**dict(raw["slowdown"]))
        if "crash" in raw:
            kwargs["crash"] = CrashSpec(**dict(raw["crash"]))
        if "fail_stop" in raw:
            fs = dict(raw["fail_stop"])
            fs_known = {"probability", "dead_ranks", "after_accepts", "detect_after"}
            fs_unknown = set(fs) - fs_known
            if fs_unknown:
                raise ValueError(
                    f"unknown fail_stop keys {sorted(fs_unknown)}; "
                    f"known: {sorted(fs_known)}"
                )
            if "dead_ranks" in fs:
                fs["dead_ranks"] = tuple(fs["dead_ranks"])
            kwargs["fail_stop"] = FailStopSpec(**fs)
        if "retry" in raw:
            kwargs["retry"] = RetryPolicy(**dict(raw["retry"]))
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultSpec":
        """Load a spec from a JSON file (the CLI's ``--faults`` argument)."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
