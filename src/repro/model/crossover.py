"""Crossover finders: where one scheme overtakes another.

The paper's observations all hinge on crossovers in two knobs:

* the sparse ratio ``s`` — below some ``s*``, compressed wire formats (CFS,
  ED) beat SFC's dense sends;
* the machine ratio ``T_Data / T_Operation`` — above some ``r*``, saved
  transmission outweighs the extra compression work (Remark 5's
  conditions).

Both crossover curves are monotone in the scanned variable over the ranges
of interest, so a bisection on the closed-form model suffices.
"""

from __future__ import annotations

from typing import Callable, Literal

from .formulas import CompressionName, PartitionName, predict
from .notation import ProblemSpec

__all__ = ["sparse_ratio_crossover", "data_op_ratio_crossover", "bisect_crossover"]

Metric = Literal["t_total", "t_distribution", "t_compression"]


def bisect_crossover(
    advantage: Callable[[float], float],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float | None:
    """Root of a monotone ``advantage`` function on ``[lo, hi]``.

    Returns ``None`` when the sign does not change over the interval
    (no crossover there).
    """
    if lo >= hi:
        raise ValueError(f"need lo < hi, got [{lo}, {hi}]")
    f_lo, f_hi = advantage(lo), advantage(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if (f_lo > 0) == (f_hi > 0):
        return None
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = advantage(mid)
        if abs(hi - lo) < tol:
            return mid
        if (f_mid > 0) == (f_lo > 0):
            lo, f_lo = mid, f_mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def sparse_ratio_crossover(
    spec: ProblemSpec,
    scheme_a: str,
    scheme_b: str,
    *,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
    metric: Metric = "t_total",
    s_range: tuple[float, float] = (1e-6, 0.499),
) -> float | None:
    """The sparse ratio where ``scheme_a`` stops beating ``scheme_b``.

    Scans ``s`` (with ``s' = s``) holding the machine fixed.  Returns
    ``None`` when one scheme dominates across the whole range.
    """

    def advantage(s: float) -> float:
        sp = spec.with_sparse_ratio(s)
        a = getattr(predict(sp, scheme_a, partition, compression), metric)
        b = getattr(predict(sp, scheme_b, partition, compression), metric)
        return b - a  # positive while a is winning

    return bisect_crossover(advantage, *s_range)


def data_op_ratio_crossover(
    spec: ProblemSpec,
    scheme_a: str,
    scheme_b: str,
    *,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
    metric: Metric = "t_total",
    ratio_range: tuple[float, float] = (1e-3, 1e3),
) -> float | None:
    """The ``T_Data/T_Operation`` ratio where ``scheme_a`` overtakes
    ``scheme_b`` (Remark 5's empirical counterpart).

    ``T_Operation`` and ``T_Startup`` are held at the spec's values while
    ``T_Data`` scans.  Returns ``None`` when there is no crossover in the
    range.
    """

    def advantage(ratio: float) -> float:
        sp = spec.with_cost(spec.cost.with_ratio(ratio))
        a = getattr(predict(sp, scheme_a, partition, compression), metric)
        b = getattr(predict(sp, scheme_b, partition, compression), metric)
        return b - a

    return bisect_crossover(advantage, *ratio_range)
