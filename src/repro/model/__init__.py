"""Closed-form cost model: Tables 1-2, Remarks 1-5, crossover analysis."""

from .crossover import bisect_crossover, data_op_ratio_crossover, sparse_ratio_crossover
from .formulas import CostPrediction, predict, predict_from_plan, structural
from .notation import ProblemSpec, ceil_div, spec_from_plan
from .amortization import AmortizationReport, amortization, spmv_iteration_cost
from .memory import MemoryFootprint, memory_footprint
from .sweep import SweepResult, SweepSeries, sweep
from .remarks import (
    RemarkReport,
    evaluate_all,
    remark1_ed_dist_fastest,
    remark2_cfs_dist_beats_sfc,
    remark3_compression_order,
    remark4_ed_beats_cfs,
    remark5_beats_sfc,
    remark5_thresholds,
)
from .tables import (
    table1_cfs,
    table1_ed,
    table1_sfc,
    table2_cfs,
    table2_ed,
    table2_sfc,
)

__all__ = [
    "AmortizationReport",
    "CostPrediction",
    "MemoryFootprint",
    "ProblemSpec",
    "RemarkReport",
    "bisect_crossover",
    "ceil_div",
    "data_op_ratio_crossover",
    "evaluate_all",
    "amortization",
    "memory_footprint",
    "predict",
    "predict_from_plan",
    "spmv_iteration_cost",
    "remark1_ed_dist_fastest",
    "remark2_cfs_dist_beats_sfc",
    "remark3_compression_order",
    "remark4_ed_beats_cfs",
    "remark5_beats_sfc",
    "remark5_thresholds",
    "sparse_ratio_crossover",
    "spec_from_plan",
    "structural",
    "sweep",
    "SweepResult",
    "SweepSeries",
    "table1_cfs",
    "table1_ed",
    "table1_sfc",
    "table2_cfs",
    "table2_ed",
    "table2_sfc",
]
