"""General closed-form cost model for all scheme × partition × compression.

This derives ``T_Distribution`` and ``T_Compression`` for any combination of
{SFC, CFS, ED} × {row, column, mesh2d} × {CRS, CCS} from the structural
quantities (wire sizes, per-element op counts) of Section 4, rather than
transcribing 18 special cases.  The literal published Tables 1–2 live in
:mod:`repro.model.tables`; the test suite proves this general model equals
the published formulas (up to one documented erratum) *and* equals the
simulator's measured counts.

Assumptions inherited from the paper: square ``n × n`` array, balanced
blocks of size ``⌈n/p⌉`` (⌈n/pr⌉ × ⌈n/pc⌉ on a mesh), sequential sends,
single-hop interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .notation import ProblemSpec, ceil_div

__all__ = ["CostPrediction", "predict", "predict_from_plan", "structural"]

PartitionName = Literal["row", "column", "mesh2d"]
CompressionName = Literal["crs", "ccs"]
SchemeName = Literal["sfc", "cfs", "ed"]


@dataclass(frozen=True)
class Structural:
    """Partition/compression geometry feeding every scheme formula."""

    #: segments (rows for CRS, columns for CCS) of the largest local block
    max_segments: int
    #: total segments summed across all processors
    sum_segments: int
    #: elements of the largest local block
    max_elements: int
    #: nonzeros of the most densely filled block (``max_elements · s'``)
    max_nnz: float
    #: 1 when receivers must convert CO indices (Cases x.2 / x.3), else 0
    conversion: int
    #: 1 when SFC must gather strided dense blocks into send buffers
    sfc_pack: int


def structural(
    spec: ProblemSpec, partition: PartitionName, compression: CompressionName
) -> Structural:
    """Geometry of a (partition, compression) pair under ``spec``."""
    n, p = spec.n, spec.p
    if partition == "row":
        seg_l = ceil_div(n, p) if compression == "crs" else n
        sum_seg = n if compression == "crs" else p * n
        max_elems = ceil_div(n, p) * n
        conversion = 0 if compression == "crs" else 1
        sfc_pack = 0
    elif partition == "column":
        seg_l = n if compression == "crs" else ceil_div(n, p)
        sum_seg = p * n if compression == "crs" else n
        max_elems = ceil_div(n, p) * n
        conversion = 1 if compression == "crs" else 0
        sfc_pack = 1
    elif partition == "mesh2d":
        pr, pc = spec.mesh
        seg_l = ceil_div(n, pr) if compression == "crs" else ceil_div(n, pc)
        sum_seg = pc * n if compression == "crs" else pr * n
        max_elems = ceil_div(n, pr) * ceil_div(n, pc)
        conversion = 1
        sfc_pack = 1
    else:
        raise ValueError(f"unknown partition {partition!r}")
    if compression not in ("crs", "ccs"):
        raise ValueError(f"unknown compression {compression!r}")
    return Structural(
        max_segments=seg_l,
        sum_segments=sum_seg,
        max_elements=max_elems,
        max_nnz=max_elems * spec.s_prime,
        conversion=conversion,
        sfc_pack=sfc_pack,
    )


@dataclass(frozen=True)
class CostPrediction:
    """Predicted phase times (ms) plus the quantities behind them."""

    scheme: SchemeName
    partition: PartitionName
    compression: CompressionName
    t_distribution: float
    t_compression: float
    wire_elements: float
    host_distribution_ops: float
    proc_distribution_ops: float   # slowest processor
    host_compression_ops: float
    proc_compression_ops: float    # slowest processor

    @property
    def t_total(self) -> float:
        return self.t_distribution + self.t_compression


def predict(
    spec: ProblemSpec,
    scheme: SchemeName,
    partition: PartitionName,
    compression: CompressionName,
) -> CostPrediction:
    """Closed-form ``T_Distribution`` / ``T_Compression`` prediction."""
    geo = structural(spec, partition, compression)
    c = spec.cost
    n, p, s = spec.n, spec.p, spec.s
    nnz = spec.nnz

    if scheme == "sfc":
        # dense blocks on the wire; strided partitions pay a host-side gather
        wire = float(n * n)
        host_dist_ops = geo.sfc_pack * n * n
        proc_dist_ops = 0.0
        host_comp_ops = 0.0
        # each processor scans its dense block and writes 3 ops per nonzero
        proc_comp_ops = geo.max_elements + 3.0 * geo.max_nnz
    elif scheme == "cfs":
        # wire: RO (segments+1 per proc) + CO + VL (2 per nonzero)
        wire = 2.0 * nnz + geo.sum_segments + p
        host_dist_ops = wire  # pack: one move per element
        # unpack (one move per element of own buffer) + conversion
        proc_dist_ops = (
            2.0 * geo.max_nnz
            + geo.max_segments
            + 1.0
            + geo.conversion * geo.max_nnz
        )
        # host compresses every block: scan all n² elements, 3 ops/nonzero
        host_comp_ops = n * n + 3.0 * nnz
        proc_comp_ops = 0.0
    elif scheme == "ed":
        # the special buffer is the wire format: R_i per segment + (C,V) pairs
        wire = 2.0 * nnz + geo.sum_segments
        host_dist_ops = 0.0  # no separate packing step
        proc_dist_ops = 0.0  # decode is charged to the compression phase
        host_comp_ops = n * n + 3.0 * nnz  # encoding
        proc_comp_ops = (
            2.0 * geo.max_nnz
            + geo.max_segments
            + 1.0
            + geo.conversion * geo.max_nnz
        )  # decoding
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    t_dist = (
        p * c.t_startup
        + wire * c.t_data
        + (host_dist_ops + proc_dist_ops) * c.t_operation
    )
    t_comp = (host_comp_ops + proc_comp_ops) * c.t_operation
    return CostPrediction(
        scheme=scheme,
        partition=partition,
        compression=compression,
        t_distribution=t_dist,
        t_compression=t_comp,
        wire_elements=wire,
        host_distribution_ops=host_dist_ops,
        proc_distribution_ops=proc_dist_ops,
        host_compression_ops=host_comp_ops,
        proc_compression_ops=proc_comp_ops,
    )


def predict_from_plan(matrix, plan, scheme, compression, cost):
    """Exact structural cost prediction from an actual (matrix, plan) pair.

    Where :func:`predict` works from the paper's ``(n, p, s, s')`` summary —
    and therefore charges the index conversion to the slowest processor even
    when that processor happens to be rank 0, which never converts —
    this variant counts each processor's real block.  It is pure counting
    (no machine, no events), so agreement with the simulator is a meaningful
    two-implementation check; the paper-summary :func:`predict` upper-bounds
    it.

    Parameters mirror :func:`predict` except the problem is given as a
    ``COOMatrix`` plus a ``PartitionPlan``; ``cost`` is a
    :class:`~repro.machine.cost_model.CostModel`.
    """
    from ..core.index_conversion import conversion_for
    from ..core.sfc import dense_block_is_contiguous

    kind = compression
    if kind not in ("crs", "ccs"):
        raise ValueError(f"unknown compression {kind!r}")
    locals_ = plan.extract_all(matrix)
    per_proc = []
    for assignment, local in zip(plan, locals_):
        lr, lc = local.shape
        seg = lr if kind == "crs" else lc
        conv = 0 if conversion_for(assignment, kind).kind == "none" else 1
        contiguous = dense_block_is_contiguous(assignment, matrix.shape)
        per_proc.append(
            {
                "elems": lr * lc,
                "nnz": local.nnz,
                "seg": seg,
                "conv": conv,
                "contiguous": contiguous,
            }
        )

    p = plan.n_procs
    if scheme == "sfc":
        wire = sum(q["elems"] for q in per_proc)
        host_dist = sum(q["elems"] for q in per_proc if not q["contiguous"])
        proc_dist = 0.0
        host_comp = 0.0
        proc_comp = max(
            (q["elems"] + 3 * q["nnz"] for q in per_proc), default=0
        )
    elif scheme == "cfs":
        wire = sum(q["seg"] + 1 + 2 * q["nnz"] for q in per_proc)
        host_dist = wire
        proc_dist = max(
            (
                q["seg"] + 1 + 2 * q["nnz"] + q["conv"] * q["nnz"]
                for q in per_proc
            ),
            default=0,
        )
        host_comp = sum(q["elems"] + 3 * q["nnz"] for q in per_proc)
        proc_comp = 0.0
    elif scheme == "ed":
        wire = sum(q["seg"] + 2 * q["nnz"] for q in per_proc)
        host_dist = 0.0
        proc_dist = 0.0
        host_comp = sum(q["elems"] + 3 * q["nnz"] for q in per_proc)
        proc_comp = max(
            (
                1 + q["seg"] + 2 * q["nnz"] + q["conv"] * q["nnz"]
                for q in per_proc
            ),
            default=0,
        )
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    t_dist = (
        p * cost.t_startup
        + wire * cost.t_data
        + (host_dist + proc_dist) * cost.t_operation
    )
    t_comp = (host_comp + proc_comp) * cost.t_operation
    return CostPrediction(
        scheme=scheme,
        partition=plan.method,  # actual plan name, may be outside the paper's three
        compression=kind,
        t_distribution=t_dist,
        t_compression=t_comp,
        wire_elements=wire,
        host_distribution_ops=host_dist,
        proc_distribution_ops=proc_dist,
        host_compression_ops=host_comp,
        proc_compression_ops=proc_comp,
    )
