"""Parameter sweeps over the cost model (and optionally the simulator).

The paper's story is told through crossovers; a sweep makes them visible:
evaluate every scheme's cost while one knob moves — the sparse ratio ``s``,
the machine ratio ``T_Data/T_Operation``, the processor count ``p`` or the
array size ``n`` — holding the rest of a :class:`~repro.model.notation.
ProblemSpec` fixed.

``simulate=True`` reruns each point on the simulated machine with a
generated matrix instead of evaluating the closed forms; the shapes must
agree (that agreement is itself tested), the simulator just pays real
wall-clock for it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal, Sequence

from .formulas import CompressionName, PartitionName, predict
from .notation import ProblemSpec

__all__ = ["SweepSeries", "SweepResult", "sweep"]

Parameter = Literal["s", "ratio", "p", "n"]
Metric = Literal["t_total", "t_distribution", "t_compression"]


@dataclass(frozen=True)
class SweepSeries:
    """One scheme's metric across the swept values."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]


@dataclass(frozen=True)
class SweepResult:
    """All series of one sweep, plus enough context to caption a plot."""

    parameter: Parameter
    metric: Metric
    partition: PartitionName
    compression: CompressionName
    spec: ProblemSpec
    series: tuple[SweepSeries, ...]

    def winner_at(self, index: int) -> str:
        """The scheme with the smallest metric at swept point ``index``."""
        return min(self.series, key=lambda s: s.y[index]).label

    def crossover_indices(self) -> list[int]:
        """Indices ``i`` where the winner differs from point ``i-1``."""
        winners = [self.winner_at(i) for i in range(len(self.series[0].x))]
        return [i for i in range(1, len(winners)) if winners[i] != winners[i - 1]]


def _spec_at(spec: ProblemSpec, parameter: Parameter, value: float) -> ProblemSpec:
    if parameter == "s":
        return spec.with_sparse_ratio(float(value))
    if parameter == "ratio":
        return spec.with_cost(spec.cost.with_ratio(float(value)))
    if parameter == "p":
        return replace(spec, p=int(value), mesh_shape=None)
    if parameter == "n":
        return replace(spec, n=int(value))
    raise ValueError(f"unknown sweep parameter {parameter!r}")


def sweep(
    spec: ProblemSpec,
    parameter: Parameter,
    values: Sequence[float],
    *,
    schemes: Sequence[str] = ("sfc", "cfs", "ed"),
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
    metric: Metric = "t_total",
    simulate: bool = False,
    seed: int = 0,
) -> SweepResult:
    """Evaluate ``metric`` for each scheme at each swept value."""
    xs = tuple(float(v) for v in values)
    if not xs:
        raise ValueError("need at least one swept value")
    ys: dict[str, list[float]] = {s: [] for s in schemes}
    for value in xs:
        point = _spec_at(spec, parameter, value)
        if simulate:
            from ..runtime.driver import run_scheme
            from ..sparse.generators import random_sparse

            matrix = random_sparse(
                (point.n, point.n), point.s, seed=seed + int(value * 1000)
            )
            for scheme in schemes:
                result = run_scheme(
                    scheme,
                    matrix,
                    partition=partition,
                    n_procs=point.p,
                    compression=compression,
                    cost=point.cost,
                )
                ys[scheme].append(getattr(result, metric))
        else:
            for scheme in schemes:
                ys[scheme].append(
                    getattr(predict(point, scheme, partition, compression), metric)
                )
    return SweepResult(
        parameter=parameter,
        metric=metric,
        partition=partition,
        compression=compression,
        spec=spec,
        series=tuple(
            SweepSeries(label=s, x=xs, y=tuple(ys[s])) for s in schemes
        ),
    )
