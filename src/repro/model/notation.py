"""Section 4 notation as a value object.

The paper's analysis is parameterised by: an ``n × n`` global sparse array
``A``, ``p`` processors, the global sparse ratio ``s``, the *largest local*
sparse ratio ``s'`` (max over processors), and the machine constants
``T_Startup``/``T_Data``/``T_Operation``.  :class:`ProblemSpec` bundles
them; :func:`spec_from_plan` derives ``s'`` from an actual matrix and
partition plan instead of assuming ``s' = s``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..machine.cost_model import CostModel, sp2_cost_model
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix

__all__ = ["ProblemSpec", "spec_from_plan", "ceil_div"]


def ceil_div(a: int, b: int) -> int:
    """``ceil(a / b)`` on integers (the paper's ``⌈n/p⌉``)."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


@dataclass(frozen=True)
class ProblemSpec:
    """One analysed configuration.

    Attributes
    ----------
    n:
        The array is ``n × n`` (the paper analyses square arrays; the
        simulator handles rectangular ones, the closed forms here follow
        the paper).
    p:
        Number of processors.
    s:
        Global sparse ratio.
    s_prime:
        Largest local sparse ratio across processors (defaults to ``s`` —
        exact for uniformly random fill, optimistic for skewed fill).
    cost:
        Machine constants; defaults to the SP2 calibration.
    mesh_shape:
        ``(pr, pc)`` when the 2-D mesh partition is analysed; ``None``
        selects the most-square factorisation when needed.
    """

    n: int
    p: int
    s: float
    s_prime: float | None = None
    cost: CostModel = field(default_factory=sp2_cost_model)
    mesh_shape: tuple[int, int] | None = None

    def __post_init__(self):
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.p <= 0:
            raise ValueError(f"p must be positive, got {self.p}")
        if not 0.0 <= self.s <= 1.0:
            raise ValueError(f"s must be in [0, 1], got {self.s}")
        if self.s_prime is None:
            object.__setattr__(self, "s_prime", self.s)
        if not 0.0 <= self.s_prime <= 1.0:
            raise ValueError(f"s' must be in [0, 1], got {self.s_prime}")
        if self.cost is None:
            object.__setattr__(self, "cost", sp2_cost_model())
        if self.mesh_shape is not None:
            pr, pc = self.mesh_shape
            if pr * pc != self.p:
                raise ValueError(
                    f"mesh_shape {self.mesh_shape} inconsistent with p={self.p}"
                )

    # -- derived quantities used throughout Section 4 ----------------------
    @property
    def nnz(self) -> float:
        """``s·n²`` — nonzeros in the global array."""
        return self.s * self.n**2

    @property
    def mesh(self) -> tuple[int, int]:
        """``(pr, pc)`` for mesh analyses (most-square default)."""
        if self.mesh_shape is not None:
            return self.mesh_shape
        pr = int(math.isqrt(self.p))
        while self.p % pr:
            pr -= 1
        return (pr, self.p // pr)

    def with_cost(self, cost: CostModel) -> "ProblemSpec":
        return replace(self, cost=cost)

    def with_sparse_ratio(self, s: float, s_prime: float | None = None) -> "ProblemSpec":
        return replace(self, s=s, s_prime=s_prime)


def spec_from_plan(
    matrix: COOMatrix,
    plan: PartitionPlan,
    cost: CostModel | None = None,
) -> ProblemSpec:
    """Build a spec with the *measured* ``s'`` of an actual partition.

    Requires a square matrix (the closed forms assume one).
    """
    n_rows, n_cols = matrix.shape
    if n_rows != n_cols:
        raise ValueError(
            f"the paper's closed forms assume a square array, got {matrix.shape}"
        )
    locals_ = plan.extract_all(matrix)
    ratios = [loc.sparse_ratio for loc in locals_ if loc.shape[0] * loc.shape[1]]
    s_prime = max(ratios) if ratios else 0.0
    return ProblemSpec(
        n=n_rows,
        p=plan.n_procs,
        s=matrix.sparse_ratio,
        s_prime=s_prime,
        cost=cost if cost is not None else sp2_cost_model(),
        mesh_shape=plan.mesh_shape,
    )
