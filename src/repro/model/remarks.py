"""Remarks 1–5 and Conclusions 1–3 as executable predicates.

Each remark in Section 4.1.1.D is a claim about the ordering of the three
schemes' costs under stated conditions.  This module expresses them as
functions of a :class:`~repro.model.notation.ProblemSpec` so the ablation
benches can check exactly *where* each claim holds and where it stops
holding (the crossovers the paper's Section 5 observations turn on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .formulas import CompressionName, PartitionName, predict
from .notation import ProblemSpec

__all__ = [
    "RemarkReport",
    "remark1_ed_dist_fastest",
    "remark2_cfs_dist_beats_sfc",
    "remark3_compression_order",
    "remark4_ed_beats_cfs",
    "remark5_thresholds",
    "remark5_beats_sfc",
    "evaluate_all",
]


def _three(spec, partition, compression):
    return (
        predict(spec, "sfc", partition, compression),
        predict(spec, "cfs", partition, compression),
        predict(spec, "ed", partition, compression),
    )


def remark1_ed_dist_fastest(
    spec: ProblemSpec,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
) -> bool:
    """Remark 1: ED's distribution time is the smallest of the three.

    (The paper notes this requires ``s < 0.5`` against SFC — for ``s``
    beyond that the compressed payload exceeds the dense one.)
    """
    sfc, cfs, ed = _three(spec, partition, compression)
    return (
        ed.t_distribution < cfs.t_distribution
        and ed.t_distribution < sfc.t_distribution
    )


def remark2_cfs_dist_beats_sfc(
    spec: ProblemSpec,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
) -> bool:
    """Remark 2: CFS's distribution time beats SFC's (most applications)."""
    sfc, cfs, _ = _three(spec, partition, compression)
    return cfs.t_distribution < sfc.t_distribution


def remark2_condition(spec: ProblemSpec) -> bool:
    """The paper's sufficient condition: ``T_Data > (2s / (1-2s))·T_Op``."""
    s = spec.s
    if s >= 0.5:
        return False
    return spec.cost.t_data > (2 * s / (1 - 2 * s)) * spec.cost.t_operation


def remark3_compression_order(
    spec: ProblemSpec,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
) -> bool:
    """Remark 3: ``T_comp(SFC) < T_comp(CFS) < T_comp(ED)``."""
    sfc, cfs, ed = _three(spec, partition, compression)
    return sfc.t_compression < cfs.t_compression < ed.t_compression


def remark4_ed_beats_cfs(
    spec: ProblemSpec,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
) -> bool:
    """Remark 4: overall, ED outperforms CFS."""
    _, cfs, ed = _three(spec, partition, compression)
    return ed.t_total < cfs.t_total


@dataclass(frozen=True)
class RemarkReport:
    """All remark verdicts for one configuration."""

    spec: ProblemSpec
    partition: PartitionName
    compression: CompressionName
    remark1: bool
    remark2: bool
    remark3: bool
    remark4: bool
    ed_beats_sfc: bool
    cfs_beats_sfc: bool


def remark5_thresholds(
    spec: ProblemSpec, partition: PartitionName = "row"
) -> tuple[float, float]:
    """Remark 5's asymptotic ``T_Data/T_Operation`` thresholds.

    Returns ``(ed_vs_sfc, cfs_vs_sfc)``: ED (resp. CFS) outperforms SFC
    overall when ``T_Data/T_Operation`` exceeds the returned value.  Row
    partition: ``(1+3s)/(1-2s)`` and ``(1+5s)/(1-2s)``; column and mesh
    partitions (where SFC pays a dense pack): ``3s/(1-2s)`` and
    ``5s/(1-2s)``.
    """
    s = spec.s
    if s >= 0.5:
        raise ValueError("thresholds are undefined for s >= 0.5")
    if partition == "row":
        return ((1 + 3 * s) / (1 - 2 * s), (1 + 5 * s) / (1 - 2 * s))
    if partition in ("column", "mesh2d"):
        return ((3 * s) / (1 - 2 * s), (5 * s) / (1 - 2 * s))
    raise ValueError(f"unknown partition {partition!r}")


def remark5_beats_sfc(
    spec: ProblemSpec,
    scheme: Literal["cfs", "ed"],
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
) -> bool:
    """Whether ``scheme`` outperforms SFC overall under the full model."""
    sfc = predict(spec, "sfc", partition, compression)
    other = predict(spec, scheme, partition, compression)
    return other.t_total < sfc.t_total


def evaluate_all(
    spec: ProblemSpec,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
) -> RemarkReport:
    """Evaluate every remark for one configuration."""
    return RemarkReport(
        spec=spec,
        partition=partition,
        compression=compression,
        remark1=remark1_ed_dist_fastest(spec, partition, compression),
        remark2=remark2_cfs_dist_beats_sfc(spec, partition, compression),
        remark3=remark3_compression_order(spec, partition, compression),
        remark4=remark4_ed_beats_cfs(spec, partition, compression),
        ed_beats_sfc=remark5_beats_sfc(spec, "ed", partition, compression),
        cfs_beats_sfc=remark5_beats_sfc(spec, "cfs", partition, compression),
    )
