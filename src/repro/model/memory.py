"""Memory-footprint analysis of the three schemes.

The paper analyses time only, but the phase ordering also determines *peak
memory*, and on real machines that decides feasibility:

* **SFC** materialises a dense ``⌈n/p⌉·n`` block on every receiving
  processor before compressing it — the receiver-side high-water mark is
  the dense block plus the compressed copy;
* **CFS** keeps the dense view only on the host (which owns the global
  array anyway); receivers peak at wire buffer + unpacked triple;
* **ED** is the leanest on both sides: the host writes each special buffer
  straight from the (sparse) scan, receivers peak at buffer + decoded
  triple.

Closed forms below count array *elements* (the unit the paper's analysis
uses throughout); multiply by 8 for bytes at float64.  These are exact for
the balanced partitions of the paper given ``(n, p, s, s')``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .formulas import CompressionName, PartitionName, SchemeName, structural
from .notation import ProblemSpec

__all__ = ["MemoryFootprint", "memory_footprint"]


@dataclass(frozen=True)
class MemoryFootprint:
    """Peak element counts for one scheme run."""

    scheme: SchemeName
    #: host high-water mark beyond the global array it already owns
    host_peak: float
    #: the worst receiving processor's high-water mark
    proc_peak: float
    #: elements of the compressed local triple the processor keeps after
    #: the run (RO + CO + VL) — identical across schemes by construction
    proc_resident: float

    @property
    def proc_overhead(self) -> float:
        """Transient processor memory above what it must keep anyway."""
        return self.proc_peak - self.proc_resident


def memory_footprint(
    spec: ProblemSpec,
    scheme: SchemeName,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
) -> MemoryFootprint:
    """Peak memory (in array elements) for one configuration."""
    geo = structural(spec, partition, compression)
    nnz = spec.nnz
    # the compressed local triple everyone ends up holding
    resident = geo.max_segments + 1 + 2.0 * geo.max_nnz

    if scheme == "sfc":
        # receiver: dense block arrives, then the compressed copy is built
        proc_peak = geo.max_elements + resident
        # host: a send buffer for strided partitions, else sends in place
        host_peak = float(geo.max_elements) if geo.sfc_pack else 0.0
    elif scheme == "cfs":
        # host: all compressed triples plus the largest packed buffer
        all_triples = geo.sum_segments + spec.p + 2.0 * nnz
        largest_buffer = resident
        host_peak = all_triples + largest_buffer
        # receiver: the packed buffer plus the unpacked triple
        proc_peak = resident + resident
    elif scheme == "ed":
        # host: one special buffer at a time (encode-and-send)
        host_peak = geo.max_segments + 2.0 * geo.max_nnz
        # receiver: the buffer plus the decoded triple
        proc_peak = (geo.max_segments + 2.0 * geo.max_nnz) + resident
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return MemoryFootprint(
        scheme=scheme,
        host_peak=host_peak,
        proc_peak=proc_peak,
        proc_resident=resident,
    )
