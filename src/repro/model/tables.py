"""Tables 1 and 2 of the paper, transcribed literally.

These are the *published* closed forms for the row partition method with
the CRS method (Table 1) and the CCS method (Table 2).  They exist
separately from :mod:`repro.model.formulas` so the test suite can prove the
repo's general model reproduces the published algebra term by term.

Known erratum (documented in EXPERIMENTS.md): Table 2's CFS
``T_Distribution`` prints the transmission term as ``(2n²s + n + p)·T_Data``
— the Table 1 value — although the packed CCS buffers under a row partition
carry ``RO`` vectors of length ``n+1`` *per processor*, i.e.
``(2n²s + pn + p)`` elements.  The paper's own ``T_Operation`` term in the
same cell (and the ED row of the same table, ``(2n²s + pn)·T_Data``) uses
the per-processor count, confirming the wire term is a typo.
:func:`table2_cfs` therefore exposes both readings.
"""

from __future__ import annotations

from .notation import ProblemSpec, ceil_div

__all__ = [
    "table1_sfc",
    "table1_cfs",
    "table1_ed",
    "table2_sfc",
    "table2_cfs",
    "table2_ed",
]


def _common(spec: ProblemSpec):
    c = spec.cost
    return spec.n, spec.p, spec.s, spec.s_prime, c.t_startup, c.t_data, c.t_operation


# ---------------------------------------------------------------------------
# Table 1 — row partition + CRS
# ---------------------------------------------------------------------------
def table1_sfc(spec: ProblemSpec) -> tuple[float, float]:
    """``(T_Distribution, T_Compression)`` of SFC, row partition + CRS."""
    n, p, s, sp_, ts, td, to = _common(spec)
    t_dist = p * ts + n**2 * td
    t_comp = (ceil_div(n, p) * n * (1 + 3 * sp_)) * to
    return t_dist, t_comp


def table1_cfs(spec: ProblemSpec) -> tuple[float, float]:
    """``(T_Distribution, T_Compression)`` of CFS, row partition + CRS."""
    n, p, s, sp_, ts, td, to = _common(spec)
    t_dist = (
        p * ts
        + (2 * n**2 * s + n + p) * td
        + (
            2 * n**2 * s
            + ceil_div(n, p) * n * (2 * sp_ + 1 / n)
            + n
            + p
            + 1
        )
        * to
    )
    t_comp = (n**2 * (1 + 3 * s)) * to
    return t_dist, t_comp


def table1_ed(spec: ProblemSpec) -> tuple[float, float]:
    """``(T_Distribution, T_Compression)`` of ED, row partition + CRS."""
    n, p, s, sp_, ts, td, to = _common(spec)
    t_dist = p * ts + (2 * n**2 * s + n) * td
    t_comp = (
        n**2 * (1 + 3 * s) + ceil_div(n, p) * n * (2 * sp_ + 1 / n) + 1
    ) * to
    return t_dist, t_comp


# ---------------------------------------------------------------------------
# Table 2 — row partition + CCS
# ---------------------------------------------------------------------------
def table2_sfc(spec: ProblemSpec) -> tuple[float, float]:
    """``(T_Distribution, T_Compression)`` of SFC, row partition + CCS.

    Identical to Table 1's SFC row: the dense wire format and the
    scan-plus-3-ops-per-nonzero compression cost do not depend on CRS vs
    CCS.
    """
    return table1_sfc(spec)


def table2_cfs(
    spec: ProblemSpec, *, as_printed: bool = False
) -> tuple[float, float]:
    """``(T_Distribution, T_Compression)`` of CFS, row partition + CCS.

    With ``as_printed=True`` the transmission term uses the paper's
    ``(2n²s + n + p)`` exactly as typeset; the default uses the
    self-consistent ``(2n²s + pn + p)`` (see module docstring).
    """
    n, p, s, sp_, ts, td, to = _common(spec)
    wire = (2 * n**2 * s + n + p) if as_printed else (2 * n**2 * s + p * n + p)
    t_dist = (
        p * ts
        + wire * td
        + (
            2 * n**2 * s
            + ceil_div(n, p) * n * (3 * sp_)
            + p * n
            + p
            + n
            + 1
        )
        * to
    )
    t_comp = (n**2 * (1 + 3 * s)) * to
    return t_dist, t_comp


def table2_ed(spec: ProblemSpec) -> tuple[float, float]:
    """``(T_Distribution, T_Compression)`` of ED, row partition + CCS."""
    n, p, s, sp_, ts, td, to = _common(spec)
    t_dist = p * ts + (2 * n**2 * s + p * n) * td
    t_comp = (
        n**2 * (1 + 3 * s) + ceil_div(n, p) * n * (3 * sp_) + n + 1
    ) * to
    return t_dist, t_comp
