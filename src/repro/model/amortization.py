"""Amortisation analysis: when does the distribution choice stop mattering?

Distribution is a one-off cost; the kernels that follow repay it.  For an
iterative workload running ``k`` distributed SpMVs after distribution, the
effective cost of a scheme is::

    T_effective(k) = T_distribution + T_compression + k · T_iteration

``T_iteration`` is scheme-independent (every scheme leaves identical local
arrays), so the *difference* between schemes is constant in ``k`` — the
relative advantage shrinks like ``1/k``.  This module quantifies that:
after how many iterations is the worst scheme within a target factor of
the best?  It is the honest "so what" of the paper's milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .formulas import CompressionName, PartitionName, predict
from .notation import ProblemSpec

__all__ = ["AmortizationReport", "spmv_iteration_cost", "amortization"]


def spmv_iteration_cost(spec: ProblemSpec) -> float:
    """One host-routed distributed SpMV under the machine model (ms).

    Scatter ``p`` x-slices (n elements each for whole-row layouts), local
    multiply (``2·max_nnz`` ops in parallel), gather ``n`` partials, and
    ``n`` assembly ops — the accounting of :func:`repro.apps.spmv.
    distributed_spmv` on a row partition.
    """
    c = spec.cost
    n, p = spec.n, spec.p
    comm = 2 * p * c.t_startup + (p * n + n) * c.t_data
    compute = 2 * (n * n / p) * spec.s_prime * c.t_operation
    assemble = n * c.t_operation
    return comm + compute + assemble


@dataclass(frozen=True)
class AmortizationReport:
    """Break-even iteration counts for one configuration."""

    spec: ProblemSpec
    partition: PartitionName
    compression: CompressionName
    #: per-scheme one-off cost (T_dist + T_comp), ms
    setup: dict
    #: scheme-independent per-iteration cost, ms
    iteration: float
    #: iterations until the worst setup is within 5% of the best
    iterations_to_5_percent: int

    def effective(self, scheme: str, k: int) -> float:
        """``T_effective(k)`` for one scheme."""
        return self.setup[scheme] + k * self.iteration

    def winner(self, k: int) -> str:
        """Best scheme after ``k`` iterations (constant in k, but explicit)."""
        return min(self.setup, key=lambda s: self.effective(s, k))


def amortization(
    spec: ProblemSpec,
    *,
    partition: PartitionName = "row",
    compression: CompressionName = "crs",
    tolerance: float = 0.05,
) -> AmortizationReport:
    """Compute the break-even analysis for all three schemes."""
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    setup = {
        scheme: predict(spec, scheme, partition, compression).t_total
        for scheme in ("sfc", "cfs", "ed")
    }
    iteration = spmv_iteration_cost(spec)
    best = min(setup.values())
    worst = max(setup.values())
    # (worst + k·i) <= (1+tol)(best + k·i)  =>  k >= (worst-(1+tol)best)/(tol·i)
    if iteration <= 0:
        k = 0 if worst <= (1 + tolerance) * best else math.inf
    else:
        k = max(0.0, (worst - (1 + tolerance) * best) / (tolerance * iteration))
        k = int(math.ceil(k))
    return AmortizationReport(
        spec=spec,
        partition=partition,
        compression=compression,
        setup=setup,
        iteration=iteration,
        iterations_to_5_percent=k,
    )
