"""Supervised process execution: real-fault tolerance for rank workers.

The simulator's fault layer (:mod:`repro.faults`) perturbs *simulated*
messages; this module handles the faults the ``process`` executor newly
made possible: a rank worker — a real OS process — can be OOM-killed,
wedge in a syscall, or die mid-pickle.  Without supervision any of those
takes the whole run down and can leave SharedMemory segments behind.

:class:`SupervisedSession` wraps a bare
:class:`~repro.exec.process.ProcessSession` with four defences:

* **deadlines / watchdog** — every dispatched task carries a wall-clock
  deadline (``task_timeout_s``); the host polls the worker's pipe *and*
  its process sentinel, so a hung (e.g. ``SIGSTOP``-ed) worker is
  detected the moment its deadline passes, not never;
* **crash detection** — pipe-EOF or a closed sentinel before the reply
  surfaces as a typed :class:`WorkerCrashError` carrying the failed rank
  and its last-known task (raised only when recovery is impossible or
  disabled — see below);
* **bounded restart-and-replay** — rank tasks are pure
  ``(value, charges)`` functions of their envelope, so a crashed or hung
  worker is killed, respawned, and its pending task re-dispatched with
  exponential backoff under a per-rank restart budget.  The session's
  store-version cache is wiped with the worker, so replays re-ship every
  referenced value.  Because the replay produces the same value and the
  same deferred charges, results stay **byte-identical to the inline
  simulator by construction** (the ``oschaos`` battery pins this under
  random ``SIGKILL``/``SIGSTOP``);
* **graceful degradation** — when a rank exhausts its restart budget
  (or the platform cannot fork a replacement), the rank is *downgraded*:
  its tasks run inline on the host exactly like the ``sim`` executor,
  the downgrade is recorded in the supervisor summary and obs metrics,
  and the run completes instead of failing.

SharedMemory hygiene rides along: every host-created wire segment is
registered in a per-rank ledger at send time and the dead worker's own
segments are attributable by pid (``reproexec-<pid>-…``), so a crash
sweep reclaims both sides even after ``SIGKILL`` — the autouse conftest
reaper then finds ``/dev/shm`` clean.

Selection mirrors the executor/kernel layers: an explicit
``supervise=`` on ``run_scheme`` / ``ExperimentConfig``, the CLI's
``--supervise spec.json``, the ``REPRO_SUPERVISE`` environment variable
(``1`` for defaults, or a JSON spec path), or a :func:`use_supervision`
scope.  With none of those active, ``ProcessExecutor`` hands out bare
sessions and nothing changes.

See DESIGN.md §"Real-fault supervision" for the simulated-vs-real fault
taxonomy.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from .tasks import ExecutorError, Ref, TaskResult, run_task
from .wire import reap_named_segments, reap_segments_for_pid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.spans import Observability
    from .process import ProcessSession

__all__ = [
    "SupervisedSession",
    "SuperviseSpec",
    "SupervisorSummary",
    "WorkerCrashError",
    "current_supervision",
    "set_default_supervision",
    "use_supervision",
]


class WorkerCrashError(ExecutorError):
    """A rank worker process really died (or hung) and was not recoverable.

    ``rank`` is the physical rank whose worker failed, ``task`` the
    last-known task it was running (``None`` when it died between
    tasks), ``reason`` is ``"crash"`` (pipe-EOF / sentinel) or
    ``"hang"`` (deadline exceeded).  Under supervision this only
    escapes when the restart budget is exhausted *and* degradation is
    disabled (``SuperviseSpec(degrade=False)``).
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int,
        task: str | None = None,
        reason: str = "crash",
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.task = task
        self.reason = reason


@dataclass(frozen=True)
class SuperviseSpec:
    """The supervision plan (all knobs host-side wall-clock).

    ``task_timeout_s`` is the per-task deadline the watchdog enforces;
    ``max_restarts`` is the per-rank worker-restart budget;
    ``backoff_s`` · ``backoff_factor^(attempt-1)`` (capped at
    ``max_backoff_s``) is slept before each respawn; ``degrade=False``
    turns budget exhaustion into a :class:`WorkerCrashError` instead of
    draining the rank onto the inline simulator.
    """

    task_timeout_s: float = 30.0
    max_restarts: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < self.backoff_s:
            raise ValueError(
                f"max_backoff_s ({self.max_backoff_s}) must be >= "
                f"backoff_s ({self.backoff_s})"
            )

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep before restart ``attempt`` (1-based)."""
        raw = self.backoff_s * self.backoff_factor ** max(attempt - 1, 0)
        return min(raw, self.max_backoff_s)

    # ------------------------------------------------------------------
    # (de)serialisation — mirrors FaultSpec's strict JSON contract
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "task_timeout_s": self.task_timeout_s,
            "max_restarts": self.max_restarts,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "max_backoff_s": self.max_backoff_s,
            "degrade": self.degrade,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SuperviseSpec":
        """Build a spec from a plain mapping; unknown keys fail loudly."""
        known = {
            "task_timeout_s", "max_restarts", "backoff_s",
            "backoff_factor", "max_backoff_s", "degrade",
        }
        unknown = set(raw) - known
        if unknown:
            raise ValueError(
                f"unknown supervise-spec keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        kwargs: dict[str, Any] = {}
        for key in ("task_timeout_s", "backoff_s", "backoff_factor", "max_backoff_s"):
            if key in raw:
                kwargs[key] = float(raw[key])
        if "max_restarts" in raw:
            kwargs["max_restarts"] = int(raw["max_restarts"])
        if "degrade" in raw:
            if not isinstance(raw["degrade"], bool):
                raise ValueError(
                    f"degrade must be a JSON boolean, got {raw['degrade']!r}"
                )
            kwargs["degrade"] = raw["degrade"]
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "SuperviseSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "SuperviseSpec":
        """Load a spec from a JSON file (the CLI's ``--supervise``)."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


@dataclass(frozen=True)
class SupervisorSummary:
    """What real-fault supervision did during one machine's session.

    Kept import-cycle-free like
    :class:`~repro.recovery.summary.RecoverySummary` so
    :mod:`repro.core.base` can carry it on ``SchemeResult`` under
    ``TYPE_CHECKING``.  All counters are cumulative over the session
    (a machine reused across runs keeps accumulating).
    """

    #: worker deaths detected via pipe-EOF / process sentinel
    crashes: int = 0
    #: workers that blew their task deadline and were hard-killed
    hangs: int = 0
    #: worker respawns performed (bounded by ``max_restarts`` per rank)
    restarts: int = 0
    #: task re-executions after a death (on a fresh worker or inline)
    replays: int = 0
    #: ranks drained onto the inline simulator (budget exhausted)
    downgrades: int = 0
    #: those ranks, ascending
    degraded_ranks: tuple[int, ...] = field(default=())
    #: SharedMemory segments reclaimed from crash sweeps
    reaped_segments: int = 0
    #: shutdown joins that had to escalate to terminate/kill
    escalations: int = 0

    @property
    def clean(self) -> bool:
        """True when no real fault was observed (the common case)."""
        return not (
            self.crashes or self.hangs or self.restarts or self.replays
            or self.downgrades or self.reaped_segments or self.escalations
        )

    def line(self) -> str:
        """One-line human summary (mirrors ``SchemeResult.fault_line``)."""
        if self.clean:
            return "supervisor: on, no real faults"
        parts = ["supervisor:"]
        for name in (
            "crashes", "hangs", "restarts", "replays",
            "reaped_segments", "escalations",
        ):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value}")
        if self.downgrades:
            parts.append(f"downgraded={list(self.degraded_ranks)}")
        return " ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (used by ``result_to_dict`` and the CLI)."""
        return {
            "crashes": self.crashes,
            "hangs": self.hangs,
            "restarts": self.restarts,
            "replays": self.replays,
            "downgrades": self.downgrades,
            "degraded_ranks": list(self.degraded_ranks),
            "reaped_segments": self.reaped_segments,
            "escalations": self.escalations,
        }


# ----------------------------------------------------------------------
# dynamic scoping (mirrors repro.exec.dispatch / repro.kernels.dispatch)
# ----------------------------------------------------------------------
_default_spec: SuperviseSpec | None = None
_scope_stack: list[SuperviseSpec] = []
_env_cache: dict[str, SuperviseSpec] = {}

#: REPRO_SUPERVISE values meaning "defaults on" / "off"
_ENV_ON = {"1", "on", "true", "default"}
_ENV_OFF = {"", "0", "off", "false"}


def set_default_supervision(spec: SuperviseSpec | None) -> None:
    """Install ``spec`` as the process-wide default supervision plan."""
    global _default_spec
    _default_spec = spec


def _supervision_from_env() -> SuperviseSpec | None:
    raw = os.environ.get("REPRO_SUPERVISE", "").strip()
    if raw.lower() in _ENV_OFF:
        return None
    if raw not in _env_cache:
        if raw.lower() in _ENV_ON:
            _env_cache[raw] = SuperviseSpec()
        else:
            _env_cache[raw] = SuperviseSpec.from_file(raw)
    return _env_cache[raw]


def current_supervision() -> SuperviseSpec | None:
    """The plan a new process session resolves to (``None`` = bare)."""
    if _scope_stack:
        return _scope_stack[-1]
    if _default_spec is not None:
        return _default_spec
    return _supervision_from_env()


@contextmanager
def use_supervision(spec: SuperviseSpec | None) -> Iterator[SuperviseSpec | None]:
    """Dynamically scope supervision; ``None`` is a no-op scope."""
    if spec is None:
        yield current_supervision()
        return
    _scope_stack.append(spec)
    try:
        yield spec
    finally:
        _scope_stack.pop()


# ----------------------------------------------------------------------
# the supervised session
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    """One dispatched-but-uncollected task, with everything replay needs."""

    seq: int
    rank: int
    task: str
    ctx_rank: int
    kwargs: dict[str, Any]
    refs: dict[str, tuple[str, int, Any]]
    backend: str
    count_kernels: bool
    handle: Any = None
    pid: int | None = None
    deadline: float = 0.0
    result: TaskResult | None = None


#: metric help strings, one counter per supervisor action
_METRIC_HELP = {
    "crashes": "Rank worker deaths detected (pipe-EOF / sentinel)",
    "hangs": "Rank workers hard-killed after blowing a task deadline",
    "restarts": "Rank worker respawns performed by the supervisor",
    "replays": "Tasks re-executed after a worker death",
    "downgrades": "Ranks drained onto the inline simulator",
    "reaped_segments": "SharedMemory segments reclaimed by crash sweeps",
    "escalations": "Shutdown joins escalated to terminate/kill",
}


class SupervisedSession:
    """A :class:`ProcessSession` wrapped with real-fault tolerance.

    Exposes the same session protocol (``inline`` / ``dispatch`` /
    ``result`` / ``reset`` / ``kill_rank`` / ``shutdown``) so the
    :class:`~repro.exec.pool.RankPool` and the machine drive it
    unchanged, plus :meth:`supervisor_summary` for result plumbing.
    """

    inline = False

    def __init__(self, inner: "ProcessSession", spec: SuperviseSpec) -> None:
        from ..obs.spans import NULL_OBS

        self.inner = inner
        self.spec = spec
        self.n_procs = inner.n_procs
        self._obs: "Observability" = NULL_OBS
        self._seq = count()
        #: physical rank -> its one outstanding task
        self._pending: dict[int, _Pending] = {}
        #: physical rank -> host-created segment names possibly in flight
        self._segments: dict[int, list[str]] = {}
        #: physical rank -> restarts consumed from the budget
        self._restarts: dict[int, int] = {}
        #: ranks drained onto the inline simulator
        self._degraded: set[int] = set()
        self._crashes = 0
        self._hangs = 0
        self._replays = 0
        self._reaped = 0
        self._escalations = 0
        inner.set_segment_sink(self._note_segment)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_obs(self, obs: "Observability") -> None:
        """Route supervisor counters/spans into the machine's recorder."""
        self._obs = obs

    def _count(self, what: str, amount: int = 1) -> None:
        self._obs.count(
            f"repro_supervisor_{what}_total", amount, help=_METRIC_HELP[what]
        )

    # ------------------------------------------------------------------
    # session protocol
    # ------------------------------------------------------------------
    def dispatch(
        self,
        rank: int,
        task: str,
        ctx_rank: int,
        kwargs: dict[str, Any],
        refs: dict[str, tuple[str, int, Any]],
        *,
        backend: str,
        count_kernels: bool,
    ) -> tuple[str, int, int]:
        """Start ``task`` under supervision; returns an opaque handle."""
        pending = _Pending(
            seq=next(self._seq), rank=rank, task=task, ctx_rank=ctx_rank,
            kwargs=kwargs, refs=refs, backend=backend,
            count_kernels=count_kernels,
        )
        self._pending[rank] = pending
        if rank in self._degraded:
            self._run_degraded(pending)
        else:
            self._launch(pending)
        return ("sup", rank, pending.seq)

    def result(self, handle: tuple[str, int, int]) -> TaskResult:
        """Collect one task, healing crashes/hangs along the way."""
        _, rank, seq = handle
        pending = self._pending.get(rank)
        if pending is None or pending.seq != seq:
            raise ExecutorError(
                f"worker for rank {rank} was restarted; task {seq} is lost"
            )
        del self._pending[rank]
        while pending.result is None:
            remaining = pending.deadline - time.monotonic()
            try:
                reply = self.inner.try_result(
                    pending.handle, timeout=max(remaining, 0.0)
                )
            except ExecutorError as err:
                self._recover(pending, "crash", err)
            else:
                if reply is not None:
                    # FIFO pipe: our reply proves every envelope we sent
                    # this worker was consumed — its segments are gone
                    self._segments.pop(rank, None)
                    return reply
                if remaining <= 0:
                    self._recover(pending, "hang", None)
        return pending.result

    def reset(self) -> None:
        self.inner.reset()

    def kill_rank(self, rank: int) -> None:
        """Simulated fail-stop death: never resurrected by the supervisor.

        The pending task (if any) is dropped — a later ``result`` raises
        the same lost-task :class:`ExecutorError` a bare session raises —
        and the rank's wire segments are swept with the worker.
        """
        self._pending.pop(rank, None)
        pid = self.inner.worker_pid(rank)
        self.inner.kill_rank(rank)
        self._sweep(rank, pid)

    def shutdown(self) -> int:
        """Tear the inner session down; sweep the segment ledger last."""
        escalated = self.inner.shutdown()
        if escalated:
            self._escalations += escalated
            self._count("escalations", escalated)
        for rank in list(self._segments):
            self._sweep(rank, None)
        return escalated

    # ------------------------------------------------------------------
    # supervision internals
    # ------------------------------------------------------------------
    def _launch(self, pending: _Pending) -> None:
        """(Re-)dispatch ``pending`` to its worker, healing dispatch crashes."""
        try:
            pending.handle = self.inner.dispatch(
                pending.rank, pending.task, pending.ctx_rank,
                pending.kwargs, pending.refs,
                backend=pending.backend,
                count_kernels=pending.count_kernels,
            )
        except ExecutorError as err:
            # _recover either re-launched (recursively, with a fresh
            # handle and deadline), degraded (result computed), or
            # raised — re-dispatching here would double-submit
            self._recover(pending, "crash", err)
            return
        pending.pid = self.inner.worker_pid(pending.rank)
        pending.deadline = time.monotonic() + self.spec.task_timeout_s

    def _recover(
        self, pending: _Pending, kind: str, cause: BaseException | None
    ) -> None:
        """Heal one worker death: kill, sweep, then restart or degrade."""
        rank = pending.rank
        if kind == "hang":
            self._hangs += 1
            self._count("hangs")
        else:
            self._crashes += 1
            self._count("crashes")
        pid = pending.pid if pending.pid is not None else self.inner.worker_pid(rank)
        self.inner.kill_worker(rank)
        self._sweep(rank, pid)
        used = self._restarts.get(rank, 0)
        if used >= self.spec.max_restarts:
            self._downgrade(pending, kind, cause)
            return
        self._restarts[rank] = used + 1
        self._count("restarts")
        self._replays += 1
        self._count("replays")
        with self._obs.span(
            "supervisor.restart",
            rank=str(rank), task=pending.task, kind=kind,
        ):
            delay = self.spec.backoff_for(used + 1)
            if delay > 0:
                time.sleep(delay)
            self._launch(pending)

    def _downgrade(
        self, pending: _Pending, kind: str, cause: BaseException | None
    ) -> None:
        """Budget exhausted: drain the rank onto the inline simulator."""
        rank = pending.rank
        if not self.spec.degrade:
            raise WorkerCrashError(
                f"worker for rank {rank} {'hung' if kind == 'hang' else 'crashed'} "
                f"running task {pending.task!r} and its restart budget "
                f"({self.spec.max_restarts}) is exhausted",
                rank=rank, task=pending.task, reason=kind,
            ) from cause
        self._degraded.add(rank)
        self._count("downgrades")
        self._replays += 1
        self._count("replays")
        with self._obs.span(
            "supervisor.degrade",
            rank=str(rank), task=pending.task, kind=kind,
        ):
            self._run_degraded(pending)

    def _run_degraded(self, pending: _Pending) -> None:
        """Run ``pending`` inline, exactly like the ``sim`` executor.

        Refs resolve from the values the pool captured at submit time
        (the host-side source of truth).  Kernel calls are *not* counted
        task-side: inline execution happens inside the machine's ambient
        observed kernel scope, like every ``sim`` task, so counting here
        would double.
        """
        from ..kernels import use_backend

        resolved = {
            name: pending.refs[name][2] if isinstance(value, Ref) else value
            for name, value in pending.kwargs.items()
        }
        with use_backend(pending.backend):
            pending.result = run_task(
                pending.task, pending.ctx_rank, resolved, count_kernels=False
            )

    # ------------------------------------------------------------------
    # SharedMemory hygiene
    # ------------------------------------------------------------------
    def _note_segment(self, rank: int, name: str) -> None:
        """Ledger hook: one host-created segment is in flight to ``rank``."""
        self._segments.setdefault(rank, []).append(name)

    def _sweep(self, rank: int, pid: int | None) -> None:
        """Reclaim segments a dead worker can no longer consume or unlink.

        Host-created segments come from the ledger (names the worker had
        not necessarily consumed); worker-created result segments are
        attributable by the dead worker's pid.  Only safe because the
        worker is confirmed dead (killed and joined) before the sweep.
        """
        reaped = reap_named_segments(self._segments.pop(rank, []))
        if pid is not None:
            reaped += reap_segments_for_pid(pid)
        if reaped:
            self._reaped += len(reaped)
            self._count("reaped_segments", len(reaped))

    # ------------------------------------------------------------------
    def supervisor_summary(self) -> SupervisorSummary:
        """Snapshot of everything supervision did so far this session."""
        return SupervisorSummary(
            crashes=self._crashes,
            hangs=self._hangs,
            restarts=sum(self._restarts.values()),
            replays=self._replays,
            downgrades=len(self._degraded),
            degraded_ranks=tuple(sorted(self._degraded)),
            reaped_segments=self._reaped,
            escalations=self._escalations,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return (
            f"<SupervisedSession p={self.n_procs} "
            f"restarts={sum(self._restarts.values())} "
            f"degraded={sorted(self._degraded)}>"
        )
