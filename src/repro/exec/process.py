"""The rank-per-process executor: one OS process per simulated rank.

Topology: the coordinator (the process driving the
:class:`~repro.machine.machine.Machine`) owns the simulated clock, the
trace ledger, the fault injector and every mailbox; each rank gets one
long-lived daemon worker connected by a duplex pipe, with large frames
riding :mod:`repro.exec.wire`'s shared-memory segments.  Workers execute
registered rank tasks (:mod:`repro.exec.tasks`) — pure receiver-side
arithmetic — and return values plus deferred cost charges; the
coordinator replays those charges deterministically in rank order, which
is why the trace is byte-identical to the inline simulator no matter how
execution interleaves in wall-clock time.

What is parallel: the receiver-side kernels (compress / unpack / decode /
SpMV partials) across ranks.  What stays coordinated: sends, the fault
injector's RNG, retries/acks, membership, all cost accounting.  See
DESIGN.md §"Execution tiers".

Worker lifecycle
----------------
Workers spawn lazily on first dispatch (``fork`` start method where the
platform has it — ``REPRO_EXEC_START_METHOD`` overrides), are restarted
transparently after :meth:`ProcessSession.kill_rank` (fail-stop death —
the simulated rank's worker is terminated along with its state, exactly
as the simulator wipes the dead rank's processor), and are reaped by
:meth:`ProcessSession.shutdown`, a ``weakref.finalize``, or the test
suite's :func:`reap_all_sessions` safety net.

Store cache
-----------
Task kwargs may carry :class:`~repro.exec.tasks.Ref` markers naming
objects in the rank's host-side processor memory (the source of truth).
The session keeps a ``(rank, key) → version`` table mirroring
:class:`~repro.machine.processor.Processor` store versions and pushes a
value to its worker only when the worker's copy is stale — iterative
apps (repeated SpMV on the same locals) ship each local array once.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import warnings
import weakref
from itertools import count
from multiprocessing import connection
from typing import Any, Callable

from .dispatch import Executor
from .tasks import ExecutorError, Ref, TaskResult, run_task
from .wire import recv_msg, send_msg

__all__ = [
    "ProcessExecutor",
    "ProcessSession",
    "reap_all_sessions",
    "shutdown_escalations",
]

#: every live session, for the test-suite orphan reaper
_LIVE_SESSIONS: "weakref.WeakSet[ProcessSession]" = weakref.WeakSet()

#: per-step grace period for teardown joins (tests shrink this)
_JOIN_GRACE_S = 2.0

#: workers that ever needed forced termination at shutdown, process-wide
_escalations_total = 0
_escalation_warned = False


def shutdown_escalations() -> int:
    """Shutdown joins that escalated to terminate/kill in this process."""
    return _escalations_total


def _note_escalations(n: int) -> None:
    """Count ``n`` forced terminations; warn the host once per process."""
    global _escalations_total, _escalation_warned
    _escalations_total += n
    if not _escalation_warned:
        _escalation_warned = True
        warnings.warn(
            f"{n} rank worker(s) ignored the stop envelope and were "
            "forcibly terminated (join -> terminate -> kill); a worker "
            "that wedges at shutdown usually hung or stopped mid-task",
            RuntimeWarning,
            stacklevel=3,
        )


def reap_all_sessions() -> int:
    """Shut down every live session; returns how many were reaped."""
    sessions = list(_LIVE_SESSIONS)
    for session in sessions:
        session.shutdown()
    return len(sessions)


def _start_method() -> str:
    """The multiprocessing start method for rank workers.

    ``fork`` keeps worker startup cheap enough to run the whole tier-1
    suite under ``REPRO_EXECUTOR=process``; platforms without it (and
    ``REPRO_EXEC_START_METHOD`` users) fall back to ``spawn``.
    """
    override = os.environ.get("REPRO_EXEC_START_METHOD")
    if override:
        return override
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"  # pragma: no cover - non-fork platforms


def _worker_main(conn: Any, rank: int) -> None:
    """One rank's worker loop: receive envelopes, run tasks, reply.

    Envelopes (coordinator → worker):

    * ``("value", key, value)`` — store-cache push;
    * ``("task", id, name, ctx_rank, backend, count_kernels, kwargs)`` —
      run a task (``Ref`` markers in ``kwargs`` resolve from the store);
    * ``("clear",)`` — drop the store (machine reset);
    * ``("stop",)`` — exit.

    Replies are ``("result", id, TaskResult)``, strictly FIFO.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the coordinator decides
    from ..kernels import dispatch as kernel_dispatch
    from ..kernels import use_backend

    # a forked worker inherits whatever dynamic kernel scope the
    # coordinator had open; tasks select their backend explicitly
    kernel_dispatch._scope_stack.clear()
    kernel_dispatch._call_hooks.clear()
    store: dict[str, Any] = {}
    while True:
        try:
            envelope = recv_msg(conn)
        except (EOFError, OSError):  # pragma: no cover - coordinator died
            break
        op = envelope[0]
        if op == "stop":
            break
        if op == "clear":
            store.clear()
            continue
        if op == "value":
            _, key, value = envelope
            store[key] = value
            continue
        _, task_id, name, ctx_rank, backend, count_kernels, kwargs = envelope
        try:
            resolved = {
                k: store[v.key] if isinstance(v, Ref) else v
                for k, v in kwargs.items()
            }
            with use_backend(backend):
                result = run_task(
                    name, ctx_rank, resolved, count_kernels=count_kernels
                )
        except Exception as err:  # infrastructure failure, not task error
            result = TaskResult(error=ExecutorError(repr(err)))
        try:
            send_msg(conn, ("result", task_id, result))
        except Exception as err:
            # unpicklable value/error: ship the charges with a diagnosis
            send_msg(
                conn,
                (
                    "result",
                    task_id,
                    TaskResult(
                        charges=result.charges,
                        kernel_calls=result.kernel_calls,
                        wall_s=result.wall_s,
                        error=ExecutorError(
                            f"rank {rank}: result not transferable: {err!r}"
                        ),
                    ),
                ),
            )
    conn.close()


class ProcessSession:
    """One machine's pool of rank workers plus the store-version cache."""

    inline = False

    def __init__(self, n_procs: int) -> None:
        self.n_procs = n_procs
        self._ctx = multiprocessing.get_context(_start_method())
        # start the resource-tracker daemon *before* any worker forks: a
        # worker forked first would lazily spawn its own tracker on its
        # first SharedMemory attach, and its unregisters would then never
        # reach the parent's daemon — which warns about (and re-unlinks)
        # every host-created segment at exit
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._workers: list[Any] = [None] * n_procs
        self._conns: list[Any] = [None] * n_procs
        #: worker generation per rank; handles from an older generation
        #: can never match a restarted worker's replies
        self._gen = [0] * n_procs
        #: (rank, key) -> version the rank's worker last received
        self._cache: dict[tuple[int, str], int] = {}
        #: supervisor hook: called ``(rank, segment_name)`` for every
        #: host-created SharedMemory segment the moment it exists, so a
        #: crash sweep can reclaim segments a dead worker never consumed
        self._segment_sink: Callable[[int, str], None] | None = None
        self._task_ids = count()
        _LIVE_SESSIONS.add(self)
        self._finalizer = weakref.finalize(self, _shutdown_impl, self._workers, self._conns)

    # ------------------------------------------------------------------
    def _ensure_worker(self, rank: int) -> Any:
        """The rank's live pipe endpoint, (re)spawning the worker if needed."""
        if not 0 <= rank < self.n_procs:
            raise ValueError(f"rank {rank} out of range for p={self.n_procs}")
        worker = self._workers[rank]
        if worker is not None and worker.is_alive():
            return self._conns[rank]
        if worker is not None:  # died or was killed: forget its state
            self._forget_rank(rank)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, rank),
            name=f"repro-rank-{rank}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._workers[rank] = proc
        self._conns[rank] = parent_conn
        return parent_conn

    def _forget_rank(self, rank: int) -> None:
        conn = self._conns[rank]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._workers[rank] = None
        self._conns[rank] = None
        self._gen[rank] += 1
        for cache_key in [k for k in self._cache if k[0] == rank]:
            del self._cache[cache_key]

    # ------------------------------------------------------------------
    def dispatch(
        self,
        rank: int,
        task: str,
        ctx_rank: int,
        kwargs: dict[str, Any],
        refs: dict[str, tuple[str, int, Any]],
        *,
        backend: str,
        count_kernels: bool,
    ) -> tuple[int, int, int]:
        """Start ``task`` on rank ``rank``'s worker; returns a handle.

        ``refs`` maps kwarg names to ``(key, version, value)``; values
        whose version the worker already holds stay home.
        """
        conn = self._ensure_worker(rank)
        task_id = next(self._task_ids)
        sink = self._segment_sink
        on_segment = None if sink is None else (lambda name: sink(rank, name))
        try:
            for key, version, value in refs.values():
                if self._cache.get((rank, key)) != version:
                    send_msg(conn, ("value", key, value), on_segment=on_segment)
                    self._cache[(rank, key)] = version
            send_msg(
                conn,
                ("task", task_id, task, ctx_rank, backend, count_kernels, kwargs),
                on_segment=on_segment,
            )
        except (OSError, BrokenPipeError) as err:
            raise ExecutorError(
                f"worker for rank {rank} is unreachable: {err!r}"
            ) from err
        return (rank, self._gen[rank], task_id)

    def result(self, handle: tuple[int, int, int]) -> TaskResult:
        """Block for one dispatched task's result.

        Replies are FIFO per worker; results abandoned by an aborted run
        (a scheme that raised mid-collection) are drained and discarded
        here until the requested task id arrives.
        """
        rank, gen, task_id = handle
        if gen != self._gen[rank] or self._conns[rank] is None:
            raise ExecutorError(
                f"worker for rank {rank} was restarted; task {task_id} is lost"
            )
        conn = self._conns[rank]
        while True:
            try:
                reply = recv_msg(conn)
            except (EOFError, OSError) as err:
                self._forget_rank(rank)
                raise ExecutorError(
                    f"worker for rank {rank} died before returning task "
                    f"{task_id}: {err!r}"
                ) from err
            if reply[0] == "result" and reply[1] == task_id:
                result: TaskResult = reply[2]
                return result
            # an older, abandoned task's reply: discard and keep reading

    # ------------------------------------------------------------------
    # supervision primitives (repro.exec.supervise drives these)
    # ------------------------------------------------------------------
    def set_segment_sink(self, sink: Callable[[int, str], None] | None) -> None:
        """Install the supervisor's host-created-segment ledger hook."""
        self._segment_sink = sink

    def worker_pid(self, rank: int) -> int | None:
        """The rank's live worker pid (``None`` when not spawned)."""
        worker = self._workers[rank]
        return worker.pid if worker is not None else None

    def kill_worker(self, rank: int) -> int | None:
        """Hard-kill the rank's worker; returns its pid for attribution.

        ``SIGKILL`` (not terminate) so even a ``SIGSTOP``-ped worker —
        on which a ``SIGTERM`` would stay pending forever — dies now.
        The worker's state is forgotten; the next dispatch respawns.
        """
        worker = self._workers[rank]
        if worker is None:
            return None
        pid: int | None = worker.pid
        if worker.is_alive():
            worker.kill()
            worker.join(timeout=_JOIN_GRACE_S)
        self._forget_rank(rank)
        return pid

    def try_result(
        self, handle: tuple[int, int, int], timeout: float
    ) -> TaskResult | None:
        """Poll one dispatched task for up to ``timeout`` seconds.

        Waits on the worker's pipe *and* its process sentinel; returns
        ``None`` when the worker is alive but silent past the timeout
        (the supervisor's hang-detection window) and raises
        :class:`ExecutorError` when the worker died first (pipe-EOF or
        sentinel) — buffered replies are still drained before the
        sentinel is believed.
        """
        rank, gen, task_id = handle
        if gen != self._gen[rank] or self._conns[rank] is None:
            raise ExecutorError(
                f"worker for rank {rank} was restarted; task {task_id} is lost"
            )
        conn = self._conns[rank]
        worker = self._workers[rank]
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            ready = connection.wait(
                [conn, worker.sentinel], timeout=max(remaining, 0.0)
            )
            if conn in ready:
                try:
                    reply = recv_msg(conn)
                except (EOFError, OSError) as err:
                    self._forget_rank(rank)
                    raise ExecutorError(
                        f"worker for rank {rank} died before returning task "
                        f"{task_id}: {err!r}"
                    ) from err
                if reply[0] == "result" and reply[1] == task_id:
                    result: TaskResult = reply[2]
                    return result
                continue  # an abandoned task's reply: discard, keep reading
            if worker.sentinel in ready:
                self._forget_rank(rank)
                raise ExecutorError(
                    f"worker for rank {rank} died before returning task "
                    f"{task_id}: process exited"
                )
            if remaining <= 0:
                return None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Machine reset: clear every worker's store (and the cache)."""
        self._cache.clear()
        for rank, conn in enumerate(self._conns):
            worker = self._workers[rank]
            if conn is None or worker is None or not worker.is_alive():
                continue
            try:
                send_msg(conn, ("clear",))
            except (OSError, BrokenPipeError):  # pragma: no cover
                self._forget_rank(rank)

    def kill_rank(self, rank: int) -> None:
        """Fail-stop death: terminate the rank's worker and drop its state.

        Mirrors the simulator wiping a dead rank's processor; a later
        machine reset simply respawns the worker on next use.
        """
        worker = self._workers[rank]
        if worker is not None and worker.is_alive():
            worker.terminate()
            worker.join(timeout=5)
            if worker.is_alive():  # e.g. SIGSTOPped: the TERM stays pending
                worker.kill()
                worker.join(timeout=5)
        self._forget_rank(rank)
        self._workers[rank] = None

    def shutdown(self) -> int:
        """Stop every worker and close every pipe (idempotent).

        Returns how many workers ignored the stop envelope and needed
        the join → terminate → kill escalation (also counted in the
        process-wide :func:`shutdown_escalations` metric, with a
        once-per-process warning on the host).
        """
        escalated = _shutdown_impl(self._workers, self._conns)
        for rank in range(self.n_procs):
            self._workers[rank] = None
            self._conns[rank] = None
            self._gen[rank] += 1
        self._cache.clear()
        self._finalizer.detach()
        _LIVE_SESSIONS.discard(self)
        if escalated:
            _note_escalations(escalated)
        return escalated

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        live = sum(1 for w in self._workers if w is not None and w.is_alive())
        return f"<ProcessSession p={self.n_procs} live_workers={live}>"


def _shutdown_impl(workers: list[Any], conns: list[Any]) -> int:
    """Teardown shared by :meth:`shutdown` and the GC finalizer.

    Takes the mutable lists (not the session) so ``weakref.finalize``
    holds no reference cycle back to the session object.  Returns the
    number of workers that ignored the stop envelope and had to be
    escalated join → terminate → kill; the final ``kill`` rung matters
    because a stopped (``SIGSTOP``) worker never delivers the pending
    ``SIGTERM`` — only ``SIGKILL`` fells it, and dropping through with
    the worker alive would leak a zombie into the host's process table.
    """
    for worker, conn in zip(workers, conns):
        if conn is not None and worker is not None and worker.is_alive():
            try:
                send_msg(conn, ("stop",))
            except (OSError, BrokenPipeError):  # pragma: no cover
                pass
    escalated = 0
    for worker in workers:
        if worker is not None and worker.is_alive():
            worker.join(timeout=_JOIN_GRACE_S)
            if worker.is_alive():  # wedged worker: escalate
                escalated += 1
                worker.terminate()
                worker.join(timeout=_JOIN_GRACE_S)
                if worker.is_alive():  # stopped/unkillable-by-TERM: kill
                    worker.kill()
                    worker.join(timeout=_JOIN_GRACE_S)
    for conn in conns:
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
    return escalated


class ProcessExecutor(Executor):
    """One worker process per rank, shared-memory wire buffers.

    When a supervision plan is in scope (``--supervise`` /
    ``REPRO_SUPERVISE`` / :func:`~repro.exec.supervise.use_supervision`),
    the session comes wrapped in a
    :class:`~repro.exec.supervise.SupervisedSession` — crash/hang
    detection, bounded restart-and-replay and SharedMemory crash sweeps
    ride on top of the bare session transparently.
    """

    name = "process"

    def create_session(self, n_procs: int) -> Any:
        from .supervise import SupervisedSession, current_supervision

        session = ProcessSession(n_procs)
        spec = current_supervision()
        if spec is None:
            return session
        return SupervisedSession(session, spec)
