"""The inline executor: rank tasks run in the coordinating process.

This is the original single-threaded simulator, expressed as the trivial
executor.  The session is a stateless shared singleton — ``inline`` makes
the :class:`~repro.exec.pool.RankPool` run every task at ``submit`` time
inside the machine's ambient kernel scope, so ``dispatch``/``result``
are never called and all lifecycle hooks are no-ops.
"""

from __future__ import annotations

from typing import Any

from .dispatch import Executor

__all__ = ["SimExecutor"]


class _SimSession:
    """The do-nothing session behind every ``sim`` machine."""

    inline = True

    def dispatch(self, *args: Any, **kwargs: Any) -> Any:
        raise RuntimeError("the sim session runs tasks inline at submit()")

    def result(self, handle: Any) -> Any:
        raise RuntimeError("the sim session runs tasks inline at submit()")

    def reset(self) -> None:
        pass

    def kill_rank(self, rank: int) -> None:
        pass

    def shutdown(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return "<SimSession inline>"


_SESSION = _SimSession()


class SimExecutor(Executor):
    """Inline execution (the default; byte-identity reference)."""

    name = "sim"

    def create_session(self, n_procs: int) -> _SimSession:
        return _SESSION
