"""The rank pool: the coordinator side of deferred rank-task execution.

Scheme and app receiver loops drive their per-rank work through one of
these instead of computing inline:

.. code-block:: python

    pool = machine.rank_pool()
    for assignment in plan:                       # fan out
        pool.submit(assignment.rank, "ed.decode", Phase.COMPRESSION,
                    frame=pool.take_frame(assignment.rank, "special-buffer"),
                    conv=conv)
    for assignment in plan:                       # collect, in rank order
        compressed = pool.result(assignment.rank)

``submit`` hands the task to the machine's executor session (inline for
``sim``, a worker process for ``process``); ``result`` waits for the
value, merges the worker's kernel-call counts into the machine's
metrics, **replays the task's deferred charges through the view** and
only then returns (or raises the task's error).  Because the replay
happens in ``result``-call order — the schemes call it in plan order —
the trace ledger records exactly the events the fully-serial receiver
loop recorded, whichever executor ran the arithmetic.

Error positions are part of the byte-identity contract.  A serial
receiver raises ``DeadRankError``/``LookupError`` *at its rank's turn*,
after every earlier rank's charges; :meth:`RankPool.take_frame` therefore
never raises — it returns a :class:`~repro.exec.tasks.PoisonFrame` whose
error :meth:`RankPool.result` re-raises at that exact position.  The
same deferral applies to store-reference resolution (``KeyError`` /
``DeadRankError`` from a dead or empty rank).

Recovery views plug in transparently: a ``SurvivorView`` pool translates
virtual ranks to physical ones for worker addressing and charge replay;
a ``GhostView`` pool runs its ghost ranks inline (their workers are
dead — the host really does that work, and the view translates their
charges onto the host's serial timeline).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..machine.membership import DeadRankError
from ..machine.trace import Phase
from .tasks import PoisonFrame, Ref, TaskResult, WireFrame, run_task

__all__ = ["RankPool"]


class RankPool:
    """Deferred per-rank task execution against one machine (or view)."""

    def __init__(
        self,
        view: Any,
        session: Any,
        *,
        physical: Callable[[int], int] | None = None,
        inline_ranks: Iterable[int] = (),
    ) -> None:
        self.view = view
        self.session = session
        self._physical = physical if physical is not None else lambda r: r
        self._inline_ranks = frozenset(inline_ranks)
        #: rank -> ("error", exc) | ("result", TaskResult) | ("handle", h)
        self._pending: dict[int, tuple[str, Any]] = {}

    # ------------------------------------------------------------------
    # envelope builders
    # ------------------------------------------------------------------
    def take_frame(self, rank: int, tag: str | None = None) -> Any:
        """Pop ``rank``'s oldest matching frame as a :class:`WireFrame`.

        Pop errors (dead rank, empty mailbox) come back as a
        :class:`PoisonFrame` — submitted normally and raised by
        :meth:`result` at the rank's stream position, like the serial
        receiver would.
        """
        try:
            msg = self.view._pop_frame(rank, tag)
        except (DeadRankError, LookupError) as err:
            return PoisonFrame(err)
        return WireFrame(
            rank=msg.dst,
            tag=msg.tag,
            payload=msg.payload,
            n_elements=msg.n_elements,
            seq=msg.seq,
            checksum=msg.checksum,
            verify=self.view.faults is not None,
        )

    def ref(self, key: str) -> Ref:
        """Reference the submitting rank's stored object named ``key``."""
        return Ref(key)

    # ------------------------------------------------------------------
    # submit / result
    # ------------------------------------------------------------------
    def submit(self, rank: int, task: str, phase: Phase, **kwargs: Any) -> None:
        """Queue ``task`` for ``rank``; collect it later with :meth:`result`.

        ``phase`` names the phase the task's charges belong to — the
        static phase-protocol analysis (RL003) classifies the call by it.
        Frame poisons and reference-resolution errors are recorded here
        (frames before references: receive precedes load serially) and
        surface from :meth:`result`.
        """
        if rank in self._pending:
            raise RuntimeError(
                f"rank {rank} already has a pending task; collect it first"
            )
        for value in kwargs.values():
            if isinstance(value, PoisonFrame):
                self._pending[rank] = ("error", value.error)
                return
        try:
            resolved, refs = self._resolve_refs(rank, kwargs)
        except (DeadRankError, KeyError) as err:
            self._pending[rank] = ("error", err)
            return
        if self.session.inline or rank in self._inline_ranks:
            self._pending[rank] = ("result", run_task(task, rank, resolved))
            return
        from ..kernels import current_backend

        # ship the Ref markers, not the values: the session's version
        # cache decides per worker whether the value must travel at all
        handle = self.session.dispatch(
            self._physical(rank),
            task,
            rank,
            kwargs,
            refs,
            backend=current_backend().name,
            count_kernels=self.view.obs.enabled,
        )
        self._pending[rank] = ("handle", handle)

    def result(self, rank: int) -> Any:
        """Collect ``rank``'s task: replay its charges, return its value.

        Deferred charges are replayed through the view's
        ``charge_proc_ops`` (virtual→physical / ghost→host translation
        included) *before* a task error is re-raised — the serial
        receiver charges before it raises too.
        """
        try:
            kind, payload = self._pending.pop(rank)
        except KeyError:
            raise RuntimeError(f"rank {rank} has no pending task") from None
        if kind == "error":
            raise payload
        task_result: TaskResult = (
            self.session.result(payload) if kind == "handle" else payload
        )
        obs = self.view.obs
        if obs.enabled:
            for backend_name, kernel_name in task_result.kernel_calls:
                obs.record_kernel_call(backend_name, kernel_name)
        for charge in task_result.charges:
            self.view.charge_proc_ops(
                rank, charge.n_ops, charge.phase, label=charge.label
            )
        if task_result.error is not None:
            raise task_result.error
        return task_result.value

    # ------------------------------------------------------------------
    def _resolve_refs(
        self, rank: int, kwargs: dict[str, Any]
    ) -> tuple[dict[str, Any], dict[str, tuple[str, int, Any]]]:
        """Resolve :class:`Ref` markers from the host-side processor store.

        Returns the kwargs for inline execution (refs replaced by their
        values) plus the ref table a process session uses for its
        version cache: ``name -> (key, version, value)``.
        """
        refs: dict[str, tuple[str, int, Any]] = {}
        resolved = dict(kwargs)
        for name, value in kwargs.items():
            if isinstance(value, Ref):
                proc = self.view.processor(rank)
                stored = proc.load(value.key)
                version = proc.versions.get(value.key, -1)
                resolved[name] = stored
                refs[name] = (value.key, version, stored)
        return resolved, refs
