"""Wire transport between the coordinator and rank worker processes.

Frames are serialised with pickle protocol 5; large array payloads ride
out-of-band :class:`pickle.PickleBuffer` buffers that are copied into one
:class:`multiprocessing.shared_memory.SharedMemory` segment per message
(above :data:`SHM_THRESHOLD` total bytes) instead of being streamed
through the pipe.  The receiver copies the buffers out of the segment via
``memoryview`` slices, closes its mapping and unlinks the segment — one
segment lives exactly as long as one in-flight message.

Byte-fidelity contract: serialisation must never change payload bytes.
Pickle-5 out-of-band buffers are verbatim copies of the arrays' memory,
so a frame arrives with the exact bytes it was sent with — the property
the executor differential suite pins.

Leak discipline
---------------
Segments are named ``reproexec-<pid>-<n>`` so stragglers are attributable
and sweepable.  Resource-tracker bookkeeping is left to the stdlib: on
Python 3.11 *both* creating and attaching register a segment (the cache
is a set, so the double registration collapses) and ``unlink`` performs
the single unregister — the receiver unlinking after its copy-out leaves
the tracker exactly balanced, with no explicit unregister calls that
could race into double-removes.  :func:`reap_leaked_segments` is the
belt-and-braces sweep the test suite runs after each test for segments
orphaned by a killed worker; it unregisters what it unlinks so the
tracker does not re-unlink (or warn about) swept names at exit.
"""

from __future__ import annotations

import itertools
import os
import pickle
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "SHM_PREFIX",
    "SHM_THRESHOLD",
    "reap_leaked_segments",
    "reap_named_segments",
    "reap_segments_for_pid",
    "recv_msg",
    "send_msg",
]

#: shared-memory segment name prefix (``/dev/shm/<prefix>-...`` on Linux)
SHM_PREFIX = "reproexec"

#: total out-of-band payload bytes above which a message's buffers move
#: through one SharedMemory segment instead of the pipe (64 KiB)
SHM_THRESHOLD = 64 * 1024

_seg_counter = itertools.count()


def _fresh_name() -> str:
    return f"{SHM_PREFIX}-{os.getpid()}-{next(_seg_counter)}"


def _untrack(name: str) -> None:
    """Unregister a *swept* segment so the exit cleanup skips it.

    Only :func:`reap_leaked_segments` calls this: a segment found leaked
    on disk was registered at creation and never unlinked, so exactly one
    unregister rebalances the tracker.  The normal wire path never calls
    it — there ``unlink`` does the one unregister itself.
    """
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def send_msg(
    conn: Any,
    obj: Any,
    *,
    threshold: int = SHM_THRESHOLD,
    on_segment: Callable[[str], None] | None = None,
) -> None:
    """Serialise ``obj`` onto ``conn`` (a duplex ``multiprocessing`` pipe).

    Out-of-band buffers totalling ``threshold`` bytes or more are copied
    into one fresh SharedMemory segment; smaller messages inline them.
    ``on_segment`` (the supervisor's ledger hook) is called with the
    segment name the moment the segment exists — *before* the pipe send —
    so a receiver killed at any later point leaves an attributable name
    for :func:`reap_named_segments`.
    """
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    raws = [buf.raw() for buf in buffers]
    total = sum(r.nbytes for r in raws)
    if total < threshold:
        conn.send(("inline", data, [bytes(r) for r in raws]))
        return
    shm = shared_memory.SharedMemory(create=True, size=total, name=_fresh_name())
    if on_segment is not None:
        on_segment(shm.name)
    try:
        offsets: list[tuple[int, int]] = []
        pos = 0
        for r in raws:
            shm.buf[pos : pos + r.nbytes] = r
            offsets.append((pos, r.nbytes))
            pos += r.nbytes
        conn.send(("shm", shm.name, data, offsets))
    finally:
        shm.close()  # the receiver owns the unlink (and its unregister)


def recv_msg(conn: Any) -> Any:
    """Receive one :func:`send_msg` frame from ``conn`` and deserialise it.

    Raises ``EOFError``/``OSError`` when the peer died — callers translate
    that into a dead-worker diagnosis.
    """
    frame = conn.recv()
    kind = frame[0]
    if kind == "inline":
        _, data, raws = frame
        return pickle.loads(data, buffers=raws)
    _, name, data, offsets = frame
    shm = shared_memory.SharedMemory(name=name)
    try:
        # copy out: the unpickled arrays must own their memory (the
        # segment is gone the moment this function returns)
        buffers = [bytes(shm.buf[pos : pos + length]) for pos, length in offsets]
    finally:
        shm.close()
        try:
            shm.unlink()  # also unregisters — the tracker's one remove
        except FileNotFoundError:  # pragma: no cover - already swept
            pass
    return pickle.loads(data, buffers=buffers)


def reap_leaked_segments() -> list[str]:
    """Unlink every leftover ``reproexec-*`` segment; returns their names.

    Only safe with no live executor session in flight (the test-suite
    reaper shuts sessions down first).  Non-Linux hosts without
    ``/dev/shm`` fall back to a no-op (leaks there are bounded by the
    resource tracker's own exit sweep).
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return []
    reaped = []
    for path in sorted(shm_dir.glob(f"{SHM_PREFIX}-*")):
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent sweep
            continue
        _untrack(path.name)
        reaped.append(path.name)
    return reaped


def reap_named_segments(names: list[str]) -> list[str]:
    """Unlink the ledger ``names`` that still exist; returns those reaped.

    The supervisor's crash sweep for *host-created* segments: the ledger
    over-approximates (a consumed segment's name stays listed until the
    next successful result), so names already unlinked by the receiver
    are silently skipped — no double-unregister reaches the tracker.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return []
    reaped = []
    for name in names:
        try:
            (shm_dir / name).unlink()
        except OSError:
            continue  # consumed (and unlinked) by the worker before it died
        _untrack(name)
        reaped.append(name)
    return reaped


def reap_segments_for_pid(pid: int) -> list[str]:
    """Unlink every segment *created by* process ``pid``; returns names.

    Segment names embed the creator's pid (``reproexec-<pid>-<n>``), so
    a dead worker's in-flight result segments are attributable without a
    ledger.  Only safe once ``pid`` is confirmed dead (killed and
    joined): a live process may still be writing its segment.
    """
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return []
    reaped = []
    for path in sorted(shm_dir.glob(f"{SHM_PREFIX}-{pid}-*")):
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent sweep
            continue
        _untrack(path.name)
        reaped.append(path.name)
    return reaped
