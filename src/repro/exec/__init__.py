"""Executor tiers: where rank tasks run (inline simulator or real processes).

Public surface:

* selection — :func:`get_executor`, :func:`available_executors`,
  :func:`use_executor`, :func:`set_default_executor`,
  :func:`current_executor_name` (``REPRO_EXECUTOR`` sets the default);
* the coordinator API — :class:`RankPool` (via ``machine.rank_pool()``),
  :func:`rank_task` for registering new tasks;
* test/teardown hooks — :func:`reap_all_sessions`,
  :func:`reap_leaked_segments`.

See DESIGN.md §"Execution tiers" for the byte-identity contract.
"""

from .dispatch import (
    Executor,
    available_executors,
    current_executor_name,
    get_executor,
    register_executor,
    set_default_executor,
    use_executor,
)
from .pool import RankPool
from .process import ProcessExecutor, ProcessSession, reap_all_sessions
from .sim import SimExecutor
from .tasks import (
    Charge,
    ExecutorError,
    PoisonFrame,
    Ref,
    TaskContext,
    TaskResult,
    WireFrame,
    get_task,
    rank_task,
    run_task,
)
from .wire import reap_leaked_segments

__all__ = [
    "Charge",
    "Executor",
    "ExecutorError",
    "PoisonFrame",
    "ProcessExecutor",
    "ProcessSession",
    "RankPool",
    "Ref",
    "SimExecutor",
    "TaskContext",
    "TaskResult",
    "WireFrame",
    "available_executors",
    "current_executor_name",
    "get_executor",
    "get_task",
    "rank_task",
    "reap_all_sessions",
    "reap_leaked_segments",
    "register_executor",
    "run_task",
    "set_default_executor",
    "use_executor",
]
