"""Executor tiers: where rank tasks run (inline simulator or real processes).

Public surface:

* selection — :func:`get_executor`, :func:`available_executors`,
  :func:`use_executor`, :func:`set_default_executor`,
  :func:`current_executor_name` (``REPRO_EXECUTOR`` sets the default);
* the coordinator API — :class:`RankPool` (via ``machine.rank_pool()``),
  :func:`rank_task` for registering new tasks;
* supervision — :class:`SuperviseSpec`, :func:`use_supervision`,
  :func:`set_default_supervision`, :func:`current_supervision`
  (``REPRO_SUPERVISE`` sets the default), :class:`SupervisorSummary`,
  :class:`WorkerCrashError` for real crash/hang/leak tolerance on the
  process executor;
* test/teardown hooks — :func:`reap_all_sessions`,
  :func:`reap_leaked_segments`, :func:`shutdown_escalations`.

See DESIGN.md §"Execution tiers" for the byte-identity contract and
§"Real-fault supervision" for the crash/hang/leak taxonomy.
"""

from .dispatch import (
    Executor,
    available_executors,
    current_executor_name,
    get_executor,
    register_executor,
    set_default_executor,
    use_executor,
)
from .pool import RankPool
from .process import (
    ProcessExecutor,
    ProcessSession,
    reap_all_sessions,
    shutdown_escalations,
)
from .sim import SimExecutor
from .supervise import (
    SupervisedSession,
    SuperviseSpec,
    SupervisorSummary,
    WorkerCrashError,
    current_supervision,
    set_default_supervision,
    use_supervision,
)
from .tasks import (
    Charge,
    ExecutorError,
    PoisonFrame,
    Ref,
    TaskContext,
    TaskResult,
    WireFrame,
    get_task,
    rank_task,
    run_task,
)
from .wire import reap_leaked_segments

__all__ = [
    "Charge",
    "Executor",
    "ExecutorError",
    "PoisonFrame",
    "ProcessExecutor",
    "ProcessSession",
    "RankPool",
    "Ref",
    "SimExecutor",
    "SupervisedSession",
    "SuperviseSpec",
    "SupervisorSummary",
    "TaskContext",
    "TaskResult",
    "WireFrame",
    "WorkerCrashError",
    "available_executors",
    "current_executor_name",
    "current_supervision",
    "get_executor",
    "get_task",
    "rank_task",
    "reap_all_sessions",
    "reap_leaked_segments",
    "register_executor",
    "run_task",
    "set_default_executor",
    "set_default_supervision",
    "shutdown_escalations",
    "use_executor",
    "use_supervision",
]
