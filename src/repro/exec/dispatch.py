"""Executor registry and dynamic-scope selection.

An :class:`Executor` decides *where* rank tasks run; two are registered:

* ``"sim"`` (:mod:`repro.exec.sim`) — inline in the coordinating
  process, exactly the single-threaded simulator this repo started as
  (default);
* ``"process"`` (:mod:`repro.exec.process`) — one OS process per
  simulated rank, frames on shared-memory wire buffers.

Selection mirrors the kernel-backend layer (:mod:`repro.kernels.
dispatch`): an explicit ``executor=`` on :class:`~repro.machine.machine.
Machine` / ``run_scheme`` / ``ExperimentConfig``, the CLI's
``--executor``, the ``REPRO_EXECUTOR`` environment variable, or a
:func:`use_executor` scope.  Executor choice can never change a
simulated cost, a wire buffer or a golden trace — only wall-clock
behaviour (the contract of ``tests/exec/test_differential.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Executor",
    "available_executors",
    "current_executor_name",
    "get_executor",
    "register_executor",
    "set_default_executor",
    "use_executor",
]


class Executor:
    """Abstract executor: a factory for rank-task sessions.

    A *session* serves one machine for its lifetime and exposes:

    ``inline`` (attribute)
        True when tasks run in the coordinator at submit time.
    ``dispatch(phys_rank, task, ctx_rank, kwargs, refs, *, backend,
    count_kernels)``
        Start a task on the physical rank's worker; returns a handle.
    ``result(handle)``
        Block until that task's :class:`~repro.exec.tasks.TaskResult`.
    ``reset()`` / ``kill_rank(rank)`` / ``shutdown()``
        Lifecycle hooks driven by the machine (full reset, fail-stop
        death, teardown).
    """

    #: registry name ("sim" | "process")
    name: str = "abstract"

    def create_session(self, n_procs: int) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"<Executor {self.name!r}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Executor] = {}


def register_executor(executor: Executor) -> None:
    """Register an executor under ``executor.name`` (idempotent by name)."""
    _REGISTRY[executor.name] = executor


def _ensure_builtins() -> None:
    if "sim" not in _REGISTRY:
        from .sim import SimExecutor

        register_executor(SimExecutor())
    if "process" not in _REGISTRY:
        from .process import ProcessExecutor

        register_executor(ProcessExecutor())


def available_executors() -> tuple[str, ...]:
    """Names accepted by :func:`get_executor` / ``--executor``, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_executor(name: str) -> Executor:
    """Look an executor up by name; raise ``ValueError`` with the choices."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r} "
            f"(choose from {', '.join(sorted(_REGISTRY))})"
        ) from None


# ----------------------------------------------------------------------
# dynamic scoping
# ----------------------------------------------------------------------
#: process default; the environment can pre-select the parallel backend
#: for an entire run (`REPRO_EXECUTOR=process pytest ...`)
_default_name: str = os.environ.get("REPRO_EXECUTOR", "sim")
#: innermost `use_executor` override, if any
_scope_stack: list[str] = []


def set_default_executor(name: str) -> None:
    """Install ``name`` as the process-wide default executor."""
    get_executor(name)  # validate
    global _default_name
    _default_name = name


def current_executor_name() -> str:
    """The executor name a machine without an explicit one resolves to."""
    return _scope_stack[-1] if _scope_stack else _default_name


@contextmanager
def use_executor(name: str | None) -> Iterator[str]:
    """Dynamically scope the current executor; ``None`` is a no-op scope."""
    if name is None:
        yield current_executor_name()
        return
    get_executor(name)  # validate before pushing
    _scope_stack.append(name)
    try:
        yield name
    finally:
        _scope_stack.pop()
