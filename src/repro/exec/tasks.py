"""Rank tasks: the receiver-side units of work an executor can run anywhere.

A *rank task* is a registered pure function — it sees only what the host
put in its envelope (wire frames, conversion specs, cached store values)
and returns a value plus the :class:`Charge` list it wants recorded.  It
never touches the :class:`~repro.machine.machine.Machine`: the simulated
clock, the trace ledger and the fault machinery stay host-side, and the
coordinator replays each task's charges **in rank order** after the work
is done.  That replay is what makes the process executor byte-identical
to the simulated one: the trace is produced by the same ``charge_*``
calls in the same order regardless of where (or when, in wall-clock
terms) the arithmetic actually ran.

Tasks mirror the receiver loops of the schemes/apps exactly — same
kernels, same charge quantities, same error messages at the same stream
positions (see ``tests/exec/test_differential.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from ..machine.trace import Phase

__all__ = [
    "Charge",
    "ExecutorError",
    "PoisonFrame",
    "Ref",
    "TaskContext",
    "TaskResult",
    "WireFrame",
    "get_task",
    "rank_task",
    "run_task",
]


class ExecutorError(RuntimeError):
    """Executor infrastructure failure (dead worker, broken pipe, ...).

    Never raised for *simulated* conditions — those surface as the exact
    exception the simulated executor would have raised.
    """


@dataclass(frozen=True)
class Charge:
    """One deferred ``charge_proc_ops`` call, replayed by the coordinator."""

    n_ops: int
    phase: Phase
    label: str


@dataclass(frozen=True)
class WireFrame:
    """A popped mailbox message, ready to cross an executor boundary.

    ``rank`` is the *physical* destination rank (checksum failures report
    physical ranks, exactly like ``Machine.receive``).  ``verify`` is
    latched at pop time from whether the machine had a fault injector, so
    the worker needs no fault state to honour the receive contract.
    """

    rank: int
    tag: str
    payload: Any
    n_elements: int
    seq: int
    checksum: int | None
    verify: bool


@dataclass(frozen=True)
class PoisonFrame:
    """A failed frame pop (dead rank / empty mailbox), deferred.

    Popping happens at ``submit`` time but the simulated executor raises
    receive errors at each rank's position in the *result* stream — after
    every earlier rank's charges.  The poison carries the exception to
    that exact position.
    """

    error: BaseException


@dataclass(frozen=True)
class Ref:
    """A by-name reference into a rank's processor store.

    The coordinator resolves it against the host-side
    :class:`~repro.machine.processor.Processor` memory (the source of
    truth) and ships the value to the worker only when the worker's
    cached copy is stale (see the session's version cache).
    """

    key: str


@dataclass(frozen=True)
class TaskResult:
    """What a rank task produced: value, deferred charges, or an error.

    ``error`` holds the exception a simulated run would have raised from
    this rank's receiver code; the coordinator replays ``charges`` first
    (the simulated receiver charges before it raises — e.g. the
    checksum-verify scan precedes a ``CorruptFrameError``) and then
    re-raises it at the rank's stream position.  ``kernel_calls`` are the
    ``(backend, kernel)`` dispatches observed in the worker, merged into
    the host's metrics on arrival.
    """

    value: Any = None
    charges: tuple[Charge, ...] = ()
    kernel_calls: tuple[tuple[str, str], ...] = ()
    wall_s: float = 0.0
    error: BaseException | None = None


class TaskContext:
    """Per-invocation context handed to a rank task."""

    def __init__(self, rank: int) -> None:
        #: the rank the task was submitted as (a *virtual* rank under a
        #: recovery view — task-level error messages use this one)
        self.rank = rank
        self.charges: list[Charge] = []

    def charge(self, n_ops: int, phase: Phase, label: str = "") -> None:
        """Defer one ``charge_proc_ops(rank, n_ops, phase, label)``."""
        self.charges.append(Charge(int(n_ops), phase, label))

    def open_frame(self, frame: WireFrame, *, phase: Phase | None = None) -> Any:
        """Unwrap a frame exactly like ``Machine.receive`` would.

        When the frame was popped on a fault-mode machine and carries a
        checksum, the CRC is re-verified against the wire image — one
        scan op per element, charged to ``phase`` when given — and a
        mismatch raises the same ``CorruptFrameError`` (with the
        *physical* rank) the simulated receive raises.
        """
        if frame.verify and frame.checksum is not None:
            from ..faults.checksum import CorruptFrameError, payload_checksum

            if phase is not None:
                self.charge(frame.n_elements, phase, "checksum-verify")
            if payload_checksum(frame.payload) != frame.checksum:
                raise CorruptFrameError(
                    f"rank {frame.rank}: frame seq={frame.seq} tag={frame.tag!r} "
                    "failed checksum verification after delivery"
                )
        return frame.payload


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_TASKS: dict[str, Callable[..., Any]] = {}


def rank_task(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register ``fn`` as the rank task ``name`` (a decorator)."""

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        _TASKS[name] = fn
        return fn

    return deco


def get_task(name: str) -> Callable[..., Any]:
    try:
        return _TASKS[name]
    except KeyError:
        raise ValueError(
            f"unknown rank task {name!r} (choose from {', '.join(sorted(_TASKS))})"
        ) from None


def run_task(
    name: str,
    rank: int,
    kwargs: dict[str, Any],
    *,
    count_kernels: bool = False,
) -> TaskResult:
    """Execute one task invocation, capturing its outcome as a result.

    ``count_kernels`` installs a kernel-dispatch counting hook for the
    duration (worker processes only — inline execution already runs
    inside the machine's ambient observed kernel scope, so counting
    there again would double).  Exceptions from the task body are
    captured, *with* the charges made before the raise, never propagated.
    """
    fn = get_task(name)
    ctx = TaskContext(rank)
    calls: list[tuple[str, str]] = []
    start = time.perf_counter()
    try:
        if count_kernels:
            from ..kernels import observe_kernel_calls

            with observe_kernel_calls(lambda b, k: calls.append((b, k))):
                value = fn(ctx, **kwargs)
        else:
            value = fn(ctx, **kwargs)
    except Exception as err:
        return TaskResult(
            charges=tuple(ctx.charges),
            kernel_calls=tuple(calls),
            wall_s=time.perf_counter() - start,
            error=err,
        )
    return TaskResult(
        value=value,
        charges=tuple(ctx.charges),
        kernel_calls=tuple(calls),
        wall_s=time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# the scheme / app receiver tasks
# ----------------------------------------------------------------------
@rank_task("sfc.compress")
def _sfc_compress(ctx: TaskContext, frame: WireFrame, kind: str) -> Any:
    """SFC receiver: compress the arrived dense block (CRS/CCS)."""
    from ..core.registry import get_compression

    dense = ctx.open_frame(frame, phase=Phase.DISTRIBUTION)
    compressed = get_compression(kind).from_dense(dense)
    ctx.charge(
        dense.size + 3 * compressed.nnz, Phase.COMPRESSION, "compress"
    )
    return compressed


@rank_task("cfs.unpack")
def _cfs_unpack(
    ctx: TaskContext,
    frame: WireFrame,
    conv: Any,
    kind: str,
    local_shape: tuple[int, int],
) -> Any:
    """CFS receiver: unpack the RO/CO/VL buffer and localise CO."""
    from ..core.registry import get_compression

    buf = ctx.open_frame(frame, phase=Phase.DISTRIBUTION)
    arrays, unpack_ops = buf.unpack()
    ctx.charge(unpack_ops, Phase.DISTRIBUTION, "unpack")
    local_co = conv.to_local(arrays["CO"])
    if conv.ops_per_nonzero:
        ctx.charge(
            conv.ops_per_nonzero * len(local_co),
            Phase.DISTRIBUTION,
            "index-conversion",
        )
    return get_compression(kind)(
        local_shape, arrays["RO"], local_co, arrays["VL"]
    )


@rank_task("ed.decode")
def _ed_decode(ctx: TaskContext, frame: WireFrame, conv: Any) -> Any:
    """ED receiver: decode the Figure-6 special buffer."""
    buf = ctx.open_frame(frame, phase=Phase.DISTRIBUTION)
    compressed, decode_ops = buf.decode(conv)
    ctx.charge(decode_ops, Phase.COMPRESSION, "decode")
    return compressed


@rank_task("spmv.partial")
def _spmv_partial(
    ctx: TaskContext,
    frame: WireFrame,
    local: Any,
    expected_shape: tuple[int, int],
    transpose: bool,
) -> Any:
    """SpMV receiver: the local partial product over the stored array.

    The x-slice frame is checksum-verified but never charged (the
    simulated receive passes ``phase=None`` here).
    """
    from ..sparse.ops import spmv, spmv_transpose

    x_local = ctx.open_frame(frame)
    if local.shape != expected_shape:
        raise ValueError(
            f"rank {ctx.rank}: stored local array shape "
            f"{local.shape} does not match the plan {expected_shape}"
        )
    if transpose:
        y_local = spmv_transpose(local, x_local)
        ctx.charge(2 * local.nnz, Phase.COMPUTE, "spmv-T")
    else:
        y_local = spmv(local, x_local)
        ctx.charge(2 * local.nnz, Phase.COMPUTE, "spmv")
    return y_local


# ----------------------------------------------------------------------
# infrastructure tasks (benchmarks and tests)
# ----------------------------------------------------------------------
@rank_task("exec.echo")
def _echo(ctx: TaskContext, payload: Any = None) -> Any:
    """Return the payload unchanged (wire round-trip fidelity probe)."""
    return payload


@rank_task("exec.sleep")
def _sleep(ctx: TaskContext, seconds: float) -> float:
    """Block this rank for ``seconds`` of wall time.

    The communication-overlap cell of ``bench_parallel.py``: p ranks
    sleeping concurrently finish in ~1×``seconds`` under the process
    executor and p×``seconds`` inline — a compute-independent scaling
    probe that stays honest on single-core CI runners.
    """
    time.sleep(seconds)
    return seconds
