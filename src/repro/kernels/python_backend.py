"""Naive per-element Python implementations — the reference oracle.

Each kernel here is a direct transliteration of the paper's Section 3/4
pseudo-code: one Python-level loop iteration per array element or per
nonzero, no whole-array numpy operations on the hot path.  This backend
is deliberately slow; its job is to be *obviously correct* so the
vectorised :mod:`repro.kernels.numpy_backend` can be proven byte-identical
against it (``tests/kernels/test_differential.py``) instead of merely
"close".

Byte-identity ground rules honoured throughout:

* results are materialised into arrays of the contract dtypes
  (``int64`` indices, ``float64`` values/wire) by per-element assignment,
  so numpy performs the same C-level casts as the fast path's ``astype``;
* float accumulations (``spmv``, duplicate summation downstream of
  ``spgemm_expand``) run in the identical element order as the fast
  path, because float addition is not associative.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .dispatch import KernelBackend

__all__ = ["PythonBackend"]


class PythonBackend(KernelBackend):
    name = "python"

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def coo_from_dense(self, dense: np.ndarray):
        n_rows, n_cols = dense.shape
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for r in range(n_rows):  # row-major scan, one test per element
            for c in range(n_cols):
                v = dense[r, c]
                if v != 0.0:
                    rows.append(r)
                    cols.append(c)
                    vals.append(float(v))
        return (
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals, dtype=np.float64),
        )

    def crs_from_coo(self, shape, rows, cols, values):
        n_rows = int(shape[0])
        nnz = len(rows)
        counts = [0] * n_rows
        for r in rows:
            counts[r] += 1
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        running = 0
        for i in range(n_rows):
            running += counts[i]
            indptr[i + 1] = running
        indices = np.empty(nnz, dtype=np.int64)
        out_vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):  # canonical COO is already row-major
            indices[k] = cols[k]
            out_vals[k] = values[k]
        return indptr, indices, out_vals

    def ccs_from_coo(self, shape, rows, cols, values):
        n_cols = int(shape[1])
        nnz = len(rows)
        counts = [0] * n_cols
        for c in cols:
            counts[c] += 1
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        running = 0
        for j in range(n_cols):
            running += counts[j]
            indptr[j + 1] = running
        # stable counting sort by column: row-major input order is kept
        # within each column, exactly lexsort((rows, cols))'s tie rule
        cursor = [int(indptr[j]) for j in range(n_cols)]
        indices = np.empty(nnz, dtype=np.int64)
        out_vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            j = int(cols[k])
            pos = cursor[j]
            indices[pos] = rows[k]
            out_vals[pos] = values[k]
            cursor[j] = pos + 1
        return indptr, indices, out_vals

    # ------------------------------------------------------------------
    # CFS wire packing
    # ------------------------------------------------------------------
    def pack_segments(self, segments: Sequence[np.ndarray]) -> np.ndarray:
        total = sum(len(s) for s in segments)
        data = np.empty(total, dtype=np.float64)
        pos = 0
        for seg in segments:
            for k in range(len(seg)):  # one move op per element
                data[pos] = seg[k]
                pos += 1
        return data

    def unpack_segment(self, data, offset, length, dtype):
        out = np.empty(length, dtype=dtype)
        for k in range(length):  # one move op per element
            out[k] = data[offset + k]
        return out

    # ------------------------------------------------------------------
    # ED special buffer
    # ------------------------------------------------------------------
    def ed_encode(self, n_seg, counts, seg_of, idx_wire, values) -> np.ndarray:
        nnz = len(values)
        data = np.empty(n_seg + 2 * nnz, dtype=np.float64)
        pos = 0
        k = 0  # next nonzero (segment-major order)
        for i in range(n_seg):
            c = int(counts[i])
            data[pos] = c  # write R_i
            pos += 1
            for _ in range(c):  # write the alternating C/V pairs
                data[pos] = idx_wire[k]
                data[pos + 1] = values[k]
                pos += 2
                k += 1
        return data

    def ed_decode_counts(self, data: np.ndarray, n_seg: int):
        counts = np.empty(n_seg, dtype=np.int64)
        seg_starts = np.empty(n_seg, dtype=np.int64)
        pos = 0
        end = len(data)
        for i in range(n_seg):
            if pos >= end:
                raise ValueError(
                    f"corrupt encoded buffer: walked past the end at segment {i}"
                )
            seg_starts[i] = pos
            r = data[pos]
            c = int(r)
            if c < 0 or r != c:
                raise ValueError(
                    f"corrupt encoded buffer: segment {i} count {r!r} is not a "
                    "non-negative integer"
                )
            counts[i] = c
            pos += 1 + 2 * c
        if pos != end:
            raise ValueError(
                f"corrupt encoded buffer: walked {pos} of {end} elements"
            )
        return counts, seg_starts

    def ed_decode_pairs(self, data, counts, seg_starts, indptr):
        nnz = int(indptr[-1])
        wire_idx = np.empty(nnz, dtype=np.int64)
        values = np.empty(nnz, dtype=np.float64)
        k = 0
        for i in range(len(counts)):
            pos = int(seg_starts[i]) + 1
            for _ in range(int(counts[i])):  # one move per C and per V
                wire_idx[k] = data[pos]
                values[k] = data[pos + 1]
                pos += 2
                k += 1
        return wire_idx, values

    # ------------------------------------------------------------------
    # index conversion
    # ------------------------------------------------------------------
    def shift_indices(self, idx, delta):
        out = np.empty(len(idx), dtype=np.int64)
        for k in range(len(idx)):  # one subtraction/addition per nonzero
            out[k] = idx[k] + delta
        return out

    def gather_indices(self, idx, table):
        out = np.empty(len(idx), dtype=np.int64)
        for k in range(len(idx)):  # one table lookup per nonzero
            out[k] = table[idx[k]]
        return out

    def build_index_lookup(self, global_ids, size):
        lookup = np.full(size, -1, dtype=np.int64)
        for k in range(len(global_ids)):
            lookup[global_ids[k]] = k
        return lookup

    # ------------------------------------------------------------------
    # SpMV traversals (one multiply + one add per stored element)
    # ------------------------------------------------------------------
    def spmv_crs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[0], dtype=np.float64)
        for i in range(shape[0]):
            for k in range(int(indptr[i]), int(indptr[i + 1])):
                y[i] += values[k] * x[indices[k]]
        return y

    def spmv_ccs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[0], dtype=np.float64)
        for j in range(shape[1]):
            for k in range(int(indptr[j]), int(indptr[j + 1])):
                y[indices[k]] += values[k] * x[j]
        return y

    def spmv_coo(self, shape, rows, cols, values, x):
        y = np.zeros(shape[0], dtype=np.float64)
        for k in range(len(values)):
            y[rows[k]] += values[k] * x[cols[k]]
        return y

    def spmv_t_crs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[1], dtype=np.float64)
        for i in range(shape[0]):
            for k in range(int(indptr[i]), int(indptr[i + 1])):
                y[indices[k]] += values[k] * x[i]
        return y

    def spmv_t_ccs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[1], dtype=np.float64)
        for j in range(shape[1]):
            for k in range(int(indptr[j]), int(indptr[j + 1])):
                y[j] += values[k] * x[indices[k]]
        return y

    def spmv_t_coo(self, shape, rows, cols, values, x):
        y = np.zeros(shape[1], dtype=np.float64)
        for k in range(len(values)):
            y[cols[k]] += values[k] * x[rows[k]]
        return y

    # ------------------------------------------------------------------
    # SpGEMM expansion
    # ------------------------------------------------------------------
    def spgemm_expand(self, a_rows, a_cols, a_values, b_indptr, b_indices, b_values):
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        # identical traversal order to the fast path: distinct k ascending,
        # then A's col-k nonzeros in row-major order, then B[k, :]
        for k in sorted(set(int(c) for c in a_cols)):
            lo, hi = int(b_indptr[k]), int(b_indptr[k + 1])
            if lo == hi:
                continue
            for ak in range(len(a_cols)):
                if int(a_cols[ak]) != k:
                    continue
                av = float(a_values[ak])
                ar = int(a_rows[ak])
                for bk in range(lo, hi):
                    rows.append(ar)
                    cols.append(int(b_indices[bk]))
                    vals.append(av * float(b_values[bk]))
        return (
            np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64),
            np.array(vals, dtype=np.float64),
        )
