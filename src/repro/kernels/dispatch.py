"""Backend registry and dynamic-scope selection for the kernel layer.

A :class:`KernelBackend` bundles one implementation of every hot-path
kernel (compression, CFS pack/unpack, ED encode/decode, index conversion,
SpMV/SpGEMM traversals).  Two are registered:

* ``"python"`` (:mod:`repro.kernels.python_backend`) — the per-element
  reference oracle;
* ``"numpy"`` (:mod:`repro.kernels.numpy_backend`) — the vectorised fast
  path (default).

The *current* backend is resolved at call time by the thin wrappers in
:mod:`repro.machine.packing`, :mod:`repro.core.encoded_buffer`,
:mod:`repro.core.index_conversion`, :mod:`repro.sparse` and
:mod:`repro.sparse.ops`; callers never hold a backend object unless they
want one.  Both backends must be *byte-identical* in their outputs — the
contract enforced by ``tests/kernels/test_differential.py`` — so backend
choice can never change a simulated cost, a wire buffer or a golden
trace, only wall-clock speed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Sequence, cast

import numpy as np

__all__ = [
    "KernelBackend",
    "available_backends",
    "current_backend",
    "get_backend",
    "observe_kernel_calls",
    "register_backend",
    "set_default_backend",
    "use_backend",
]


class KernelBackend:
    """Abstract kernel bundle.  Subclasses implement every method.

    All methods operate on plain numpy arrays (never on the sparse
    classes) so the two backends share zero code with each other and the
    python one stays an honest independent oracle.  Output dtypes are part
    of the contract: index arrays are ``int64``, value/wire arrays are
    ``float64``.
    """

    #: registry name ("python" | "numpy")
    name: str = "abstract"

    # -- compression (CRS/CCS from dense or canonical COO) --------------
    def coo_from_dense(self, dense: np.ndarray):
        """``dense -> (rows, cols, values)`` in row-major nonzero order."""
        raise NotImplementedError

    def crs_from_coo(self, shape, rows, cols, values):
        """Canonical (row-major) COO triple -> ``(indptr, indices, values)``."""
        raise NotImplementedError

    def ccs_from_coo(self, shape, rows, cols, values):
        """Canonical COO triple -> column-major ``(indptr, indices, values)``."""
        raise NotImplementedError

    # -- CFS wire packing ------------------------------------------------
    def pack_segments(self, segments: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate 1-D segments into one flat ``float64`` wire buffer."""
        raise NotImplementedError

    def unpack_segment(
        self, data: np.ndarray, offset: int, length: int, dtype: np.dtype
    ) -> np.ndarray:
        """Copy ``data[offset:offset+length]`` out as ``dtype``."""
        raise NotImplementedError

    # -- ED special buffer (Figure 6) ------------------------------------
    def ed_encode(self, n_seg, counts, seg_of, idx_wire, values) -> np.ndarray:
        """Build the Figure-6 buffer ``R_i, C, V, C, V, ...`` per segment.

        ``counts[i]`` is the nonzero count of segment ``i``; ``seg_of``,
        ``idx_wire`` and ``values`` are parallel per-nonzero arrays in
        segment-major order.
        """
        raise NotImplementedError

    def ed_decode_counts(self, data: np.ndarray, n_seg: int):
        """Walk the buffer sequentially -> ``(counts, seg_starts)``.

        Raises ``ValueError`` on a corrupt buffer (negative / non-integral
        ``R_i`` or a walk that does not land exactly on the buffer end).
        """
        raise NotImplementedError

    def ed_decode_pairs(self, data, counts, seg_starts, indptr):
        """Gather the ``C``/``V`` pairs -> ``(wire_idx, values)``."""
        raise NotImplementedError

    # -- index conversion (Cases 3.2.1–3.3.3) -----------------------------
    def shift_indices(self, idx: np.ndarray, delta: int) -> np.ndarray:
        """``idx + delta`` (the offset cases; ``delta`` may be negative)."""
        raise NotImplementedError

    def gather_indices(self, idx: np.ndarray, table: np.ndarray) -> np.ndarray:
        """``table[idx]`` (the non-contiguous map case)."""
        raise NotImplementedError

    def build_index_lookup(self, global_ids: np.ndarray, size: int) -> np.ndarray:
        """Inverse map: ``lookup[global_ids[k]] = k``, ``-1`` elsewhere."""
        raise NotImplementedError

    # -- SpMV / SpGEMM traversals -----------------------------------------
    def spmv_crs(self, shape, indptr, indices, values, x) -> np.ndarray:
        raise NotImplementedError

    def spmv_ccs(self, shape, indptr, indices, values, x) -> np.ndarray:
        raise NotImplementedError

    def spmv_coo(self, shape, rows, cols, values, x) -> np.ndarray:
        raise NotImplementedError

    def spmv_t_crs(self, shape, indptr, indices, values, x) -> np.ndarray:
        raise NotImplementedError

    def spmv_t_ccs(self, shape, indptr, indices, values, x) -> np.ndarray:
        raise NotImplementedError

    def spmv_t_coo(self, shape, rows, cols, values, x) -> np.ndarray:
        raise NotImplementedError

    def spgemm_expand(self, a_rows, a_cols, a_values, b_indptr, b_indices, b_values):
        """Expand ``A·B`` partial products -> ``(rows, cols, vals)``.

        Traversal order is part of the contract (it fixes float summation
        order downstream): distinct ``k`` ascending, then ``A``'s
        nonzeros with column ``k`` in row-major order, then ``B[k,:]``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"<KernelBackend {self.name!r}>"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> None:
    """Register a backend under ``backend.name`` (idempotent by name)."""
    _REGISTRY[backend.name] = backend


def _ensure_builtins() -> None:
    if "numpy" not in _REGISTRY:
        from .numpy_backend import NumpyBackend

        register_backend(NumpyBackend())
    if "python" not in _REGISTRY:
        from .python_backend import PythonBackend

        register_backend(PythonBackend())


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` / ``--backend``, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> KernelBackend:
    """Look a backend up by name; raise ``ValueError`` with the choices."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(choose from {', '.join(sorted(_REGISTRY))})"
        ) from None


# ----------------------------------------------------------------------
# dynamic scoping
# ----------------------------------------------------------------------
#: process default; the environment can pre-select the oracle for an
#: entire run (`REPRO_KERNEL_BACKEND=python pytest ...`)
_default_name: str = os.environ.get("REPRO_KERNEL_BACKEND", "numpy")
#: innermost `use_backend` override, if any
_scope_stack: list[str] = []


def set_default_backend(name: str) -> None:
    """Install ``name`` as the process-wide default backend."""
    get_backend(name)  # validate
    global _default_name
    _default_name = name


#: active kernel-call observation hooks (`observe_kernel_calls` scopes)
_call_hooks: list = []


class _ObservedBackend:
    """Transparent counting proxy around one backend.

    Returned by :func:`current_backend` only while at least one
    :func:`observe_kernel_calls` scope is active; each public kernel
    method fetched through it reports ``(backend_name, kernel_name)`` to
    every hook before delegating.  With no hooks installed the proxy is
    never built, so the un-observed dispatch path is unchanged.
    """

    __slots__ = ("_backend",)

    def __init__(self, backend: KernelBackend) -> None:
        self._backend = backend

    @property
    def name(self) -> str:
        return self._backend.name

    def __getattr__(self, attr: str):
        target = getattr(self._backend, attr)
        if attr.startswith("_") or not callable(target):
            return target
        backend_name = self._backend.name

        def observed(*args, **kwargs):
            for hook in _call_hooks:
                hook(backend_name, attr)
            return target(*args, **kwargs)

        return observed

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"<ObservedBackend {self._backend.name!r}>"


@contextmanager
def observe_kernel_calls(hook) -> Iterator[None]:
    """Scope during which ``hook(backend_name, kernel_name)`` is called
    for every kernel dispatched through :func:`current_backend`.

    Used by the observability layer to count kernel calls per backend;
    costs nothing outside the scope (see :class:`_ObservedBackend`).
    """
    _call_hooks.append(hook)
    try:
        yield
    finally:
        _call_hooks.remove(hook)


def current_backend() -> KernelBackend:
    """The backend hot paths dispatch to right now."""
    name = _scope_stack[-1] if _scope_stack else _default_name
    backend = get_backend(name)
    if _call_hooks:
        # the proxy forwards every kernel attribute to the real backend;
        # it deliberately does not subclass (no shared code), so cast
        return cast(KernelBackend, _ObservedBackend(backend))
    return backend


@contextmanager
def use_backend(name: str | None) -> Iterator[KernelBackend]:
    """Dynamically scope the current backend; ``None`` is a no-op scope."""
    if name is None:
        yield current_backend()
        return
    get_backend(name)  # validate before pushing
    _scope_stack.append(name)
    try:
        yield current_backend()
    finally:
        _scope_stack.pop()
