"""Kernel-dispatch layer: selectable implementations of the hot paths.

The paper's headline claim (ED beats CFS beats SFC) rests on the cost of
the pack/encode/decode inner loops.  This package holds *two* complete
implementations of every such hot path:

* ``"python"`` — naive per-element Python loops, a direct transliteration
  of the paper's Section 3/4 pseudo-code.  Slow, obvious, and therefore
  the **reference oracle**: the differential test suite
  (``tests/kernels/test_differential.py``) asserts the fast backend
  reproduces it byte-for-byte (arrays, wire buffers, cost charges).
* ``"numpy"`` — vectorised NumPy, the production fast path and the
  default.

Selection is dynamically scoped: :func:`use_backend` installs a backend
for a ``with`` block, :func:`set_default_backend` installs one globally,
and the ``REPRO_KERNEL_BACKEND`` environment variable seeds the process
default.  ``Machine(backend=...)``, ``run_scheme(backend=...)`` and the
CLI ``--backend`` flag all funnel into :func:`use_backend`.

See DESIGN.md §"Kernel backends" for the dispatch rules and the oracle
methodology, and ``benchmarks/perf/`` for the regression harness that
keeps the numpy backend ≥ 5× faster on the microbenchmarks.
"""

from .dispatch import (
    KernelBackend,
    available_backends,
    current_backend,
    get_backend,
    observe_kernel_calls,
    register_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    "KernelBackend",
    "available_backends",
    "current_backend",
    "get_backend",
    "observe_kernel_calls",
    "register_backend",
    "set_default_backend",
    "use_backend",
]
