"""Vectorised NumPy implementations of the hot-path kernels (default).

These are the production fast paths: every kernel is a handful of whole-
array numpy operations with no per-element Python loop.  Their outputs —
arrays, dtypes, wire bytes, float summation order — are byte-identical to
the :mod:`repro.kernels.python_backend` oracle by construction, a
contract pinned by ``tests/kernels/test_differential.py``.

Summation-order notes (float addition is not associative, so order is
part of the byte-identity contract):

* ``spmv_*`` accumulate with ``np.add.at``, which adds contributions in
  array order — the same order as the oracle's nonzero-by-nonzero loop.
* ``spgemm_expand`` traverses distinct ``k`` ascending, then ``A``'s
  nonzeros with column ``k`` in row-major order — the oracle walks the
  identical order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .dispatch import KernelBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(KernelBackend):
    name = "numpy"

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def coo_from_dense(self, dense: np.ndarray):
        rows, cols = np.nonzero(dense)
        return (
            rows.astype(np.int64, copy=False),
            cols.astype(np.int64, copy=False),
            dense[rows, cols].astype(np.float64, copy=False),
        )

    def crs_from_coo(self, shape, rows, cols, values):
        n_rows = int(shape[0])
        counts = np.bincount(rows, minlength=n_rows).astype(np.int64)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, np.asarray(cols, dtype=np.int64), np.asarray(values, np.float64)

    def ccs_from_coo(self, shape, rows, cols, values):
        n_cols = int(shape[1])
        order = np.lexsort((rows, cols))
        counts = np.bincount(cols, minlength=n_cols).astype(np.int64)
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return (
            indptr,
            np.asarray(rows, dtype=np.int64)[order],
            np.asarray(values, dtype=np.float64)[order],
        )

    # ------------------------------------------------------------------
    # CFS wire packing
    # ------------------------------------------------------------------
    def pack_segments(self, segments: Sequence[np.ndarray]) -> np.ndarray:
        parts = [np.asarray(s).astype(np.float64, copy=False) for s in segments]
        if not parts:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(parts)

    def unpack_segment(self, data, offset, length, dtype):
        return data[offset : offset + length].astype(dtype)

    # ------------------------------------------------------------------
    # ED special buffer
    # ------------------------------------------------------------------
    def ed_encode(self, n_seg, counts, seg_of, idx_wire, values) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        nnz = len(values)
        data = np.empty(n_seg + 2 * nnz, dtype=np.float64)
        # Segment start offsets in the wire buffer: seg i begins at
        # i + 2 * (nnz in segments < i); its R_i sits there, pairs follow.
        seg_starts = np.arange(n_seg, dtype=np.int64)
        if n_seg:
            seg_starts += 2 * np.concatenate(([0], np.cumsum(counts[:-1])))
        data[seg_starts] = counts
        if nnz:
            # nonzeros arrive grouped by segment; position within segment:
            first_of_seg = np.concatenate(([0], np.cumsum(counts)))[seg_of]
            within = np.arange(nnz, dtype=np.int64) - first_of_seg
            c_pos = seg_starts[seg_of] + 1 + 2 * within
            data[c_pos] = idx_wire
            data[c_pos + 1] = values
        return data

    def ed_decode_counts(self, data: np.ndarray, n_seg: int):
        counts = np.empty(n_seg, dtype=np.int64)
        seg_starts = np.empty(n_seg, dtype=np.int64)
        pos = 0
        end = len(data)
        for i in range(n_seg):  # sequential: R_i's position depends on R_{<i}
            if pos >= end:
                raise ValueError(
                    f"corrupt encoded buffer: walked past the end at segment {i}"
                )
            seg_starts[i] = pos
            r = data[pos]
            c = int(r)
            if c < 0 or r != c:
                raise ValueError(
                    f"corrupt encoded buffer: segment {i} count {r!r} is not a "
                    "non-negative integer"
                )
            counts[i] = c
            pos += 1 + 2 * c
        if pos != end:
            raise ValueError(
                f"corrupt encoded buffer: walked {pos} of {end} elements"
            )
        return counts, seg_starts

    def ed_decode_pairs(self, data, counts, seg_starts, indptr):
        nnz = int(indptr[-1])
        if not nnz:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        first_of_seg = np.repeat(indptr[:-1], counts)
        within = np.arange(nnz, dtype=np.int64) - first_of_seg
        c_pos = np.repeat(seg_starts, counts) + 1 + 2 * within
        wire_idx = data[c_pos].astype(np.int64)
        values = data[c_pos + 1].copy()
        return wire_idx, values

    # ------------------------------------------------------------------
    # index conversion
    # ------------------------------------------------------------------
    def shift_indices(self, idx, delta):
        return idx + delta

    def gather_indices(self, idx, table):
        return table[idx]

    def build_index_lookup(self, global_ids, size):
        lookup = np.full(size, -1, dtype=np.int64)
        lookup[global_ids] = np.arange(len(global_ids), dtype=np.int64)
        return lookup

    # ------------------------------------------------------------------
    # SpMV traversals
    # ------------------------------------------------------------------
    @staticmethod
    def _expand_ptr(indptr: np.ndarray, n: int) -> np.ndarray:
        return np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))

    def spmv_crs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[0], dtype=np.float64)
        np.add.at(y, self._expand_ptr(indptr, shape[0]), values * x[indices])
        return y

    def spmv_ccs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[0], dtype=np.float64)
        np.add.at(y, indices, values * x[self._expand_ptr(indptr, shape[1])])
        return y

    def spmv_coo(self, shape, rows, cols, values, x):
        y = np.zeros(shape[0], dtype=np.float64)
        np.add.at(y, rows, values * x[cols])
        return y

    def spmv_t_crs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[1], dtype=np.float64)
        np.add.at(y, indices, values * x[self._expand_ptr(indptr, shape[0])])
        return y

    def spmv_t_ccs(self, shape, indptr, indices, values, x):
        y = np.zeros(shape[1], dtype=np.float64)
        np.add.at(y, self._expand_ptr(indptr, shape[1]), values * x[indices])
        return y

    def spmv_t_coo(self, shape, rows, cols, values, x):
        y = np.zeros(shape[1], dtype=np.float64)
        np.add.at(y, cols, values * x[rows])
        return y

    # ------------------------------------------------------------------
    # SpGEMM expansion
    # ------------------------------------------------------------------
    def spgemm_expand(self, a_rows, a_cols, a_values, b_indptr, b_indices, b_values):
        rows_out: list[np.ndarray] = []
        cols_out: list[np.ndarray] = []
        vals_out: list[np.ndarray] = []
        b_counts = np.diff(b_indptr)
        for k in np.unique(a_cols):
            nnz_bk = int(b_counts[k])
            if nnz_bk == 0:
                continue
            mask = a_cols == k
            ar = a_rows[mask]
            av = a_values[mask]
            lo, hi = int(b_indptr[k]), int(b_indptr[k + 1])
            b_cols = b_indices[lo:hi]
            b_vals = b_values[lo:hi]
            rows_out.append(np.repeat(ar, nnz_bk))
            cols_out.append(np.tile(b_cols, len(ar)))
            vals_out.append(np.outer(av, b_vals).ravel())
        if not rows_out:
            z = np.empty(0, dtype=np.int64)
            return z, z, np.empty(0, dtype=np.float64)
        return (
            np.concatenate(rows_out),
            np.concatenate(cols_out),
            np.concatenate(vals_out),
        )
