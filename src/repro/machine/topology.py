"""Interconnect topologies of the simulated multicomputer.

The paper's machine (IBM SP2) connects nodes through a multistage switch:
every pair of processors is one hop apart, which is exactly the single-hop
model its ``T_Startup + m·T_Data`` analysis assumes.  We provide that as
:class:`SwitchTopology` (the default) plus ring and 2-D mesh topologies
where messages pay the per-element cost once per traversed link
(store-and-forward) — used by the topology-sensitivity ablation bench to
show the paper's conclusions are robust to (or sharpened by) multi-hop
interconnects: the CFS/ED payload advantage grows with hop count.

Rank convention: the *host* (the paper's array-owning front end, its
``P_0`` in spirit) is rank ``HOST = -1``; compute processors are
``0 .. p-1``.  For hop computations the host sits at position 0 of the
physical network, like an SP2 front-end node on the same switch.
"""

from __future__ import annotations

import math

__all__ = ["HOST", "Topology", "SwitchTopology", "RingTopology", "MeshTopology"]

#: rank of the host / front-end node
HOST = -1


class Topology:
    """Base class: a topology maps (src, dst) pairs to hop counts."""

    name: str = "abstract"

    def __init__(self, n_procs: int) -> None:
        if n_procs <= 0:
            raise ValueError(f"n_procs must be positive, got {n_procs}")
        self.n_procs = n_procs

    def _check(self, rank: int) -> None:
        if rank != HOST and not 0 <= rank < self.n_procs:
            raise ValueError(f"rank {rank} out of range for p={self.n_procs}")

    def hops(self, src: int, dst: int) -> int:
        """Number of network links a message from ``src`` to ``dst`` crosses."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_procs={self.n_procs})"


class SwitchTopology(Topology):
    """Crossbar/multistage switch: every distinct pair is one hop (SP2)."""

    name = "switch"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1


class RingTopology(Topology):
    """Bidirectional ring; the host sits between ranks p-1 and 0.

    Positions on the ring: host = 0, processor r = r + 1, ring size p + 1.
    """

    name = "ring"

    def _pos(self, rank: int) -> int:
        return 0 if rank == HOST else rank + 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        size = self.n_procs + 1
        d = abs(self._pos(src) - self._pos(dst))
        return min(d, size - d)


class MeshTopology(Topology):
    """2-D mesh with X-Y dimension-order routing; host adjacent to node 0.

    Processors occupy a ``rows x cols`` grid in row-major rank order.  A
    message from the host enters at node 0 (one extra hop), mirroring a
    front-end attached at a mesh corner.
    """

    name = "mesh"

    def __init__(self, n_procs: int, mesh_shape: tuple[int, int] | None = None) -> None:
        super().__init__(n_procs)
        if mesh_shape is None:
            r = int(math.isqrt(n_procs))
            while n_procs % r:
                r -= 1
            mesh_shape = (r, n_procs // r)
        rows, cols = mesh_shape
        if rows * cols != n_procs:
            raise ValueError(f"mesh {rows}x{cols} does not hold {n_procs} processors")
        self.mesh_shape = (rows, cols)

    def _coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.mesh_shape[1])

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        extra = 0
        if src == HOST:
            src, extra = 0, 1
            if src == dst:
                return extra
        if dst == HOST:
            dst, extra = 0, extra + 1
            if src == dst:
                return extra
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return extra + abs(r1 - r2) + abs(c1 - c2)

    def __repr__(self) -> str:
        return f"MeshTopology(n_procs={self.n_procs}, mesh_shape={self.mesh_shape})"
