"""Simulated distributed-memory multicomputer (the IBM SP2 stand-in).

Cost model (T_Startup / T_Data / T_Operation), share-nothing processors,
interconnect topologies, wire-buffer packing and a per-phase cost ledger.
"""

from .collectives import allgather, broadcast, gather, reduce, ring_allgather, scatter
from .cost_model import CostModel, ratio_cost_model, sp2_cost_model, unit_cost_model
from .export import dump_json, result_to_dict, trace_to_dict
from .machine import HOST, Machine
from .membership import DeadRankError, DetectionRecord, Membership
from .packing import PackedBuffer
from .processor import Message, Processor
from .timeline import render_timeline
from .topology import MeshTopology, RingTopology, SwitchTopology, Topology
from .trace import Event, EventKind, Phase, PhaseBreakdown, TraceLog

__all__ = [
    "HOST",
    "allgather",
    "broadcast",
    "dump_json",
    "gather",
    "reduce",
    "render_timeline",
    "result_to_dict",
    "ring_allgather",
    "scatter",
    "CostModel",
    "DeadRankError",
    "DetectionRecord",
    "Event",
    "EventKind",
    "Machine",
    "Membership",
    "MeshTopology",
    "Message",
    "PackedBuffer",
    "Phase",
    "PhaseBreakdown",
    "Processor",
    "RingTopology",
    "SwitchTopology",
    "Topology",
    "TraceLog",
    "ratio_cost_model",
    "sp2_cost_model",
    "trace_to_dict",
    "unit_cost_model",
]
