"""Heartbeat/epoch membership: which ranks the *host believes* are alive.

Fail-stop failures (``FailStopSpec``) kill a processor permanently.  The
physical death is the injector's business; this layer models the host's
*knowledge* of it, which is never free: the host only declares a rank dead
after ``detect_after`` consecutive unacknowledged send (or heartbeat)
attempts, each charged the full message cost plus its backoff timeout
through the ordinary cost model.

Every declaration bumps the membership **epoch** — the recovery layer
(src/repro/recovery/) stamps its work with the epoch so stale state from
an earlier membership view is never mixed into a newer one.

:class:`DeadRankError` is how death surfaces to running scheme/app code:

* raised by the reliable-delivery protocol once detection completes
  (``detected=True`` — the timeouts were just charged);
* raised by the simulator guards (``Machine.receive`` /
  ``charge_proc_ops`` / ``processor`` on a dead rank) with
  ``detected=False`` — the node physically cannot run code, but the host
  has not yet paid to learn it died; callers must route through
  :meth:`Machine.confirm_failure` before acting on the knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeadRankError", "DetectionRecord", "Membership"]


class DeadRankError(RuntimeError):
    """A permanently failed rank was addressed (send, receive or compute).

    Attributes
    ----------
    rank:
        The dead processor's (physical) rank.
    detected:
        ``True`` when the host has already paid the missed-ack timeouts
        and declared the rank dead; ``False`` for simulator-guard raises
        (the caller still owes a :meth:`Machine.confirm_failure`).
    missed_acks:
        Unacknowledged attempts charged before this raise (0 when
        ``detected`` is ``False``).
    time_charged:
        Total simulated ms charged for those attempts and their backoff
        timeouts (already recorded in the trace).
    """

    def __init__(
        self,
        rank: int,
        *,
        detected: bool = False,
        missed_acks: int = 0,
        time_charged: float = 0.0,
    ) -> None:
        verb = "declared dead" if detected else "is dead (undetected)"
        super().__init__(
            f"rank {rank} {verb} after {missed_acks} missed ack(s); "
            f"{time_charged:.4f} ms of detection timeouts charged"
        )
        self.rank = rank
        self.detected = detected
        self.missed_acks = missed_acks
        self.time_charged = time_charged


@dataclass(frozen=True)
class DetectionRecord:
    """One rank-death declaration, with what detection cost the host."""

    rank: int
    epoch: int          # membership epoch *after* this declaration
    phase: str          # trace phase the detection was charged to
    missed_acks: int    # unacked attempts paid before declaring
    time_ms: float      # message + backoff time charged for detection


@dataclass
class Membership:
    """The host's view of which ranks are alive, versioned by epoch."""

    n_procs: int
    alive: set[int] = field(default_factory=set)
    epoch: int = 0
    detections: list[DetectionRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.alive:
            self.alive = set(range(self.n_procs))

    def is_alive(self, rank: int) -> bool:
        return rank in self.alive

    @property
    def survivors(self) -> list[int]:
        """Alive ranks in ascending order (the degraded machine's roster)."""
        return sorted(self.alive)

    @property
    def dead(self) -> list[int]:
        return sorted(set(range(self.n_procs)) - self.alive)

    def declare_dead(
        self, rank: int, *, phase: str, missed_acks: int, time_ms: float
    ) -> DetectionRecord:
        """Remove ``rank`` from the roster and bump the epoch.

        Idempotent: re-declaring an already-dead rank returns the original
        record without a new epoch.
        """
        for rec in self.detections:
            if rec.rank == rank:
                return rec
        if rank not in self.alive:  # pragma: no cover - defensive
            raise ValueError(f"rank {rank} is not a member")
        if len(self.alive) == 1:
            raise ValueError(
                f"cannot declare rank {rank} dead: it is the last survivor"
            )
        self.alive.discard(rank)
        self.epoch += 1
        rec = DetectionRecord(
            rank=rank,
            epoch=self.epoch,
            phase=phase,
            missed_acks=missed_acks,
            time_ms=time_ms,
        )
        self.detections.append(rec)
        return rec

    def reset(self) -> None:
        """Restore full membership (used by :meth:`Machine.reset`)."""
        self.alive = set(range(self.n_procs))
        self.epoch = 0
        self.detections.clear()

    @property
    def detection_time_ms(self) -> float:
        return sum(r.time_ms for r in self.detections)

    @property
    def missed_acks_total(self) -> int:
        return sum(r.missed_acks for r in self.detections)

    def __repr__(self) -> str:
        return (
            f"Membership(p={self.n_procs}, alive={self.survivors}, "
            f"epoch={self.epoch})"
        )
