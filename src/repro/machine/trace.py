"""Cost ledger: phases, events and per-phase time breakdowns.

Every action on the simulated machine — an elementary operation batch, a
message — is recorded as an :class:`Event` charged to a :class:`Phase`.
:class:`PhaseBreakdown` then reduces events to the paper's two reported
quantities:

* ``T_Distribution`` — host-side pack + send/receive + receiver-side unpack
  of the distribution phase;
* ``T_Compression`` — compression/encoding/decoding work.

Reduction rule (matching Section 4's accounting): within a phase, host work
is *serial* (summed — the host packs and sends each local array in
sequence) while processor work is *parallel* (the slowest processor
determines the phase time):  ``phase_time = host_time + max_r proc_time[r]``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from .topology import HOST

__all__ = ["Phase", "EventKind", "Event", "TraceLog", "PhaseBreakdown"]


class Phase(enum.Enum):
    """The three phases of a data distribution scheme, plus app compute."""

    PARTITION = "partition"
    COMPRESSION = "compression"
    DISTRIBUTION = "distribution"
    COMPUTE = "compute"


class EventKind(enum.Enum):
    OPS = "ops"          # elementary operations on array elements
    MESSAGE = "message"  # one send/receive pair (original or resend)
    RETRY = "retry"      # a failed attempt's timeout/backoff wait (fault mode)
    FAULT = "fault"      # an injected fault observation (drop/corrupt/...)


@dataclass(frozen=True)
class Event:
    """One charged action.

    ``actor`` is the rank whose time advances: the host for its own ops and
    for whole messages (sequential sends keep the host busy end-to-end); a
    processor rank for receiver-side ops.
    """

    phase: Phase
    kind: EventKind
    actor: int
    time: float
    quantity: int = 0          # ops count or message element count
    label: str = ""
    src: int | None = None     # messages only
    dst: int | None = None


@dataclass
class PhaseBreakdown:
    """Aggregated times for one phase.

    The fault-mode fields (``n_retries``, ``retry_time``, ``n_faults``,
    ``faults_by_label``) stay at their zero defaults on fault-free runs —
    the trace then contains no ``RETRY``/``FAULT`` events at all.
    """

    host_time: float = 0.0
    proc_times: dict[int, float] = field(default_factory=dict)
    n_messages: int = 0
    elements_sent: int = 0
    ops: int = 0
    n_retries: int = 0
    retry_time: float = 0.0
    n_faults: int = 0
    faults_by_label: dict[str, int] = field(default_factory=dict)

    @property
    def max_proc_time(self) -> float:
        return max(self.proc_times.values(), default=0.0)

    @property
    def elapsed(self) -> float:
        """The phase's contribution to total scheme time (see module doc)."""
        return self.host_time + self.max_proc_time


class TraceLog:
    """Append-only event log with per-phase aggregation.

    Observers (the observability layer) can :meth:`subscribe` to see each
    event as it is recorded; with no subscribers ``record`` pays a single
    truthiness check, so the golden paths are unaffected.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._listeners: list = []

    def subscribe(self, callback) -> None:
        """Call ``callback(event)`` for every subsequently recorded event.

        Listeners are read-only observers: they must not record events or
        mutate the log (the cost accounting stays the single source of
        truth).  There is no unsubscribe — a TraceLog and its observers
        share one run's lifetime.
        """
        self._listeners.append(callback)

    def record(self, event: Event) -> None:
        self.events.append(event)
        if self._listeners:
            for callback in self._listeners:
                callback(event)

    # ------------------------------------------------------------------
    def phase_events(self, phase: Phase) -> list[Event]:
        return [e for e in self.events if e.phase is phase]

    def breakdown(self, phase: Phase) -> PhaseBreakdown:
        out = PhaseBreakdown()
        for e in self.phase_events(phase):
            if e.actor == HOST:
                out.host_time += e.time
            else:
                out.proc_times[e.actor] = out.proc_times.get(e.actor, 0.0) + e.time
            if e.kind is EventKind.MESSAGE:
                out.n_messages += 1
                out.elements_sent += e.quantity
            elif e.kind is EventKind.OPS:
                out.ops += e.quantity
            elif e.kind is EventKind.RETRY:
                out.n_retries += 1
                out.retry_time += e.time
            elif e.kind is EventKind.FAULT:
                out.n_faults += 1
                out.faults_by_label[e.label] = (
                    out.faults_by_label.get(e.label, 0) + 1
                )
        # pin the aggregate orders: rank order for per-processor times and
        # label order for fault counts, rather than first-event order —
        # consumers that serialise or zip over these dicts must see the
        # same sequence regardless of which rank's event happened to come
        # first (e.g. a reordered delivery under fault injection)
        out.proc_times = dict(sorted(out.proc_times.items()))
        out.faults_by_label = dict(sorted(out.faults_by_label.items()))
        return out

    def elapsed(self, phase: Phase) -> float:
        return self.breakdown(phase).elapsed

    def overlapped_elapsed(self, phase: Phase) -> float:
        """Phase time under an idealised fully-overlapped send model.

        The paper (and :meth:`elapsed`) assumes the host sends local arrays
        *in sequence*, staying busy for every message.  A machine with p
        independent DMA channels could instead overlap all sends: the
        distribution then ends when the host's own ops, the single longest
        message, and the slowest receiving processor are all done.  Used by
        the sequential-vs-overlapped ablation bench (DESIGN.md §5); a lower
        bound on any real pipelining.
        """
        host_ops = 0.0
        longest_message = 0.0
        proc_times: dict[int, float] = {}
        for e in self.phase_events(phase):
            if e.kind is EventKind.MESSAGE:
                longest_message = max(longest_message, e.time)
            elif e.actor == HOST:
                host_ops += e.time
            else:
                proc_times[e.actor] = proc_times.get(e.actor, 0.0) + e.time
        return host_ops + longest_message + max(proc_times.values(), default=0.0)

    def total_elapsed(self, phases: Iterable[Phase] = Phase) -> float:
        return sum(self.elapsed(ph) for ph in phases)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{ph.value}={self.elapsed(ph):.3f}ms"
            for ph in Phase
            if self.phase_events(ph)
        )
        return f"TraceLog({len(self.events)} events; {parts})"
