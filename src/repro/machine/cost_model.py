"""The machine cost model: ``T_Startup``, ``T_Data``, ``T_Operation``.

Section 4 of the paper analyses every scheme in terms of exactly three
machine parameters:

* ``T_Startup`` — fixed cost of opening a communication channel (one per
  message);
* ``T_Data`` — transmission time per array element;
* ``T_Operation`` — time of one elementary operation on an array element
  (memory access, add/subtract, pack/unpack move ...).

Our simulated multicomputer charges *every* action through a
:class:`CostModel`, so simulated phase times are directly comparable to the
paper's closed forms and to its IBM SP2 measurements (the paper estimates
``T_Data ≈ 1.2 × T_Operation`` on the SP2, Section 5.1 — the
:func:`sp2_cost_model` preset bakes that ratio in and is calibrated so the
n=200..2000 runs land in the paper's millisecond range).

All times are in **milliseconds** so tables print on the same scale as the
paper's Tables 3–5.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "sp2_cost_model", "unit_cost_model", "ratio_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """Per-action costs of the simulated distributed-memory multicomputer.

    Attributes
    ----------
    t_startup:
        ``T_Startup`` — ms per message.
    t_data:
        ``T_Data`` — ms per array element transmitted.
    t_operation:
        ``T_Operation`` — ms per elementary array-element operation.
    """

    t_startup: float
    t_data: float
    t_operation: float

    def __post_init__(self):
        for name in ("t_startup", "t_data", "t_operation"):
            v = getattr(self, name)
            if v < 0:
                raise ValueError(f"{name} must be non-negative, got {v}")

    @property
    def data_op_ratio(self) -> float:
        """``T_Data / T_Operation`` — the quantity Remarks 2 and 5 pivot on."""
        if self.t_operation == 0:
            raise ZeroDivisionError("t_operation is zero; ratio undefined")
        return self.t_data / self.t_operation

    def message_time(self, n_elements: int, *, hops: int = 1) -> float:
        """Time to transmit one message of ``n_elements`` over ``hops`` links.

        The paper's model is single-hop (SP2 switch); multi-hop topologies
        charge the per-element cost once per link (store-and-forward).
        """
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        return self.t_startup + n_elements * self.t_data * hops

    def ops_time(self, n_ops: int | float) -> float:
        """Time of ``n_ops`` elementary operations."""
        if n_ops < 0:
            raise ValueError(f"n_ops must be non-negative, got {n_ops}")
        return n_ops * self.t_operation

    def with_ratio(self, data_op_ratio: float) -> "CostModel":
        """A copy rescaling ``t_data`` to the given ``T_Data/T_Operation``."""
        if data_op_ratio < 0:
            raise ValueError(f"ratio must be non-negative, got {data_op_ratio}")
        return replace(self, t_data=self.t_operation * data_op_ratio)


def sp2_cost_model() -> CostModel:
    """The IBM SP2 calibration used for reproducing Tables 3–5.

    ``T_Startup`` = 40 µs (SP2 MPL/MPI latency class),
    ``T_Data`` = 0.137 µs/element (fits the paper's SFC row-partition
    distribution times: ``p·T_Startup + n²·T_Data`` ≈ 5.6 ms at n=200,
    ≈ 384 ms at n=2000 with p=4), and ``T_Operation = T_Data / 1.2`` as the
    authors estimate from their own measurements.
    """
    t_data = 1.37e-4  # ms per element
    return CostModel(t_startup=0.04, t_data=t_data, t_operation=t_data / 1.2)


def unit_cost_model() -> CostModel:
    """All three parameters equal to 1 — convenient for exact-count tests."""
    return CostModel(t_startup=1.0, t_data=1.0, t_operation=1.0)


def ratio_cost_model(data_op_ratio: float, *, t_startup: float = 0.0) -> CostModel:
    """``t_operation = 1``, ``t_data = ratio`` — for Remark 5 sweeps."""
    return CostModel(t_startup=t_startup, t_data=data_op_ratio, t_operation=1.0)
