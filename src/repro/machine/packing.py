"""Packing arrays into contiguous wire buffers, with move-op accounting.

The paper's distribution phase packs data into a buffer before sending
("RO, CO, and VL for each local sparse array are packed into a buffer and
sent") and unpacks it on arrival; both directions cost one ``T_Operation``
per moved element in the Section 4 analysis.  :class:`PackedBuffer`
implements exactly that: a flat ``float64`` buffer holding named segments,
and reports how many element moves were performed so the machine can charge
them.

Integer segments (RO/CO) are stored as float64 on the wire.  That is
faithful to the element-count accounting (the paper counts *elements*, not
bytes) and loses nothing **as long as every integer fits a double
exactly**: pack/unpack therefore guard the ±2⁵³ exact-integer window and
the declared segment dtype's range, so an int counter silently drifting
through the wire (e.g. an int32 row counter fed a >2³¹ count) raises
instead of wrapping — see ``tests/kernels/test_overflow.py``.

The element moves themselves run on the active kernel backend
(:mod:`repro.kernels`): vectorised numpy by default, or the per-element
python oracle under ``backend="python"`` — byte-identical by contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..kernels import current_backend

__all__ = ["PackedBuffer", "MAX_EXACT_INT"]

#: largest magnitude an integer may have and still be exactly
#: representable in the float64 wire format (2**53)
MAX_EXACT_INT = 1 << 53


def _check_wire_exact(name: str, arr: np.ndarray) -> None:
    """Refuse integers that would lose precision on the float64 wire."""
    if arr.size and np.issubdtype(arr.dtype, np.integer):
        lo, hi = int(arr.min()), int(arr.max())
        if hi > MAX_EXACT_INT or lo < -MAX_EXACT_INT:
            raise OverflowError(
                f"segment {name!r} holds integers outside ±2**53 "
                f"(min={lo}, max={hi}); they cannot ride the float64 wire "
                "exactly"
            )


def _check_dtype_fits(name: str, segment: np.ndarray, dtype: np.dtype) -> None:
    """Refuse wire values that do not round-trip into the declared dtype."""
    if not segment.size or not np.issubdtype(dtype, np.integer):
        return
    if np.any(segment != np.trunc(segment)):
        raise ValueError(
            f"segment {name!r} carries non-integral wire values for "
            f"integer dtype {dtype}"
        )
    info = np.iinfo(dtype)
    lo, hi = float(segment.min()), float(segment.max())
    if lo < info.min or hi > info.max:
        raise ValueError(
            f"segment {name!r} wire values [{lo:.0f}, {hi:.0f}] do not fit "
            f"the declared dtype {dtype} "
            f"([{info.min}, {info.max}]) — integer counter overflow"
        )


@dataclass(frozen=True)
class PackedBuffer:
    """A contiguous wire buffer of named, typed segments.

    Attributes
    ----------
    data:
        The flat ``float64`` wire buffer.
    layout:
        ``(name, length, dtype_str)`` per segment, in buffer order.
    """

    data: np.ndarray
    layout: tuple[tuple[str, int, str], ...]

    @property
    def n_elements(self) -> int:
        """Wire size in elements (what the network charges ``T_Data`` for)."""
        return int(len(self.data))

    @property
    def checksum(self) -> int:
        """CRC-32 of the wire bytes (the reliable-delivery frame check)."""
        from ..faults.checksum import wire_checksum

        return wire_checksum(self.data)

    @classmethod
    def pack(
        cls, arrays: Mapping[str, np.ndarray], order: Sequence[str] | None = None
    ) -> tuple["PackedBuffer", int]:
        """Pack named 1-D arrays into one buffer.

        Returns ``(buffer, move_ops)`` where ``move_ops`` is the number of
        element moves performed (= total elements), the quantity the host
        is charged ``T_Operation`` each for.  Runs on the active kernel
        backend.
        """
        names = list(order) if order is not None else list(arrays)
        segments = []
        layout = []
        for name in names:
            arr = np.asarray(arrays[name])
            if arr.ndim != 1:
                raise ValueError(f"segment {name!r} must be 1-D, got shape {arr.shape}")
            _check_wire_exact(name, arr)
            segments.append(arr)
            layout.append((name, len(arr), str(arr.dtype)))
        data = current_backend().pack_segments(segments)
        buf = cls(data=data, layout=tuple(layout))
        return buf, buf.n_elements

    def unpack(self) -> tuple[dict[str, np.ndarray], int]:
        """Split back into named arrays with their original dtypes.

        Returns ``(arrays, move_ops)``; ``move_ops`` equals total elements
        (each element is copied out once), charged to the receiver.
        Raises ``ValueError`` when a wire value does not round-trip into
        its declared integer dtype (corruption or counter overflow).
        """
        kernels = current_backend()
        # validate coverage *before* touching any segment: a truncated or
        # padded buffer must fail identically on every kernel backend
        # (the python oracle indexes element-by-element and would other-
        # wise die with an IndexError instead of this ValueError)
        total = sum(length for _, length, _ in self.layout)
        if total != len(self.data):
            raise ValueError(
                f"layout covers {total} elements but buffer has {len(self.data)}"
            )
        out: dict[str, np.ndarray] = {}
        offset = 0
        for name, length, dtype in self.layout:
            dt = np.dtype(dtype)
            _check_dtype_fits(name, self.data[offset : offset + length], dt)
            out[name] = kernels.unpack_segment(self.data, offset, length, dt)
            offset += length
        return out, self.n_elements

    def segment(self, name: str) -> np.ndarray:
        """Read a single named segment (original dtype) without full unpack."""
        offset = 0
        for seg_name, length, dtype in self.layout:
            if seg_name == name:
                return self.data[offset : offset + length].astype(np.dtype(dtype))
            offset += length
        raise KeyError(name)
