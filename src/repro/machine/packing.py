"""Packing arrays into contiguous wire buffers, with move-op accounting.

The paper's distribution phase packs data into a buffer before sending
("RO, CO, and VL for each local sparse array are packed into a buffer and
sent") and unpacks it on arrival; both directions cost one ``T_Operation``
per moved element in the Section 4 analysis.  :class:`PackedBuffer`
implements exactly that: a flat ``float64`` buffer holding named segments,
and reports how many element moves were performed so the machine can charge
them.

Integer segments (RO/CO) are stored as float64 on the wire.  That is
faithful to the element-count accounting (the paper counts *elements*, not
bytes) and loses nothing: indices are exactly representable in a double far
beyond any array size we simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["PackedBuffer"]


@dataclass(frozen=True)
class PackedBuffer:
    """A contiguous wire buffer of named, typed segments.

    Attributes
    ----------
    data:
        The flat ``float64`` wire buffer.
    layout:
        ``(name, length, dtype_str)`` per segment, in buffer order.
    """

    data: np.ndarray
    layout: tuple[tuple[str, int, str], ...]

    @property
    def n_elements(self) -> int:
        """Wire size in elements (what the network charges ``T_Data`` for)."""
        return int(len(self.data))

    @property
    def checksum(self) -> int:
        """CRC-32 of the wire bytes (the reliable-delivery frame check)."""
        from ..faults.checksum import wire_checksum

        return wire_checksum(self.data)

    @classmethod
    def pack(
        cls, arrays: Mapping[str, np.ndarray], order: Sequence[str] | None = None
    ) -> tuple["PackedBuffer", int]:
        """Pack named 1-D arrays into one buffer.

        Returns ``(buffer, move_ops)`` where ``move_ops`` is the number of
        element moves performed (= total elements), the quantity the host
        is charged ``T_Operation`` each for.
        """
        names = list(order) if order is not None else list(arrays)
        segments = []
        layout = []
        for name in names:
            arr = np.asarray(arrays[name])
            if arr.ndim != 1:
                raise ValueError(f"segment {name!r} must be 1-D, got shape {arr.shape}")
            segments.append(arr.astype(np.float64, copy=False))
            layout.append((name, len(arr), str(arr.dtype)))
        data = (
            np.concatenate(segments)
            if segments
            else np.empty(0, dtype=np.float64)
        )
        buf = cls(data=data, layout=tuple(layout))
        return buf, buf.n_elements

    def unpack(self) -> tuple[dict[str, np.ndarray], int]:
        """Split back into named arrays with their original dtypes.

        Returns ``(arrays, move_ops)``; ``move_ops`` equals total elements
        (each element is copied out once), charged to the receiver.
        """
        out: dict[str, np.ndarray] = {}
        offset = 0
        for name, length, dtype in self.layout:
            segment = self.data[offset : offset + length]
            out[name] = segment.astype(np.dtype(dtype))
            offset += length
        if offset != len(self.data):
            raise ValueError(
                f"layout covers {offset} elements but buffer has {len(self.data)}"
            )
        return out, self.n_elements

    def segment(self, name: str) -> np.ndarray:
        """Read a single named segment (original dtype) without full unpack."""
        offset = 0
        for seg_name, length, dtype in self.layout:
            if seg_name == name:
                return self.data[offset : offset + length].astype(np.dtype(dtype))
            offset += length
        raise KeyError(name)
