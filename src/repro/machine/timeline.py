"""ASCII timeline rendering of a trace — who was busy when.

A quick-look tool for understanding where a scheme's time goes: one lane
for the host and one per processor, with each phase's activity drawn as a
bar scaled to its share of the total.  Because the machine model is
host-serial / processor-parallel rather than globally event-ordered, lanes
show *accumulated busy time per phase*, in phase order — which is exactly
the quantity the paper's analysis reasons about.

Example (ED, row partition, 4 processors)::

    phase        lane   0ms ........................................ 34ms
    compression  host   ##############################
    compression  P0     #
    ...
    distribution host   #########
"""

from __future__ import annotations

from .trace import EventKind, Phase, TraceLog
from .topology import HOST

__all__ = ["render_timeline"]

#: lanes are printed in this phase order (partition is untimed by schemes)
_PHASE_ORDER = [Phase.PARTITION, Phase.COMPRESSION, Phase.DISTRIBUTION, Phase.COMPUTE]


def render_timeline(trace: TraceLog, *, width: int = 50) -> str:
    """Render the trace as an ASCII per-lane busy chart.

    ``width`` is the number of columns representing the longest single
    lane-phase time.  Lanes appear for *every* actor a phase charged —
    including actors whose only activity was zero-time fault observations
    or retry waits (fault mode): a lane whose busy time is pure retry
    backoff is real wall time in the model and must not be omitted.  When
    a lane includes retry waits its legend is annotated with the retry
    share, e.g. ``2.400ms (retry 0.900ms)``.  A trace with no events (or
    only zero-time events) renders a degenerate chart without crashing.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    # (phase, actor, busy incl. retry waits, retry share of busy)
    lanes: list[tuple[Phase, int, float, float]] = []
    for phase in _PHASE_ORDER:
        events = trace.phase_events(phase)
        if not events:
            continue
        busy: dict[int, float] = {}
        retry: dict[int, float] = {}
        for e in events:
            busy[e.actor] = busy.get(e.actor, 0.0) + e.time
            if e.kind is EventKind.RETRY:
                retry[e.actor] = retry.get(e.actor, 0.0) + e.time
        for actor in sorted(busy, key=lambda a: (a != HOST, a)):
            lanes.append((phase, actor, busy[actor], retry.get(actor, 0.0)))
    if not lanes:
        return "(empty trace)"
    scale = max(t for _, _, t, _ in lanes)
    name_w = max(len(p.value) for p, _, _, _ in lanes)
    out = [
        f"{'phase':<{name_w}}  {'lane':<5} 0ms "
        + "." * width
        + f" {scale:.3f}ms"
    ]
    for phase, actor, busy, retry_time in lanes:
        lane = "host" if actor == HOST else f"P{actor}"
        if scale > 0.0 and busy > 0.0:
            bar = "#" * max(1, round(width * busy / scale))
        else:
            bar = ""
        legend = f"{busy:.3f}ms"
        if retry_time > 0.0:
            legend += f" (retry {retry_time:.3f}ms)"
        out.append(
            f"{phase.value:<{name_w}}  {lane:<5} {bar:<{width + 4}} {legend}"
        )
    return "\n".join(out)
