"""The simulated distributed-memory multicomputer.

This is the repo's substitute for the paper's IBM SP2 (see DESIGN.md §2):
a host node that owns the global sparse array, ``p`` share-nothing
processors, an interconnect topology, and a :class:`~repro.machine.
cost_model.CostModel` through which *every* action is charged.  The
distribution schemes in :mod:`repro.core` run on this machine; the phase
times it reports are what the benchmark harness prints next to the paper's
Tables 3–5.

Accounting contract (matches Section 4 of the paper):

* messages are sent **in sequence** by the host ("local sparse arrays ...
  are sent to processors in sequence") — each costs
  ``T_Startup + m·T_Data·hops`` and the host is busy for all of them;
* host-side element operations (compressing the global array, packing
  buffers) are charged to the host serially;
* processor-side operations (unpacking, decoding, local compression) run in
  parallel across processors — a phase ends when the slowest finishes.

The machine *really executes* the data movement: payloads are numpy arrays
physically handed to processor mailboxes, so correctness tests can assert
what every processor ends up holding, and all charged quantities are
derived from the actual buffers built — never from the closed-form
formulas being validated.

Reliable delivery (fault mode)
------------------------------
Attaching a :class:`~repro.faults.injector.FaultInjector` switches every
send onto an ack/retry/timeout protocol (DESIGN.md §"Fault model"):

* each attempt — original or resend — is charged the full
  ``T_Startup + m·T_Data·hops`` message cost to the sender's timeline;
* a failed attempt (drop, checksum-detected corruption, crashed receiver)
  additionally charges the retry policy's exponential-backoff timeout as a
  ``RETRY`` event and is recorded as a ``FAULT`` event;
* delivered frames carry a sequence number (duplicate suppression) and a
  CRC-32 checksum of their wire image; duplicates are discarded at the
  receiver, reordered frames are inserted out of order in the mailbox;
* failures per message are capped at ``retry.max_retries``, after which
  delivery is forced — fault plans are eventually-delivered by contract,
  so the final machine state always equals the fault-free run's.

With ``faults=None`` (the default) none of this code runs: the trace and
all charged costs are byte-identical to the fault-free simulator.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from .cost_model import CostModel, sp2_cost_model
from .membership import DeadRankError, Membership
from .processor import Message, Processor
from .topology import HOST, SwitchTopology, Topology
from .trace import Event, EventKind, Phase, TraceLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.injector import FaultInjector
    from ..obs.spans import Observability

__all__ = ["Machine", "HOST", "DeadRankError"]


class Machine:
    """A host plus ``p`` processors with explicit cost accounting.

    Parameters
    ----------
    n_procs:
        Number of compute processors (the paper's ``p``).
    cost:
        The machine cost model; defaults to the SP2 calibration.
    topology:
        Interconnect; defaults to the SP2-like single-hop switch.
    proc_speeds:
        Optional per-processor speed factors (ops complete ``speed×``
        faster).  Defaults to a homogeneous machine — the paper's setting;
        heterogeneous speeds back the speed-aware-partitioning ablation.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`.  When
        attached, all sends go through the reliable-delivery protocol
        (see module docstring); when ``None`` the machine is the exact
        fault-free simulator.
    backend:
        Kernel backend name (``"python"`` | ``"numpy"``) the schemes and
        apps run their hot paths on while driving this machine; ``None``
        (default) inherits the process-wide default (numpy).  Backend
        choice never changes charged costs or wire bytes — only
        wall-clock speed (the differential suite's contract).
    executor:
        Executor name (``"sim"`` | ``"process"``) rank tasks run on;
        ``None`` (default) resolves the executor layer's current default
        (``REPRO_EXECUTOR`` / :func:`~repro.exec.use_executor`) when the
        first rank pool is created.  Like the kernel backend, executor
        choice never changes charged costs or wire bytes — only where
        the receiver-side arithmetic physically runs (DESIGN.md
        §"Execution tiers").
    obs:
        Optional :class:`~repro.obs.spans.Observability` recorder.  When
        given (and enabled) it subscribes to this machine's trace and
        mirrors every charged event into spans/metrics; when ``None``
        the shared inert :data:`~repro.obs.spans.NULL_OBS` is installed
        and every instrumentation site short-circuits — the golden
        traces pin that this costs nothing and changes nothing.
    """

    def __init__(
        self,
        n_procs: int,
        *,
        cost: CostModel | None = None,
        topology: Topology | None = None,
        proc_speeds: list[float] | None = None,
        faults: "FaultInjector | None" = None,
        backend: str | None = None,
        executor: str | None = None,
        obs: "Observability | None" = None,
    ) -> None:
        if n_procs <= 0:
            raise ValueError(f"n_procs must be positive, got {n_procs}")
        if backend is not None:
            from ..kernels import get_backend

            get_backend(backend)  # validate eagerly: fail at construction
        if executor is not None:
            from ..exec import get_executor

            get_executor(executor)  # validate eagerly: fail at construction
        self.backend = backend
        self.executor = executor
        #: lazily-created executor session (``_executor_session``)
        self._exec_session: Any = None
        self.n_procs = n_procs
        self.cost = cost if cost is not None else sp2_cost_model()
        if proc_speeds is None:
            self.proc_speeds = [1.0] * n_procs
        else:
            if len(proc_speeds) != n_procs:
                raise ValueError(
                    f"need {n_procs} processor speeds, got {len(proc_speeds)}"
                )
            if any(s <= 0 for s in proc_speeds):
                raise ValueError("processor speeds must be positive")
            self.proc_speeds = [float(s) for s in proc_speeds]
        self.topology = topology if topology is not None else SwitchTopology(n_procs)
        if self.topology.n_procs != n_procs:
            raise ValueError(
                f"topology is sized for {self.topology.n_procs} processors, "
                f"machine has {n_procs}"
            )
        self.procs = [Processor(r) for r in range(n_procs)]
        #: the host's view of which ranks are alive (fail-stop detection);
        #: full membership forever on machines without fail-stop faults
        self.membership = Membership(n_procs)
        #: the host's own memory (the global array lives here)
        self.host_memory: dict[str, Any] = {}
        #: messages sent back to the host (gather traffic), arrival order
        self.host_mailbox: list[Message] = []
        self.trace = TraceLog()
        self.faults = faults
        #: sequence numbers the host has accepted (duplicate suppression)
        self._host_seen_seqs: set[int] = set()
        if self.faults is not None:
            self.faults.bind(n_procs)
        if obs is None:
            from ..obs.spans import NULL_OBS

            obs = NULL_OBS
        #: the machine's observability recorder (inert NULL_OBS by default)
        self.obs = obs
        self.obs.attach(self)

    # ------------------------------------------------------------------
    # cost charging
    # ------------------------------------------------------------------
    def charge_host_ops(self, n_ops: int, phase: Phase, label: str = "") -> float:
        """Charge ``n_ops`` elementary operations to the host. Returns ms."""
        t = self.cost.ops_time(n_ops)
        self.trace.record(
            Event(phase, EventKind.OPS, HOST, t, quantity=int(n_ops), label=label)
        )
        return t

    def charge_proc_ops(
        self, rank: int, n_ops: int, phase: Phase, label: str = ""
    ) -> float:
        """Charge ``n_ops`` elementary operations to processor ``rank``.

        A processor with speed ``s`` takes ``1/s`` of the nominal
        ``T_Operation`` per op — the heterogeneous-cluster extension
        (uniform machines keep all speeds at 1, the paper's setting).
        In fault mode an injected per-processor slowdown multiplies the
        time by its (≥ 1) factor.
        """
        self._check_rank(rank)
        self._check_not_failed(rank)
        t = self.cost.ops_time(n_ops) / self.proc_speeds[rank]
        if self.faults is not None:
            t *= self.faults.slowdown_factor(rank)
        self.trace.record(
            Event(phase, EventKind.OPS, rank, t, quantity=int(n_ops), label=label)
        )
        return t

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        *,
        src: int = HOST,
        tag: str = "",
    ) -> float:
        """Transmit ``payload`` (``n_elements`` array elements) to ``dst``.

        Charged to the *sender's* timeline (sequential sends — the paper's
        model).  The payload object itself is handed over by reference;
        share-nothing discipline is the scheme author's responsibility and
        is checked by the test suite's aliasing tests.

        In fault mode the send goes through the reliable-delivery
        protocol; the returned time then covers all attempts plus backoff
        waits.
        """
        self._check_rank(dst)
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        hops = max(self.topology.hops(src, dst), 1)
        if self.faults is not None:
            if src != HOST:
                self._check_not_failed(src)  # dead nodes send nothing
            if src == dst:
                # self-send: the frame never touches the interconnect, so
                # there is nothing for the injector to drop, corrupt,
                # duplicate or reorder.  Charged and delivered exactly
                # like the fault-free path (p=1 edge case; see
                # tests/faults/test_edge_cases.py).
                t = self.cost.message_time(n_elements, hops=hops)
                self.trace.record(
                    Event(
                        phase,
                        EventKind.MESSAGE,
                        src,
                        t,
                        quantity=int(n_elements),
                        label=tag,
                        src=src,
                        dst=dst,
                    )
                )
                self.procs[dst].deliver(
                    Message(
                        src=src, dst=dst, tag=tag,
                        payload=payload, n_elements=n_elements,
                    )
                )
                return t
            if not self.membership.is_alive(dst):
                # the host already paid the detection timeouts for this
                # rank; addressing it again is a programming error in the
                # recovery layer, surfaced for free.
                raise DeadRankError(dst, detected=True)
            return self._reliable_transmit(
                src, dst, payload, n_elements, phase, tag, hops, actor=src
            )
        t = self.cost.message_time(n_elements, hops=hops)
        self.trace.record(
            Event(
                phase,
                EventKind.MESSAGE,
                src,
                t,
                quantity=int(n_elements),
                label=tag,
                src=src,
                dst=dst,
            )
        )
        self.procs[dst].deliver(
            Message(src=src, dst=dst, tag=tag, payload=payload, n_elements=n_elements)
        )
        return t

    def send_to_host(
        self,
        src: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        *,
        tag: str = "",
    ) -> float:
        """Transmit from a processor back to the host (gather traffic).

        The host receives messages serially, so the time is charged to the
        host's timeline — consistent with the sequential-send model.
        """
        self._check_rank(src)
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        hops = max(self.topology.hops(src, HOST), 1)
        if self.faults is not None:
            self._check_not_failed(src)  # dead nodes send nothing
            return self._reliable_transmit(
                src, HOST, payload, n_elements, phase, tag, hops, actor=HOST
            )
        t = self.cost.message_time(n_elements, hops=hops)
        self.trace.record(
            Event(
                phase,
                EventKind.MESSAGE,
                HOST,
                t,
                quantity=int(n_elements),
                label=tag,
                src=src,
                dst=HOST,
            )
        )
        self.host_mailbox.append(
            Message(src=src, dst=HOST, tag=tag, payload=payload, n_elements=n_elements)
        )
        return t

    # ------------------------------------------------------------------
    # reliable delivery (fault mode only)
    # ------------------------------------------------------------------
    def _deliver(self, msg: Message, insert_at: int | None = None) -> bool:
        """Hand a frame to its destination mailbox; False = duplicate."""
        if msg.dst == HOST:
            if msg.seq >= 0 and msg.seq in self._host_seen_seqs:
                return False
            if msg.seq >= 0:
                self._host_seen_seqs.add(msg.seq)
            if insert_at is None:
                self.host_mailbox.append(msg)
            else:
                self.host_mailbox.insert(insert_at, msg)
            return True
        return self.procs[msg.dst].deliver(msg, insert_at=insert_at)

    def _mailbox_len(self, dst: int) -> int:
        return len(self.host_mailbox if dst == HOST else self.procs[dst].mailbox)

    def _reliable_transmit(
        self,
        src: int,
        dst: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        tag: str,
        hops: int,
        *,
        actor: int,
    ) -> float:
        """Send with ack/retry/timeout semantics (see module docstring).

        ``actor`` is the rank whose timeline advances — the sender for
        host→processor traffic, the host for gather traffic (it receives
        serially), matching the fault-free accounting.  Returns the total
        time charged: every attempt costs the full message time, every
        failure adds its exponential-backoff timeout.

        When observability is enabled the whole ack/retry/backoff cycle
        is wrapped in one ``machine.reliable_send`` span (never entered
        on the golden paths — fault-free sends bypass this method).
        """
        if not self.obs.enabled:
            return self._reliable_attempts(
                src, dst, payload, n_elements, phase, tag, hops, actor=actor
            )
        from ..obs.spans import actor_label

        with self.obs.span(
            "machine.reliable_send",
            phase=phase.value,
            src=actor_label(src),
            dst=actor_label(dst),
            tag=tag,
        ):
            return self._reliable_attempts(
                src, dst, payload, n_elements, phase, tag, hops, actor=actor
            )

    def _reliable_attempts(
        self,
        src: int,
        dst: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        tag: str,
        hops: int,
        *,
        actor: int,
    ) -> float:
        """The attempt loop behind :meth:`_reliable_transmit`."""
        from ..faults.checksum import corrupt_payload, payload_checksum
        from ..faults.injector import Attempt

        inj = self.faults
        assert inj is not None
        seq = inj.next_seq()
        cksum = payload_checksum(payload)
        corruptible = cksum is not None and n_elements > 0
        policy = inj.spec.retry
        total = 0.0
        attempt = 0
        missed_acks = 0   # consecutive attempts swallowed by a dead rank
        t_detect = 0.0    # time charged for those missed-ack attempts
        while True:
            attempt += 1
            if dst != HOST and inj.rank_failed(dst):
                # Fail-stop: the destination is permanently dead.  The
                # frame goes onto the wire (full message cost), no ack
                # ever comes back (backoff timeout), and — unlike every
                # transient fault — delivery is never forced.  After
                # ``detect_after`` missed acks the host declares the rank
                # dead and the failure surfaces as DeadRankError.
                t = self.cost.message_time(n_elements, hops=hops)
                self.trace.record(
                    Event(
                        phase, EventKind.MESSAGE, actor, t,
                        quantity=int(n_elements), label=tag, src=src, dst=dst,
                    )
                )
                backoff = policy.backoff_ms(attempt)
                self.trace.record(
                    Event(
                        phase, EventKind.FAULT, actor, 0.0,
                        quantity=int(n_elements),
                        label=Attempt.FAILSTOP.value, src=src, dst=dst,
                    )
                )
                self.trace.record(
                    Event(
                        phase, EventKind.RETRY, actor, backoff,
                        quantity=attempt, label=tag, src=src, dst=dst,
                    )
                )
                total += t + backoff
                t_detect += t + backoff
                missed_acks += 1
                inj.stats.count(phase, "attempts")
                inj.stats.count(phase, "failstop_drops")
                inj.stats.count(phase, "retries")
                if missed_acks >= inj.spec.fail_stop.detect_after:
                    self._declare_dead(
                        dst, phase, missed_acks=missed_acks, time_ms=t_detect
                    )
                    raise DeadRankError(
                        dst,
                        detected=True,
                        missed_acks=missed_acks,
                        time_charged=total,
                    )
                continue
            t = self.cost.message_time(n_elements, hops=hops)
            self.trace.record(
                Event(
                    phase,
                    EventKind.MESSAGE,
                    actor,
                    t,
                    quantity=int(n_elements),
                    label=tag,
                    src=src,
                    dst=dst,
                )
            )
            total += t
            inj.stats.count(phase, "attempts")
            forced = attempt > policy.max_retries
            outcome = (
                Attempt.DELIVER
                if forced
                else inj.attempt_outcome(dst, corruptible=corruptible)
            )
            if outcome is Attempt.CORRUPT:
                # the frame physically arrives bit-flipped; the receiving
                # NIC recomputes the CRC, sees the mismatch and NACKs.
                damaged = corrupt_payload(payload, inj.rng)
                if damaged is None or payload_checksum(damaged) == cksum:
                    outcome = Attempt.DELIVER  # nothing corruptible after all
                else:
                    inj.stats.count(phase, "corruptions")
            if outcome is Attempt.DROP:
                inj.stats.count(phase, "drops")
            elif outcome is Attempt.CRASH:
                inj.stats.count(phase, "crash_drops")
            if outcome is not Attempt.DELIVER:
                self.trace.record(
                    Event(
                        phase,
                        EventKind.FAULT,
                        actor,
                        0.0,
                        quantity=int(n_elements),
                        label=outcome.value,
                        src=src,
                        dst=dst,
                    )
                )
                backoff = policy.backoff_ms(attempt)
                self.trace.record(
                    Event(
                        phase,
                        EventKind.RETRY,
                        actor,
                        backoff,
                        quantity=attempt,
                        label=tag,
                        src=src,
                        dst=dst,
                    )
                )
                total += backoff
                inj.stats.count(phase, "retries")
                continue
            if forced:
                inj.stats.count(phase, "forced")
            msg = Message(
                src=src,
                dst=dst,
                tag=tag,
                payload=payload,
                n_elements=n_elements,
                seq=seq,
                checksum=cksum,
            )
            insert_at = inj.reorder_insert(self._mailbox_len(dst))
            if insert_at is not None:
                inj.stats.count(phase, "reorders")
                self.trace.record(
                    Event(
                        phase,
                        EventKind.FAULT,
                        actor,
                        0.0,
                        quantity=int(n_elements),
                        label="reorder",
                        src=src,
                        dst=dst,
                    )
                )
            self._deliver(msg, insert_at)
            if dst != HOST:
                # a doomed rank counts accepted frames towards its
                # fail-stop budget; once it hits after_accepts it is dead
                # for all subsequent traffic (this frame dies with it).
                inj.record_accept(dst)
            # the network may duplicate the delivered frame; the copy
            # occupies the wire again and is discarded at the receiver.
            if inj.should_duplicate():
                t_dup = self.cost.message_time(n_elements, hops=hops)
                self.trace.record(
                    Event(
                        phase,
                        EventKind.MESSAGE,
                        actor,
                        t_dup,
                        quantity=int(n_elements),
                        label=tag,
                        src=src,
                        dst=dst,
                    )
                )
                total += t_dup
                inj.stats.count(phase, "attempts")
                accepted = self._deliver(msg, None)
                if not accepted:
                    inj.stats.count(phase, "duplicates")
                    self.trace.record(
                        Event(
                            phase,
                            EventKind.FAULT,
                            actor,
                            0.0,
                            quantity=int(n_elements),
                            label="duplicate",
                            src=src,
                            dst=dst,
                        )
                    )
            return total

    def receive(
        self, rank: int, tag: str | None = None, *, phase: Phase | None = None
    ) -> Message:
        """Pop processor ``rank``'s oldest message, verifying its checksum.

        Fault-free machines simply forward to the processor's mailbox —
        no extra events, no behaviour change.  In fault mode the receiver
        additionally verifies the frame's CRC-32 against its wire image
        (one scan op per element, charged to ``phase`` when given) and
        raises :class:`~repro.faults.checksum.CorruptFrameError` on a
        mismatch — which the reliable-delivery protocol guarantees never
        happens unless someone mutated a delivered payload.
        """
        self._check_rank(rank)
        self._check_not_failed(rank)
        msg = self.procs[rank].receive(tag)
        if self.faults is not None and msg.checksum is not None:
            from ..faults.checksum import CorruptFrameError, payload_checksum

            if phase is not None:
                self.charge_proc_ops(
                    rank, msg.n_elements, phase, label="checksum-verify"
                )
            if payload_checksum(msg.payload) != msg.checksum:
                raise CorruptFrameError(
                    f"rank {rank}: frame seq={msg.seq} tag={msg.tag!r} failed "
                    "checksum verification after delivery"
                )
        return msg

    def _pop_frame(self, rank: int, tag: str | None = None) -> Message:
        """Pop ``rank``'s oldest message *without* checksum verification.

        The rank-pool half of :meth:`receive`: the pool wraps the popped
        message into a wire frame and the executor's task performs the
        verification (and its charge) receiver-side, so the combined
        behaviour — guards, charge, error text — matches :meth:`receive`
        exactly.  Scheme code uses :meth:`receive` or a pool, never this.
        """
        self._check_rank(rank)
        self._check_not_failed(rank)
        return self.procs[rank].receive(tag)

    def host_receive(self, tag: str | None = None) -> Message:
        """Pop the host's oldest message (optionally the oldest with ``tag``)."""
        for i, msg in enumerate(self.host_mailbox):
            if tag is None or msg.tag == tag:
                return self.host_mailbox.pop(i)
        raise LookupError(
            "host: no message" + (f" with tag {tag!r}" if tag else "")
        )

    # ------------------------------------------------------------------
    # fail-stop detection and membership (fault mode only)
    # ------------------------------------------------------------------
    def _check_not_failed(self, rank: int) -> None:
        """Simulator guard: code cannot run on / talk from a dead node.

        Raises :class:`DeadRankError` with ``detected`` reflecting whether
        the host has already paid for the knowledge.  No-op on fault-free
        machines and for live ranks.
        """
        if self.faults is not None and self.faults.rank_failed(rank):
            raise DeadRankError(
                rank, detected=not self.membership.is_alive(rank)
            )

    def _declare_dead(
        self, rank: int, phase: Phase, *, missed_acks: int, time_ms: float
    ) -> None:
        """Record a completed detection: epoch bump + trace event + wipe."""
        inj = self.faults
        if inj is not None:
            inj.stats.count(phase, "detections")
        self.membership.declare_dead(
            rank, phase=phase.value, missed_acks=missed_acks, time_ms=time_ms
        )
        self.trace.record(
            Event(
                phase, EventKind.FAULT, HOST, 0.0,
                quantity=missed_acks, label="fail-stop-detect",
                src=HOST, dst=rank,
            )
        )
        self.obs.record_detection(rank, missed_acks, time_ms)
        # the node is gone: everything it held or had queued dies with it
        self.procs[rank].reset()
        if self._exec_session is not None:
            self._exec_session.kill_rank(rank)

    def confirm_failure(self, rank: int, phase: Phase) -> float:
        """Heartbeat-probe a suspected-dead rank until the detect threshold.

        Used when death is learned receive-side (a simulator guard raised
        ``DeadRankError(detected=False)``): the host cannot act on
        knowledge it has not paid for, so it sends ``detect_after``
        zero-element heartbeat probes — each charged ``T_Startup·hops``
        plus the retry policy's backoff — and only then declares the rank
        dead.  Returns the total time charged (0.0 if already declared).
        """
        self._check_rank(rank)
        if not self.membership.is_alive(rank):
            return 0.0
        inj = self.faults
        if inj is None:
            raise ValueError("confirm_failure needs an attached fault injector")
        if not inj.rank_failed(rank):
            raise ValueError(f"rank {rank} is alive; nothing to confirm")
        fs = inj.spec.fail_stop
        policy = inj.spec.retry
        hops = max(self.topology.hops(HOST, rank), 1)
        total = 0.0
        with self.obs.span(
            "machine.confirm_failure", phase=phase.value, rank=str(rank)
        ):
            for attempt in range(1, fs.detect_after + 1):
                t = self.cost.message_time(0, hops=hops)
                self.trace.record(
                    Event(
                        phase, EventKind.MESSAGE, HOST, t,
                        quantity=0, label="heartbeat", src=HOST, dst=rank,
                    )
                )
                backoff = policy.backoff_ms(attempt)
                self.trace.record(
                    Event(
                        phase, EventKind.RETRY, HOST, backoff,
                        quantity=attempt, label="heartbeat", src=HOST, dst=rank,
                    )
                )
                total += t + backoff
                inj.stats.count(phase, "attempts")
                inj.stats.count(phase, "heartbeats")
                inj.stats.count(phase, "retries")
            self._declare_dead(
                rank, phase, missed_acks=fs.detect_after, time_ms=total
            )
        return total

    def purge_mailboxes(self, tag: str | None = None) -> int:
        """Drop undelivered frames from every mailbox (host included).

        Recovery bookkeeping: after a membership change, in-flight frames
        addressed under the old epoch are stale and must not be consumed
        by re-driven traffic.  Free of charge (the frames are simply never
        read).  Returns how many frames were discarded.
        """
        dropped = 0
        for proc in self.procs:
            if tag is None:
                dropped += len(proc.mailbox)
                proc.mailbox.clear()
            else:
                keep = [m for m in proc.mailbox if m.tag != tag]
                dropped += len(proc.mailbox) - len(keep)
                proc.mailbox[:] = keep
        if tag is None:
            dropped += len(self.host_mailbox)
            self.host_mailbox.clear()
        else:
            keep = [m for m in self.host_mailbox if m.tag != tag]
            dropped += len(self.host_mailbox) - len(keep)
            self.host_mailbox[:] = keep
        return dropped

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def kernel_context(self):
        """Dynamic scope installing this machine's kernel backend.

        Schemes and distributed apps wrap their bodies in
        ``with machine.kernel_context():`` so every hot-path kernel
        (pack/encode/decode/convert/traverse) dispatches to the backend
        the machine was constructed with.  A machine without an explicit
        ``backend`` yields a no-op scope (process default applies).

        With observability enabled the scope additionally counts every
        kernel dispatch (``repro_kernel_calls_total{backend,kernel}``)
        via :func:`~repro.kernels.observe_kernel_calls`.
        """
        from ..kernels import use_backend

        if not self.obs.enabled:
            return use_backend(self.backend)
        return self._observed_kernel_context()

    @contextmanager
    def _observed_kernel_context(self):
        """Kernel scope + per-dispatch counting (obs-enabled runs only)."""
        from ..kernels import observe_kernel_calls, use_backend

        with use_backend(self.backend) as backend:
            with observe_kernel_calls(self.obs.record_kernel_call):
                yield backend

    def _executor_session(self):
        """This machine's executor session, created on first use.

        The executor name resolves like the kernel backend: an explicit
        ``executor=`` wins, otherwise the executor layer's current
        default (``REPRO_EXECUTOR`` / ``use_executor`` scope) at the
        moment the first pool is created.
        """
        if self._exec_session is None:
            from ..exec import current_executor_name, get_executor

            name = (
                self.executor
                if self.executor is not None
                else current_executor_name()
            )
            self._exec_session = get_executor(name).create_session(self.n_procs)
            # a supervised session reports restarts/reaps through obs; the
            # hook is duck-typed so sim/bare sessions need no knowledge of it
            attach = getattr(self._exec_session, "attach_obs", None)
            if attach is not None and self.obs.enabled:
                attach(self.obs)
        return self._exec_session

    def rank_pool(self):
        """A fresh :class:`~repro.exec.pool.RankPool` over this machine.

        Scheme/app receiver loops submit their per-rank tasks through it
        and collect results in rank order; where the tasks physically run
        is the executor's business (DESIGN.md §"Execution tiers").
        """
        from ..exec import RankPool

        return RankPool(self, self._executor_session())

    def shutdown(self) -> None:
        """Tear down the executor session (idempotent, sim = no-op).

        Worker processes and wire segments die here; the machine itself
        stays usable — the next pool lazily builds a fresh session.
        """
        if self._exec_session is not None:
            self._exec_session.shutdown()
            self._exec_session = None

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_procs:
            raise ValueError(f"rank {rank} out of range for p={self.n_procs}")

    def processor(self, rank: int) -> Processor:
        self._check_rank(rank)
        self._check_not_failed(rank)
        return self.procs[rank]

    def reset(self) -> None:
        """Clear all processor memories, mailboxes and the trace.

        An attached fault injector is rewound to its initial seeded state,
        so ``run → reset → run`` replays the identical fault sequence.
        """
        for p in self.procs:
            p.reset()
        self.host_memory.clear()
        self.host_mailbox.clear()
        self._host_seen_seqs.clear()
        self.trace.clear()
        self.membership.reset()
        if self.faults is not None:
            self.faults.reset()
        if self._exec_session is not None:
            self._exec_session.reset()

    def fault_summary(self) -> dict[str, dict[str, int]] | None:
        """Per-phase fault counters, or ``None`` on a fault-free machine."""
        if self.faults is None:
            return None
        return self.faults.stats.summary()

    def supervisor_summary(self):
        """The executor session's real-fault record, or ``None``.

        Non-``None`` only when the live session is supervised (process
        executor under a :class:`~repro.exec.SuperviseSpec`); duck-typed
        so sim/bare sessions stay supervision-agnostic.
        """
        if self._exec_session is None:
            return None
        summarise = getattr(self._exec_session, "supervisor_summary", None)
        if summarise is None:
            return None
        return summarise()

    # convenience accessors mirroring the paper's reported quantities -----
    @property
    def t_distribution(self) -> float:
        """``T_Distribution`` so far (ms)."""
        return self.trace.elapsed(Phase.DISTRIBUTION)

    @property
    def t_compression(self) -> float:
        """``T_Compression`` so far (ms)."""
        return self.trace.elapsed(Phase.COMPRESSION)

    def __repr__(self) -> str:
        return (
            f"Machine(p={self.n_procs}, topology={self.topology.name}, "
            f"cost={self.cost})"
        )
