"""The simulated distributed-memory multicomputer.

This is the repo's substitute for the paper's IBM SP2 (see DESIGN.md §2):
a host node that owns the global sparse array, ``p`` share-nothing
processors, an interconnect topology, and a :class:`~repro.machine.
cost_model.CostModel` through which *every* action is charged.  The
distribution schemes in :mod:`repro.core` run on this machine; the phase
times it reports are what the benchmark harness prints next to the paper's
Tables 3–5.

Accounting contract (matches Section 4 of the paper):

* messages are sent **in sequence** by the host ("local sparse arrays ...
  are sent to processors in sequence") — each costs
  ``T_Startup + m·T_Data·hops`` and the host is busy for all of them;
* host-side element operations (compressing the global array, packing
  buffers) are charged to the host serially;
* processor-side operations (unpacking, decoding, local compression) run in
  parallel across processors — a phase ends when the slowest finishes.

The machine *really executes* the data movement: payloads are numpy arrays
physically handed to processor mailboxes, so correctness tests can assert
what every processor ends up holding, and all charged quantities are
derived from the actual buffers built — never from the closed-form
formulas being validated.
"""

from __future__ import annotations

from typing import Any

from .cost_model import CostModel, sp2_cost_model
from .processor import Message, Processor
from .topology import HOST, SwitchTopology, Topology
from .trace import Event, EventKind, Phase, TraceLog

__all__ = ["Machine", "HOST"]


class Machine:
    """A host plus ``p`` processors with explicit cost accounting.

    Parameters
    ----------
    n_procs:
        Number of compute processors (the paper's ``p``).
    cost:
        The machine cost model; defaults to the SP2 calibration.
    topology:
        Interconnect; defaults to the SP2-like single-hop switch.
    proc_speeds:
        Optional per-processor speed factors (ops complete ``speed×``
        faster).  Defaults to a homogeneous machine — the paper's setting;
        heterogeneous speeds back the speed-aware-partitioning ablation.
    """

    def __init__(
        self,
        n_procs: int,
        *,
        cost: CostModel | None = None,
        topology: Topology | None = None,
        proc_speeds: list[float] | None = None,
    ) -> None:
        if n_procs <= 0:
            raise ValueError(f"n_procs must be positive, got {n_procs}")
        self.n_procs = n_procs
        self.cost = cost if cost is not None else sp2_cost_model()
        if proc_speeds is None:
            self.proc_speeds = [1.0] * n_procs
        else:
            if len(proc_speeds) != n_procs:
                raise ValueError(
                    f"need {n_procs} processor speeds, got {len(proc_speeds)}"
                )
            if any(s <= 0 for s in proc_speeds):
                raise ValueError("processor speeds must be positive")
            self.proc_speeds = [float(s) for s in proc_speeds]
        self.topology = topology if topology is not None else SwitchTopology(n_procs)
        if self.topology.n_procs != n_procs:
            raise ValueError(
                f"topology is sized for {self.topology.n_procs} processors, "
                f"machine has {n_procs}"
            )
        self.procs = [Processor(r) for r in range(n_procs)]
        #: the host's own memory (the global array lives here)
        self.host_memory: dict[str, Any] = {}
        #: messages sent back to the host (gather traffic), arrival order
        self.host_mailbox: list[Message] = []
        self.trace = TraceLog()

    # ------------------------------------------------------------------
    # cost charging
    # ------------------------------------------------------------------
    def charge_host_ops(self, n_ops: int, phase: Phase, label: str = "") -> float:
        """Charge ``n_ops`` elementary operations to the host. Returns ms."""
        t = self.cost.ops_time(n_ops)
        self.trace.record(
            Event(phase, EventKind.OPS, HOST, t, quantity=int(n_ops), label=label)
        )
        return t

    def charge_proc_ops(
        self, rank: int, n_ops: int, phase: Phase, label: str = ""
    ) -> float:
        """Charge ``n_ops`` elementary operations to processor ``rank``.

        A processor with speed ``s`` takes ``1/s`` of the nominal
        ``T_Operation`` per op — the heterogeneous-cluster extension
        (uniform machines keep all speeds at 1, the paper's setting).
        """
        self._check_rank(rank)
        t = self.cost.ops_time(n_ops) / self.proc_speeds[rank]
        self.trace.record(
            Event(phase, EventKind.OPS, rank, t, quantity=int(n_ops), label=label)
        )
        return t

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        *,
        src: int = HOST,
        tag: str = "",
    ) -> float:
        """Transmit ``payload`` (``n_elements`` array elements) to ``dst``.

        Charged to the *sender's* timeline (sequential sends — the paper's
        model).  The payload object itself is handed over by reference;
        share-nothing discipline is the scheme author's responsibility and
        is checked by the test suite's aliasing tests.
        """
        self._check_rank(dst)
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        hops = max(self.topology.hops(src, dst), 1)
        t = self.cost.message_time(n_elements, hops=hops)
        self.trace.record(
            Event(
                phase,
                EventKind.MESSAGE,
                src,
                t,
                quantity=int(n_elements),
                label=tag,
                src=src,
                dst=dst,
            )
        )
        self.procs[dst].deliver(
            Message(src=src, dst=dst, tag=tag, payload=payload, n_elements=n_elements)
        )
        return t

    def send_to_host(
        self,
        src: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        *,
        tag: str = "",
    ) -> float:
        """Transmit from a processor back to the host (gather traffic).

        The host receives messages serially, so the time is charged to the
        host's timeline — consistent with the sequential-send model.
        """
        self._check_rank(src)
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        hops = max(self.topology.hops(src, HOST), 1)
        t = self.cost.message_time(n_elements, hops=hops)
        self.trace.record(
            Event(
                phase,
                EventKind.MESSAGE,
                HOST,
                t,
                quantity=int(n_elements),
                label=tag,
                src=src,
                dst=HOST,
            )
        )
        self.host_mailbox.append(
            Message(src=src, dst=HOST, tag=tag, payload=payload, n_elements=n_elements)
        )
        return t

    def host_receive(self, tag: str | None = None) -> Message:
        """Pop the host's oldest message (optionally the oldest with ``tag``)."""
        for i, msg in enumerate(self.host_mailbox):
            if tag is None or msg.tag == tag:
                return self.host_mailbox.pop(i)
        raise LookupError(
            "host: no message" + (f" with tag {tag!r}" if tag else "")
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_procs:
            raise ValueError(f"rank {rank} out of range for p={self.n_procs}")

    def processor(self, rank: int) -> Processor:
        self._check_rank(rank)
        return self.procs[rank]

    def reset(self) -> None:
        """Clear all processor memories, mailboxes and the trace."""
        for p in self.procs:
            p.reset()
        self.host_memory.clear()
        self.host_mailbox.clear()
        self.trace.clear()

    # convenience accessors mirroring the paper's reported quantities -----
    @property
    def t_distribution(self) -> float:
        """``T_Distribution`` so far (ms)."""
        return self.trace.elapsed(Phase.DISTRIBUTION)

    @property
    def t_compression(self) -> float:
        """``T_Compression`` so far (ms)."""
        return self.trace.elapsed(Phase.COMPRESSION)

    def __repr__(self) -> str:
        return (
            f"Machine(p={self.n_procs}, topology={self.topology.name}, "
            f"cost={self.cost})"
        )
