"""A simulated processor: private memory namespace plus a message mailbox.

Processors in a distributed-memory multicomputer share nothing; all state a
processor holds lives in its :attr:`memory` dict and everything it learns
arrives through :meth:`deliver`.  Scheme code running "on" a processor is
ordinary Python that only touches that processor's memory — the machine
enforces the discipline, the cost model charges the time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Message", "Processor"]


@dataclass(frozen=True)
class Message:
    """An in-flight message: source, tag and an opaque payload."""

    src: int
    dst: int
    tag: str
    payload: Any
    n_elements: int


class Processor:
    """One node of the simulated machine."""

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise ValueError(f"processor rank must be non-negative, got {rank}")
        self.rank = rank
        #: the processor's private memory: name -> object
        self.memory: dict[str, Any] = {}
        #: received, not-yet-consumed messages in arrival order
        self.mailbox: list[Message] = []

    def deliver(self, message: Message) -> None:
        if message.dst != self.rank:
            raise ValueError(
                f"message for rank {message.dst} delivered to rank {self.rank}"
            )
        self.mailbox.append(message)

    def receive(self, tag: str | None = None) -> Message:
        """Pop the oldest message (optionally the oldest with ``tag``)."""
        for i, msg in enumerate(self.mailbox):
            if tag is None or msg.tag == tag:
                return self.mailbox.pop(i)
        raise LookupError(
            f"rank {self.rank}: no message" + (f" with tag {tag!r}" if tag else "")
        )

    def store(self, name: str, value: Any) -> None:
        self.memory[name] = value

    def load(self, name: str) -> Any:
        try:
            return self.memory[name]
        except KeyError:
            raise KeyError(f"rank {self.rank} has no object named {name!r}") from None

    def reset(self) -> None:
        self.memory.clear()
        self.mailbox.clear()

    def __repr__(self) -> str:
        return (
            f"Processor(rank={self.rank}, memory={list(self.memory)}, "
            f"mailbox={len(self.mailbox)} msgs)"
        )
