"""A simulated processor: private memory namespace plus a message mailbox.

Processors in a distributed-memory multicomputer share nothing; all state a
processor holds lives in its :attr:`memory` dict and everything it learns
arrives through :meth:`deliver`.  Scheme code running "on" a processor is
ordinary Python that only touches that processor's memory — the machine
enforces the discipline, the cost model charges the time.

Reliable-delivery support (used only when a
:class:`~repro.faults.injector.FaultInjector` is attached to the machine):
messages carry a sequence number and a wire checksum; :meth:`deliver`
discards duplicate sequence numbers (the receiver side of at-least-once
delivery) and can insert a frame out of order to model network reordering.
Fault-free messages keep ``seq = -1`` and skip all of that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Message", "Processor"]


@dataclass(frozen=True)
class Message:
    """An in-flight message: source, tag and an opaque payload.

    ``seq`` and ``checksum`` belong to the reliable-delivery protocol:
    ``seq`` is a machine-wide sequence number used for duplicate
    suppression (``-1`` = unsequenced, fault-free traffic) and
    ``checksum`` is the CRC-32 of the payload's wire image computed at
    send time (``None`` when the payload has no wire image or faults are
    off).
    """

    src: int
    dst: int
    tag: str
    payload: Any
    n_elements: int
    seq: int = -1
    checksum: int | None = None


class Processor:
    """One node of the simulated machine."""

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise ValueError(f"processor rank must be non-negative, got {rank}")
        self.rank = rank
        #: the processor's private memory: name -> object
        self.memory: dict[str, Any] = {}
        #: received, not-yet-consumed messages in arrival order
        self.mailbox: list[Message] = []
        #: sequence numbers already accepted (duplicate suppression)
        self.seen_seqs: set[int] = set()
        #: store version per name (see :meth:`store`); executor sessions
        #: use these to invalidate worker-side cached copies
        self.versions: dict[str, int] = {}
        #: monotonic store counter — never rewound, even by :meth:`reset`,
        #: so a version can never repeat across reset or rank death
        self._store_seq = 0

    def deliver(self, message: Message, *, insert_at: int | None = None) -> bool:
        """Accept ``message`` into the mailbox.

        Returns ``True`` if the message was enqueued, ``False`` if it was
        a duplicate (its sequence number was already accepted) and was
        discarded.  ``insert_at`` places the frame out of order — the
        reordering fault; ``None`` appends (in-order arrival).
        """
        if message.dst != self.rank:
            raise ValueError(
                f"message for rank {message.dst} delivered to rank {self.rank}"
            )
        if message.seq >= 0:
            if message.seq in self.seen_seqs:
                return False  # duplicate frame: drop silently
            self.seen_seqs.add(message.seq)
        if insert_at is None:
            self.mailbox.append(message)
        else:
            self.mailbox.insert(insert_at, message)
        return True

    def receive(self, tag: str | None = None) -> Message:
        """Pop the oldest message (optionally the oldest with ``tag``)."""
        for i, msg in enumerate(self.mailbox):
            if tag is None or msg.tag == tag:
                return self.mailbox.pop(i)
        raise LookupError(
            f"rank {self.rank}: no message" + (f" with tag {tag!r}" if tag else "")
        )

    def store(self, name: str, value: Any) -> None:
        self.memory[name] = value
        self._store_seq += 1
        self.versions[name] = self._store_seq

    def load(self, name: str) -> Any:
        try:
            return self.memory[name]
        except KeyError:
            raise KeyError(f"rank {self.rank} has no object named {name!r}") from None

    def reset(self) -> None:
        self.memory.clear()
        self.mailbox.clear()
        self.seen_seqs.clear()
        self.versions.clear()  # _store_seq keeps counting: no version reuse

    def __repr__(self) -> str:
        return (
            f"Processor(rank={self.rank}, memory={list(self.memory)}, "
            f"mailbox={len(self.mailbox)} msgs)"
        )
