"""MPI-style collectives on the simulated machine.

The paper's machine model is host-centric with sequential sends; these
collectives follow the same accounting so application kernels
(:mod:`repro.apps`) and schemes compose cleanly:

* host-rooted operations (:func:`broadcast`, :func:`scatter`,
  :func:`gather`, :func:`reduce`) serialise their messages on the host's
  timeline — exactly ``p`` messages of the obvious sizes;
* :func:`allgather` is gather-then-broadcast (``2p`` messages), the
  store-and-forward realisation a front-end-centric SP2 program would use;
* reduction arithmetic costs one ``T_Operation`` per combined element.

Every function takes an explicit :class:`~repro.machine.trace.Phase` so
callers charge the right bucket (kernels use ``Phase.COMPUTE``).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .machine import Machine
from .trace import Phase

__all__ = ["broadcast", "scatter", "gather", "reduce", "allgather", "ring_allgather"]


def broadcast(
    machine: Machine, array: np.ndarray, phase: Phase, *, tag: str = "bcast"
) -> list[np.ndarray]:
    """Host sends a copy of ``array`` to every processor (p messages).

    Returns the per-processor received arrays (aliases of one payload — the
    simulator's share-nothing discipline is by convention; receivers must
    not mutate, which the read-only flag enforces for our arrays).
    """
    array = np.asarray(array)
    for rank in range(machine.n_procs):
        machine.send(rank, array, array.size, phase, tag=tag)
    return [machine.processor(r).receive(tag).payload for r in range(machine.n_procs)]


def scatter(
    machine: Machine,
    pieces: Sequence[np.ndarray],
    phase: Phase,
    *,
    tag: str = "scatter",
) -> list[np.ndarray]:
    """Host sends ``pieces[r]`` to processor ``r`` (p messages)."""
    if len(pieces) != machine.n_procs:
        raise ValueError(
            f"need exactly {machine.n_procs} pieces, got {len(pieces)}"
        )
    for rank, piece in enumerate(pieces):
        piece = np.asarray(piece)
        machine.send(rank, piece, piece.size, phase, tag=tag)
    return [machine.processor(r).receive(tag).payload for r in range(machine.n_procs)]


def gather(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    phase: Phase,
    *,
    tag: str = "gather",
) -> list[np.ndarray]:
    """Every processor sends its contribution to the host (p messages).

    ``contributions[r]`` is what processor ``r`` holds; returns them in
    rank order after the (host-serialised) transfer.
    """
    if len(contributions) != machine.n_procs:
        raise ValueError(
            f"need exactly {machine.n_procs} contributions, got {len(contributions)}"
        )
    for rank, piece in enumerate(contributions):
        piece = np.asarray(piece)
        machine.send_to_host(rank, piece, piece.size, phase, tag=tag)
    received: dict[int, np.ndarray] = {}
    for _ in range(machine.n_procs):
        msg = machine.host_receive(tag)
        received[msg.src] = msg.payload
    return [received[rank] for rank in range(machine.n_procs)]


def reduce(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    phase: Phase,
    *,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    tag: str = "reduce",
) -> np.ndarray:
    """Gather + combine on the host (one ``T_Operation`` per element pair)."""
    gathered = gather(machine, contributions, phase, tag=tag)
    acc = np.array(gathered[0], dtype=np.float64, copy=True)
    for piece in gathered[1:]:
        acc = op(acc, piece)
        machine.charge_host_ops(acc.size, phase, label="reduce-op")
    return acc


def allgather(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    phase: Phase,
    *,
    tag: str = "allgather",
) -> list[np.ndarray]:
    """Everyone ends with the concatenation of all contributions.

    Realised as gather-to-host followed by broadcast of the concatenation
    (2p messages) — the host-centric pattern the paper's machine model
    implies.  Returns the per-processor received concatenations.
    """
    gathered = gather(machine, contributions, phase, tag=tag + "-up")
    merged = np.concatenate([np.asarray(g).ravel() for g in gathered])
    machine.charge_host_ops(merged.size, phase, label="concat")
    return broadcast(machine, merged, phase, tag=tag + "-down")


def ring_allgather(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    phase: Phase,
    *,
    tag: str = "ring-allgather",
) -> list[list[np.ndarray]]:
    """True multi-party allgather: pieces circulate a processor ring.

    In round ``k`` every processor forwards the piece it received ``k``
    rounds ago to its right neighbour — ``p·(p-1)`` messages carrying each
    piece exactly ``p-1`` times, but the sends within a round run on
    *different* senders, so they overlap; wall-clock is ``(p-1)`` rounds of
    one message each instead of the host-rooted ``2p`` serial messages.
    This is the collective the paper's host-centric machine model cannot
    express, included for the collective-algorithm ablation.

    Returns, per processor, the list of pieces in rank order (its own
    included).
    """
    p = machine.n_procs
    if len(contributions) != p:
        raise ValueError(f"need exactly {p} contributions, got {len(contributions)}")
    pieces = [np.asarray(c) for c in contributions]
    # holdings[r][k] = piece originating at rank k (absent until seen)
    holdings: list[dict[int, np.ndarray]] = [{r: pieces[r]} for r in range(p)]
    for round_k in range(p - 1):
        # every processor forwards the piece that originated (rank - round)
        for src in range(p):
            origin = (src - round_k) % p
            piece = holdings[src][origin]
            dst = (src + 1) % p
            machine.send(
                dst, (origin, piece), piece.size, phase, src=src,
                tag=f"{tag}-r{round_k}",
            )
        for dst in range(p):
            msg = machine.processor(dst).receive(f"{tag}-r{round_k}")
            origin, piece = msg.payload
            holdings[dst][origin] = piece
    return [[h[k] for k in range(p)] for h in holdings]
