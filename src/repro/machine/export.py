"""Trace and result export for external tooling.

Serialises a :class:`~repro.machine.trace.TraceLog` or a
:class:`~repro.core.base.SchemeResult` to plain JSON-compatible dicts (and
optionally to a file), so measurement pipelines can consume simulated runs
without importing the package.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from .trace import Phase, TraceLog

__all__ = ["trace_to_dict", "result_to_dict", "dump_json"]


def trace_to_dict(trace: TraceLog) -> dict[str, Any]:
    """The full event log plus per-phase aggregates."""
    phases = {}
    for phase in Phase:
        bd = trace.breakdown(phase)
        if not trace.phase_events(phase):
            continue
        phases[phase.value] = {
            "elapsed_ms": bd.elapsed,
            "host_time_ms": bd.host_time,
            "max_proc_time_ms": bd.max_proc_time,
            "proc_times_ms": {str(k): v for k, v in sorted(bd.proc_times.items())},
            "messages": bd.n_messages,
            "elements_sent": bd.elements_sent,
            "ops": bd.ops,
            # fault-mode extras: omitted on fault-free traces so their
            # serialisation is byte-identical to the pre-fault simulator
            **(
                {"retries": bd.n_retries, "retry_time_ms": bd.retry_time}
                if bd.n_retries
                else {}
            ),
            **(
                {"faults": bd.n_faults, "faults_by_label": dict(sorted(bd.faults_by_label.items()))}
                if bd.n_faults
                else {}
            ),
        }
    events = [
        {
            "phase": e.phase.value,
            "kind": e.kind.value,
            "actor": e.actor,
            "time_ms": e.time,
            "quantity": e.quantity,
            "label": e.label,
            **({"src": e.src, "dst": e.dst} if e.src is not None else {}),
        }
        for e in trace.events
    ]
    return {"phases": phases, "events": events}


def result_to_dict(result) -> dict[str, Any]:
    """A :class:`SchemeResult` as a JSON-compatible dict (no array data)."""
    return {
        "scheme": result.scheme,
        "partition": result.partition,
        "compression": result.compression,
        "n_procs": result.n_procs,
        "global_shape": list(result.global_shape),
        "global_nnz": result.global_nnz,
        "sparse_ratio": result.sparse_ratio,
        "t_distribution_ms": result.t_distribution,
        "t_compression_ms": result.t_compression,
        "t_total_ms": result.t_total,
        "wire_elements": result.wire_elements,
        "n_messages": result.n_messages,
        "locals": [
            {"shape": list(l.shape), "nnz": l.nnz} for l in result.locals_
        ],
        **(
            {"fault_summary": result.fault_summary}
            if getattr(result, "fault_summary", None) is not None
            else {}
        ),
        **(
            {"recovery_summary": result.recovery_summary.to_dict()}
            if getattr(result, "recovery_summary", None) is not None
            else {}
        ),
        # real-fault supervision record: omitted on unsupervised runs so
        # existing serialisations stay byte-identical
        **(
            {"supervisor_summary": result.supervisor_summary.to_dict()}
            if getattr(result, "supervisor_summary", None) is not None
            else {}
        ),
        # observability snapshot: omitted when the run was executed with
        # observability off, so fault-free golden serialisations are
        # byte-identical to the pre-observability exporter
        **(
            {"observability": result.observability.to_dict()}
            if getattr(result, "observability", None) is not None
            else {}
        ),
    }


def dump_json(obj: Union[TraceLog, Any], path: str | Path) -> None:
    """Write a trace or scheme result to ``path`` as JSON."""
    if isinstance(obj, TraceLog):
        payload = trace_to_dict(obj)
    else:
        payload = result_to_dict(obj)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
