"""The JSONL wire protocol: strict request parsing + typed response lines.

One request is one JSON object on one line.  The schema mirrors the sweep
manifest's strictness conventions (:mod:`repro.sweep.manifest`): unknown
keys are rejected with the full sorted key listing, names are validated
against the registries in :mod:`repro.core.registry`, and every error is
a single CLI-friendly sentence — the payload is *user* input arriving
over a socket, not programmer input.

Request keys (``op: "run"``, the default)::

    {"id": "r1", "scheme": "ed", "n": 120, "n_procs": 4,
     "partition": "row", "compression": "crs", "sparse_ratio": 0.1,
     "seed": 0, "mesh_shape": [2, 2], "backend": "numpy",
     "executor": "sim", "faults": {...}, "fault_seed": 0,
     "recovery": "host-resend", "supervise": {...}, "observe": true}

``faults`` / ``supervise`` are *inline* :class:`~repro.faults.spec.
FaultSpec` / :class:`~repro.exec.SuperviseSpec` objects (the same JSON
the CLI loads from files).  ``op`` may also be ``"ping"``, ``"stats"``
or ``"metrics"`` — control operations that carry only ``id``.

Response lines are typed by a ``"type"`` key: ``result`` (the
:func:`~repro.machine.export.result_to_dict` payload under
``"result"``), ``error`` (code 400/500 + one friendly line), ``reject``
(code 429, queue full), ``pong``, ``stats`` and ``metrics``.  Lines are
canonical JSON (sorted keys, compact separators), so a served result is
byte-stable across processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..core.registry import COMPRESSIONS, PARTITIONS, SCHEMES
from ..machine.cost_model import CostModel
from ..runtime.session import RunRequest

__all__ = [
    "ProtocolError",
    "ServiceRequest",
    "encode_line",
    "error_response",
    "parse_request_line",
    "reject_response",
    "result_response",
    "session_key",
]

#: every key a ``run`` request may carry (the strict-schema listing)
RUN_KEYS = (
    "id",
    "op",
    "scheme",
    "n",
    "n_procs",
    "partition",
    "compression",
    "sparse_ratio",
    "seed",
    "mesh_shape",
    "backend",
    "executor",
    "faults",
    "fault_seed",
    "recovery",
    "supervise",
    "observe",
)

#: control operations that carry no run parameters
CONTROL_OPS = ("metrics", "ping", "stats")

#: fail-stop recovery policies the run layer understands
RECOVERY_POLICIES = ("host-resend", "peer-redistribute")


class ProtocolError(ValueError):
    """A request line failed validation (message is one friendly line).

    ``request_id`` carries the client's ``id`` when the line parsed far
    enough to have one, so the error response can still be correlated.
    """

    def __init__(self, message: str, *, request_id: str | None = None) -> None:
        super().__init__(message)
        self.request_id = request_id


@dataclass(frozen=True)
class ServiceRequest:
    """One validated request: a control op, or a run with its config."""

    id: str
    op: str
    #: the fully resolved run request (``None`` for control ops); server
    #: defaults for backend/executor are already applied
    config: RunRequest | None = None
    #: attach a per-run Observability recorder and ship its snapshot
    #: inside the result payload
    observe: bool = False


def session_key(config: RunRequest) -> tuple[Any, ...]:
    """The warm-session signature of one run: ``(p, cost, backend,
    executor)`` — exactly the machine-reuse key of
    :class:`~repro.runtime.session.RunSession`."""
    return (config.n_procs, config.cost, config.backend, config.executor)


# ----------------------------------------------------------------------
# field validators (ManifestError-style messages, ProtocolError type)
# ----------------------------------------------------------------------
def _reject_unknown(
    data: Mapping[str, Any], known: Sequence[str], what: str, rid: str | None
) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ProtocolError(
            f"unknown {what} key(s) {unknown}; known keys: {sorted(known)}",
            request_id=rid,
        )


def _int_field(data: Mapping[str, Any], key: str, default: int | None,
               rid: str | None, *, minimum: int | None = None) -> int:
    if key not in data:
        if default is None:
            raise ProtocolError(
                f"run request is missing required key {key!r}", request_id=rid
            )
        return default
    value = data[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"request key {key!r} must be an integer, got {value!r}",
            request_id=rid,
        )
    if minimum is not None and value < minimum:
        raise ProtocolError(
            f"request key {key!r} must be >= {minimum}, got {value}",
            request_id=rid,
        )
    return value


def _name_field(
    data: Mapping[str, Any], key: str, default: str | None,
    registry: Mapping[str, Any], what: str, rid: str | None,
) -> str:
    if key not in data:
        if default is None:
            raise ProtocolError(
                f"run request is missing required key {key!r}", request_id=rid
            )
        return default
    value = data[key]
    if not isinstance(value, str):
        raise ProtocolError(
            f"request key {key!r} must be a string, got {value!r}",
            request_id=rid,
        )
    if value.lower() not in registry:
        raise ProtocolError(
            f"unknown {what} {value!r}; available: {sorted(registry)}",
            request_id=rid,
        )
    return value.lower()


def _ratio_field(data: Mapping[str, Any], rid: str | None) -> float:
    value = data.get("sparse_ratio", 0.1)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"request key 'sparse_ratio' must be a number, got {value!r}",
            request_id=rid,
        )
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ProtocolError(
            f"request key 'sparse_ratio' must be in (0, 1], got {value}",
            request_id=rid,
        )
    return value


def _mesh_field(
    data: Mapping[str, Any], partition: str, n_procs: int, rid: str | None
) -> tuple[int, int] | None:
    raw = data.get("mesh_shape")
    if raw is None:
        return None
    if partition != "mesh2d":
        raise ProtocolError(
            "request key 'mesh_shape' is only meaningful with the 'mesh2d' "
            "partition",
            request_id=rid,
        )
    if (
        not isinstance(raw, list)
        or len(raw) != 2
        or any(isinstance(s, bool) or not isinstance(s, int) or s < 1 for s in raw)
    ):
        raise ProtocolError(
            f"request key 'mesh_shape' must be [rows, cols] with positive "
            f"integers, got {raw!r}",
            request_id=rid,
        )
    if raw[0] * raw[1] != n_procs:
        raise ProtocolError(
            f"mesh_shape {raw} does not factor {n_procs} processors",
            request_id=rid,
        )
    return (raw[0], raw[1])


def _backend_field(data: Mapping[str, Any], default: str | None,
                   rid: str | None) -> str | None:
    name = data.get("backend", default)
    if name is None:
        return None
    if not isinstance(name, str):
        raise ProtocolError(
            f"request key 'backend' must be a string, got {name!r}",
            request_id=rid,
        )
    from ..kernels import get_backend

    try:
        get_backend(name)
    except ValueError as exc:
        raise ProtocolError(str(exc), request_id=rid) from None
    return name


def _executor_field(data: Mapping[str, Any], default: str | None,
                    rid: str | None) -> str | None:
    name = data.get("executor", default)
    if name is None:
        return None
    if not isinstance(name, str):
        raise ProtocolError(
            f"request key 'executor' must be a string, got {name!r}",
            request_id=rid,
        )
    from ..exec import get_executor

    try:
        get_executor(name)
    except ValueError as exc:
        raise ProtocolError(str(exc), request_id=rid) from None
    return name


def parse_request_line(
    line: str | bytes,
    *,
    seq: int = 0,
    default_backend: str | None = None,
    default_executor: str | None = None,
) -> ServiceRequest:
    """Validate one wire line into a :class:`ServiceRequest`.

    ``seq`` numbers the connection's requests so a line without an
    ``id`` still gets a correlatable one (``"req-<seq>"``).
    ``default_backend`` / ``default_executor`` are the *server's*
    placement defaults (``repro serve --executor …``); an explicit key in
    the request always wins.  Raises :class:`ProtocolError` with one
    friendly line on any malformation.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            f"request is not valid JSON (column {exc.colno}: {exc.msg})"
        ) from None
    if not isinstance(data, dict):
        raise ProtocolError(f"request must be a JSON object, got {data!r}")

    raw_id = data.get("id", f"req-{seq}")
    if isinstance(raw_id, bool) or not isinstance(raw_id, (str, int)):
        raise ProtocolError(f"request key 'id' must be a string, got {raw_id!r}")
    rid = str(raw_id)

    op = data.get("op", "run")
    if op in CONTROL_OPS:
        _reject_unknown(data, ("id", "op"), f"{op} request", rid)
        return ServiceRequest(id=rid, op=op)
    if op != "run":
        raise ProtocolError(
            f"unknown op {op!r}; available: {sorted(('run',) + CONTROL_OPS)}",
            request_id=rid,
        )

    _reject_unknown(data, RUN_KEYS, "run request", rid)
    scheme = _name_field(data, "scheme", None, SCHEMES, "scheme", rid)
    n = _int_field(data, "n", None, rid, minimum=1)
    n_procs = _int_field(data, "n_procs", None, rid, minimum=1)
    partition = _name_field(
        data, "partition", "row", PARTITIONS, "partition method", rid
    )
    compression = _name_field(
        data, "compression", "crs", COMPRESSIONS, "compression method", rid
    )
    sparse_ratio = _ratio_field(data, rid)
    seed = _int_field(data, "seed", 0, rid)
    fault_seed = _int_field(data, "fault_seed", 0, rid)
    mesh_shape = _mesh_field(data, partition, n_procs, rid)
    backend = _backend_field(data, default_backend, rid)
    executor = _executor_field(data, default_executor, rid)

    faults = None
    if data.get("faults") is not None:
        if not isinstance(data["faults"], dict):
            raise ProtocolError(
                f"request key 'faults' must be a FaultSpec object, "
                f"got {data['faults']!r}",
                request_id=rid,
            )
        from ..faults import FaultSpec

        try:
            faults = FaultSpec.from_dict(data["faults"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"request key 'faults' is invalid: {exc}", request_id=rid
            ) from None

    recovery = data.get("recovery")
    if recovery is not None:
        if recovery not in RECOVERY_POLICIES:
            raise ProtocolError(
                f"unknown recovery policy {recovery!r}; "
                f"available: {sorted(RECOVERY_POLICIES)}",
                request_id=rid,
            )
        if faults is None:
            raise ProtocolError(
                "request key 'recovery' needs a fault plan ('faults': {...})",
                request_id=rid,
            )

    supervise = None
    if data.get("supervise") is not None:
        if not isinstance(data["supervise"], dict):
            raise ProtocolError(
                f"request key 'supervise' must be a SuperviseSpec object, "
                f"got {data['supervise']!r}",
                request_id=rid,
            )
        if executor != "process":
            raise ProtocolError(
                "request key 'supervise' needs the process executor "
                f"('executor': 'process'; effective: {executor or 'sim'})",
                request_id=rid,
            )
        from ..exec import SuperviseSpec

        try:
            supervise = SuperviseSpec.from_dict(data["supervise"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"request key 'supervise' is invalid: {exc}", request_id=rid
            ) from None

    observe = data.get("observe", False)
    if not isinstance(observe, bool):
        raise ProtocolError(
            f"request key 'observe' must be a boolean, got {observe!r}",
            request_id=rid,
        )

    config = RunRequest(
        scheme=scheme,
        n=n,
        n_procs=n_procs,
        partition=partition,
        compression=compression,
        sparse_ratio=sparse_ratio,
        seed=seed,
        mesh_shape=mesh_shape,
        faults=faults,
        fault_seed=fault_seed,
        recovery=recovery,
        backend=backend,
        executor=executor,
        supervise=supervise,
    )
    return ServiceRequest(id=rid, op="run", config=config, observe=observe)


# ----------------------------------------------------------------------
# response lines
# ----------------------------------------------------------------------
def encode_line(obj: Mapping[str, Any]) -> bytes:
    """One canonical-JSON response line (sorted keys, trailing newline)."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def result_response(request_id: str, payload: Mapping[str, Any]) -> dict[str, Any]:
    """A completed run: the ``result_to_dict`` payload, verbatim."""
    return {"type": "result", "id": request_id, "result": dict(payload)}


def error_response(
    request_id: str | None, message: str, *, code: int = 400
) -> dict[str, Any]:
    """A failed request — one friendly line, never a traceback."""
    out: dict[str, Any] = {"type": "error", "code": code, "error": message}
    if request_id is not None:
        out["id"] = request_id
    return out


def reject_response(request_id: str, queue_size: int) -> dict[str, Any]:
    """Backpressure: the bounded queue is full (retry later)."""
    return {
        "type": "reject",
        "id": request_id,
        "code": 429,
        "error": f"queue full ({queue_size} requests pending); retry later",
    }


def cost_signature(cost: CostModel) -> str:
    """A short printable form of a cost model for stats payloads."""
    return repr(cost)
