"""The scheduler: a bounded queue feeding warm sessions with key affinity.

Three pieces, all owned by the server's event loop:

* :class:`SessionCache` — an LRU pool of warm
  :class:`~repro.runtime.session.RunSession` objects keyed by the
  machine signature ``(p, cost, backend, executor)``.  A hit reuses the
  session's warm machines and matrix cache; the LRU bound evicts (and
  closes) the stalest *idle* session — a session running a batch is
  never evicted from under its worker.
* :class:`RunScheduler` — ``workers`` asyncio tasks drain a **bounded**
  deque.  A full queue makes :meth:`RunScheduler.submit` raise
  :class:`QueueFullError` (the server answers a typed ``429`` reject
  line); nothing is ever buffered without bound.  Each worker takes the
  oldest *runnable* request plus every queued request with the same
  session key (a *batch*, capped at ``batch_limit``), so same-shape
  traffic shares one warm session per dispatch.  Key affinity doubles as
  the concurrency guard: one session never runs two batches at once.
* The blocking ``session.run`` calls execute on a thread
  (``loop.run_in_executor``); every ``repro_service_*`` metric update
  happens on the event-loop thread, so the obs registry needs no locks.

Spans: requests overlap, and :class:`~repro.obs.spans.Observability`
spans are strictly nested — so per-request *durations* live in the
``repro_service_latency_ms`` histogram, and each completion emits a
zero-width ``service.request`` marker span carrying the latency in its
labels (DESIGN.md §"Run service").
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..machine.export import result_to_dict
from ..runtime.session import RunSession
from .protocol import ServiceRequest, error_response, result_response, session_key

__all__ = ["QueueFullError", "RunScheduler", "SessionCache"]

#: one batch never drains more than this many queued requests
DEFAULT_BATCH_LIMIT = 8


class QueueFullError(RuntimeError):
    """The bounded request queue is at capacity (backpressure signal)."""

    def __init__(self, queue_size: int) -> None:
        super().__init__(f"request queue is full ({queue_size} pending)")
        self.queue_size = queue_size


@dataclass
class _CacheEntry:
    session: RunSession
    busy: bool = False


class SessionCache:
    """LRU pool of warm sessions keyed ``(p, cost, backend, executor)``.

    Not thread-safe by design: every call happens on the event-loop
    thread.  ``acquire`` returns the sessions it evicted so the caller
    can close them off-loop (closing a process-executor session joins
    worker processes).
    """

    def __init__(self, max_sessions: int = 8) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self._entries: OrderedDict[tuple[Any, ...], _CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def acquire(
        self, key: tuple[Any, ...]
    ) -> tuple[RunSession, bool, list[RunSession]]:
        """Check out the session for ``key``: ``(session, hit, evicted)``.

        The entry is marked busy until :meth:`release`; a busy entry is
        never handed to a second caller (the scheduler's key affinity
        guarantees it never asks) and never evicted.
        """
        entry = self._entries.get(key)
        if entry is not None:
            if entry.busy:
                raise RuntimeError(f"session {key!r} is already checked out")
            self._entries.move_to_end(key)
            entry.busy = True
            self.hits += 1
            return entry.session, True, []
        self.misses += 1
        entry = _CacheEntry(RunSession(reuse_machines=True), busy=True)
        self._entries[key] = entry
        evicted: list[RunSession] = []
        idle = [k for k, e in self._entries.items() if not e.busy]
        while len(self._entries) > self.max_sessions and idle:
            stalest = idle.pop(0)
            evicted.append(self._entries.pop(stalest).session)
            self.evictions += 1
        return entry.session, False, evicted

    def release(self, key: tuple[Any, ...]) -> None:
        """Check the session back in (it stays warm for the next hit)."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.busy = False

    def close(self) -> None:
        """Close every pooled session (idempotent; shutdown path)."""
        for entry in self._entries.values():
            entry.session.close()
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters for ``op: stats`` payloads and tests."""
        return {
            "sessions": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class _Item:
    request: ServiceRequest
    future: "asyncio.Future[dict[str, Any]]"
    enqueued_at: float = field(default_factory=time.perf_counter)


class RunScheduler:
    """Bounded request queue + worker pool over a :class:`SessionCache`.

    ``obs`` is the server's shared :class:`~repro.obs.spans.Observability`
    recorder; all updates to it happen on the event-loop thread.
    ``on_batch_start`` is a test hook called in the worker *thread* with
    the batch's requests before the first run (tests use it to hold a
    worker and provoke queue-full / eviction races deterministically).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_size: int = 64,
        max_sessions: int = 8,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
        obs: Any = None,
        on_batch_start: Callable[[list[ServiceRequest]], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
        self.workers = workers
        self.queue_size = queue_size
        self.batch_limit = batch_limit
        self.sessions = SessionCache(max_sessions)
        self._pending: deque[_Item] = deque()
        self._busy_keys: set[tuple[Any, ...]] = set()
        self._tasks: list[asyncio.Task[None]] = []
        self._wake = asyncio.Event()
        self._closed = False
        self._obs = obs
        self._on_batch_start = on_batch_start
        self.completed = 0
        self.errors = 0
        self.rejected = 0
        self.discarded = 0
        if obs is not None and obs.enabled:
            # pre-register the metric families so a fresh /metrics scrape
            # shows the full schema before the first request arrives
            m = obs.metrics
            m.counter("repro_service_requests_total",
                      "Run requests completed, by status")
            m.counter("repro_service_rejects_total",
                      "Requests rejected because the bounded queue was full")
            m.counter("repro_service_discarded_total",
                      "Completed runs whose client had already disconnected")
            m.gauge("repro_service_queue_depth", "Requests waiting in the queue")
            m.gauge("repro_service_sessions", "Warm sessions currently pooled")
            m.histogram("repro_service_latency_ms",
                        "Wall-clock queue+run latency per request")
            m.histogram("repro_service_batch_size",
                        "Requests per worker dispatch",
                        buckets=(1.0, 2.0, 4.0, 8.0, 16.0))
            m.counter("repro_service_session_hits_total",
                      "Dispatches served by an already-warm session")
            m.counter("repro_service_session_misses_total",
                      "Dispatches that had to build a fresh session")
            m.counter("repro_service_session_evictions_total",
                      "Warm sessions closed by the LRU bound")
            m.counter("repro_service_sim_time_ms_total",
                      "Sum of served t_total_ms (reconciles with the "
                      "per-result PhaseBreakdown totals)")
            m.counter("repro_service_supervisor_events_total",
                      "Real-fault supervisor events accumulated from served "
                      "supervisor summaries, by kind")

    # ------------------------------------------------------------------
    # obs helpers (event-loop thread only)
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: float = 1, **labels: Any) -> None:
        if self._obs is not None:
            self._obs.count(name, amount, **labels)

    def _observe(self, name: str, value: float, **labels: Any) -> None:
        if self._obs is not None:
            self._obs.observe(name, value, **labels)

    def _gauge_depth(self) -> None:
        if self._obs is not None and self._obs.enabled:
            self._obs.metrics.gauge("repro_service_queue_depth").set(
                len(self._pending)
            )
            self._obs.metrics.gauge("repro_service_sessions").set(
                len(self.sessions)
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker tasks (call from inside the running loop)."""
        if self._tasks:
            raise RuntimeError("scheduler already started")
        self._closed = False
        self._tasks = [
            asyncio.get_running_loop().create_task(
                self._worker(), name=f"repro-service-worker-{i}"
            )
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Drain in-flight work, fail queued requests, close the pool."""
        self._closed = True
        self._wake.set()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks = []
        for item in list(self._pending):
            if not item.future.done():
                item.future.set_result(
                    error_response(
                        item.request.id, "server is shutting down", code=503
                    )
                )
        self._pending.clear()
        self._gauge_depth()
        # closing sessions joins worker processes; keep it off the loop
        await asyncio.get_running_loop().run_in_executor(
            None, self.sessions.close
        )

    # ------------------------------------------------------------------
    # submission (event-loop thread)
    # ------------------------------------------------------------------
    def submit(self, request: ServiceRequest) -> "asyncio.Future[dict[str, Any]]":
        """Enqueue one run request; the future resolves to a response dict.

        Raises :class:`QueueFullError` when the bounded queue is at
        capacity — the caller answers with a 429 reject line.
        """
        if request.config is None:
            raise ValueError(f"cannot schedule control op {request.op!r}")
        if self._closed:
            raise RuntimeError("scheduler is stopped")
        if len(self._pending) >= self.queue_size:
            self.rejected += 1
            self._count("repro_service_rejects_total")
            raise QueueFullError(self.queue_size)
        future: asyncio.Future[dict[str, Any]] = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.append(_Item(request=request, future=future))
        self._gauge_depth()
        self._wake.set()
        return future

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Item] | None:
        """The oldest runnable item + queued same-key items (or None).

        An item is runnable when its session key is not checked out by
        another worker; same-key follow-ups jump the queue to share the
        warm session (bounded by ``batch_limit``), which is exactly the
        reordering "batches compatible requests" names.
        """
        # a cancelled future means the client disconnected while queued:
        # skip the run entirely instead of computing into the void
        for item in [it for it in self._pending if it.future.cancelled()]:
            self._pending.remove(item)
            self.discarded += 1
            self._count("repro_service_discarded_total")
        lead: _Item | None = None
        for item in self._pending:
            key = session_key(item.request.config)  # type: ignore[arg-type]
            if key not in self._busy_keys:
                lead = item
                break
        if lead is None:
            return None
        self._pending.remove(lead)
        key = session_key(lead.request.config)  # type: ignore[arg-type]
        batch = [lead]
        if self.batch_limit > 1:
            rest: deque[_Item] = deque()
            while self._pending and len(batch) < self.batch_limit:
                item = self._pending.popleft()
                item_key = session_key(item.request.config)  # type: ignore[arg-type]
                if item_key == key:
                    batch.append(item)
                else:
                    rest.append(item)
            rest.extend(self._pending)
            self._pending = rest
        self._busy_keys.add(key)
        return batch

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = self._take_batch() if self._pending else None
            if batch is None:
                if self._closed:
                    return
                # Nothing runnable *right now* — the queue is empty, or
                # every queued key is checked out by another worker.
                # Sleep until a submit or a finishing batch sets the wake
                # event.  Spinning here instead would starve the event
                # loop (this coroutine never yields), which blocks the
                # very run_in_executor completion that frees the key.
                self._wake.clear()
                await self._wake.wait()
                continue
            self._gauge_depth()
            key = session_key(batch[0].request.config)  # type: ignore[arg-type]
            outcomes: list[tuple[str, Any]]
            try:
                session, hit, evicted = self.sessions.acquire(key)
                self._count(
                    "repro_service_session_hits_total"
                    if hit
                    else "repro_service_session_misses_total"
                )
                if evicted:
                    self._count(
                        "repro_service_session_evictions_total", len(evicted)
                    )
                self._observe("repro_service_batch_size", len(batch))
                self._gauge_depth()
                try:
                    outcomes = await loop.run_in_executor(
                        None,
                        self._run_batch,
                        session,
                        [item.request for item in batch],
                        evicted,
                    )
                finally:
                    self.sessions.release(key)
            except Exception as exc:  # noqa: BLE001 - a worker must not die
                outcomes = [
                    ("error", f"{type(exc).__name__}: {exc}")
                ] * len(batch)
            finally:
                self._busy_keys.discard(key)
            self._wake.set()  # a key just freed up: re-scan the queue
            for item, outcome in zip(batch, outcomes):
                self._complete(item, outcome)

    def _run_batch(
        self,
        session: RunSession,
        requests: list[ServiceRequest],
        evicted: list[RunSession],
    ) -> list[tuple[str, Any]]:
        """Run one batch on the worker thread; never raises."""
        for stale in evicted:
            stale.close()
        if self._on_batch_start is not None:
            self._on_batch_start(requests)
        outcomes: list[tuple[str, Any]] = []
        for request in requests:
            assert request.config is not None
            try:
                obs = None
                if request.observe:
                    from ..obs.spans import Observability

                    # one recorder per run (the attach contract); the
                    # snapshot rides home inside the result payload
                    obs = Observability(
                        scheme=request.config.scheme,
                        n=request.config.n,
                        served=True,
                    )
                result = session.run(request.config, obs=obs)
                outcomes.append(("ok", result_to_dict(result)))
            except Exception as exc:  # noqa: BLE001 - the service must survive
                outcomes.append(
                    ("error", f"{type(exc).__name__}: {exc}")
                )
        return outcomes

    # ------------------------------------------------------------------
    # completion (event-loop thread)
    # ------------------------------------------------------------------
    def _complete(self, item: _Item, outcome: tuple[str, Any]) -> None:
        status, payload = outcome
        latency_ms = (time.perf_counter() - item.enqueued_at) * 1000.0
        if status == "ok":
            self.completed += 1
            response = result_response(item.request.id, payload)
            self._count("repro_service_sim_time_ms_total", payload["t_total_ms"])
            summary = payload.get("supervisor_summary")
            if summary is not None:
                for kind in ("crashes", "hangs", "restarts", "replays",
                             "downgrades", "reaped_segments", "escalations"):
                    if summary.get(kind):
                        self._count(
                            "repro_service_supervisor_events_total",
                            summary[kind], kind=kind,
                        )
        else:
            self.errors += 1
            response = error_response(item.request.id, payload, code=500)
        self._count("repro_service_requests_total", status=status)
        self._observe("repro_service_latency_ms", latency_ms, status=status)
        if self._obs is not None and self._obs.enabled:
            # marker span: durations live in the histogram (module docstring)
            with self._obs.span(
                "service.request",
                id=item.request.id,
                status=status,
                latency_ms=round(latency_ms, 3),
            ):
                pass
        if item.future.done():  # client vanished mid-run
            self.discarded += 1
            self._count("repro_service_discarded_total")
            return
        item.future.set_result(response)

    def stats(self) -> dict[str, Any]:
        """Queue + pool counters for ``op: stats`` and the CLI."""
        return {
            "queue_depth": len(self._pending),
            "workers": self.workers,
            "queue_size": self.queue_size,
            "completed": self.completed,
            "errors": self.errors,
            "rejected": self.rejected,
            "discarded": self.discarded,
            **self.sessions.stats(),
        }
