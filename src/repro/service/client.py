"""Client side: a blocking convenience client + the seeded load generator.

:class:`ServiceClient` is the simple synchronous path — connect, send one
request line, read one response line — for scripts, tests and examples.

:func:`run_load` is what ``repro load`` runs: a deterministic open-loop
load generator.  The request stream is a pure function of ``seed`` (see
:func:`load_requests`), requests are paced at a fixed offered rate on an
asyncio clock, responses are matched back by ``id``, and the returned
:class:`LoadReport` carries achieved runs/sec, p50/p99 latency and the
three loss counters the CI smoke greps for: ``rejected`` (typed 429
lines — backpressure working as designed), ``errors`` (500 lines) and
``dropped`` (responses that never arrived — always zero below
saturation, the acceptance bar).
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .protocol import encode_line

__all__ = ["LoadReport", "ServiceClient", "load_requests", "percentile", "run_load"]

#: the palette the seeded stream draws from (every registry scheme)
LOAD_SCHEMES = ("sfc", "cfs", "ed")


def _connect(
    host: str, port: int | None, socket_path: str | Path | None, timeout: float
) -> socket.socket:
    if (port is None) == (socket_path is None):
        raise ValueError("pass exactly one of port= or socket_path=")
    if socket_path is not None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        return sock
    return socket.create_connection((host, port), timeout=timeout)


class ServiceClient:
    """A blocking JSONL client: one request in flight at a time.

    Usage::

        with ServiceClient(socket_path="/tmp/repro.sock") as client:
            payload = client.run(scheme="ed", n=120, n_procs=4)
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | Path | None = None,
        timeout: float = 60.0,
    ) -> None:
        self._sock = _connect(host, port, socket_path, timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, return the decoded response line."""
        self._file.write(encode_line(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ValueError(f"malformed response line: {line!r}")
        return response

    def run(self, **params: Any) -> dict[str, Any]:
        """Run one scheme (kwargs = protocol run keys); returns the
        ``result_to_dict`` payload.  Raises on error/reject lines."""
        response = self.request({"op": "run", **params})
        if response.get("type") != "result":
            raise RuntimeError(
                f"run failed ({response.get('code')}): {response.get('error')}"
            )
        result = response["result"]
        assert isinstance(result, dict)
        return result

    def ping(self) -> bool:
        """True when the service answers a ping."""
        return self.request({"op": "ping"}).get("type") == "pong"

    def stats(self) -> dict[str, Any]:
        """The server's queue/session counters (``op: stats``)."""
        stats = self.request({"op": "stats"})["stats"]
        assert isinstance(stats, dict)
        return stats

    def metrics_text(self) -> str:
        """The live Prometheus registry (``op: metrics``)."""
        text = self.request({"op": "metrics"})["text"]
        assert isinstance(text, str)
        return text

    def close(self) -> None:
        """Close the connection (idempotent; the server keeps running)."""
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# the deterministic load generator
# ----------------------------------------------------------------------
def load_requests(
    seed: int, count: int, *, n: int = 120, n_procs: int = 4
) -> list[dict[str, Any]]:
    """The seeded request stream: a pure function of its arguments.

    Every request is a clean ``(n, n_procs)`` run; the scheme and matrix
    seed vary under ``random.Random(seed)``, so the same seed replays
    byte-identical traffic (the determinism test and the CI smoke rely
    on this).
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        out.append(
            {
                "op": "run",
                "id": f"load-{seed}-{i}",
                "scheme": rng.choice(LOAD_SCHEMES),
                "n": n,
                "n_procs": n_procs,
                "seed": rng.randrange(4),
            }
        )
    return out


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
    return ordered[int(rank) - 1]


@dataclass
class LoadReport:
    """What one ``repro load`` run measured."""

    offered_rps: float
    duration_s: float
    seed: int
    sent: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    dropped: int = 0
    wall_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    @property
    def achieved_rps(self) -> float:
        """Completed runs per wall-clock second."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99)

    def line(self) -> str:
        """The one-line summary ``repro load`` prints (CI greps it)."""
        return (
            f"load seed={self.seed} offered={self.offered_rps:g}rps "
            f"sent={self.sent} completed={self.completed} "
            f"achieved={self.achieved_rps:.1f}rps "
            f"p50={self.p50_ms:.1f}ms p99={self.p99_ms:.1f}ms "
            f"rejected={self.rejected} errors={self.errors} "
            f"dropped={self.dropped}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON form (bench_service.py embeds this)."""
        return {
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "dropped": self.dropped,
            "wall_s": self.wall_s,
            "achieved_rps": self.achieved_rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


async def _load_async(
    requests: list[dict[str, Any]],
    rps: float,
    report: LoadReport,
    *,
    host: str,
    port: int | None,
    socket_path: str | Path | None,
    drain_timeout_s: float,
) -> None:
    if socket_path is not None:
        reader, writer = await asyncio.open_unix_connection(str(socket_path))
    else:
        assert port is not None
        reader, writer = await asyncio.open_connection(host, port)
    loop = asyncio.get_running_loop()
    sent_at: dict[str, float] = {}
    outstanding: set[str] = set()
    done = loop.create_future()

    async def read_responses() -> None:
        while outstanding or not done.done():
            line = await reader.readline()
            if not line:
                return
            response = json.loads(line)
            rid = str(response.get("id"))
            if rid in outstanding:
                outstanding.discard(rid)
                kind = response.get("type")
                if kind == "result":
                    report.completed += 1
                    report.latencies_ms.append(
                        (loop.time() - sent_at[rid]) * 1000.0
                    )
                elif kind == "reject":
                    report.rejected += 1
                else:
                    report.errors += 1
            if done.done() and not outstanding:
                return

    reader_task = loop.create_task(read_responses())
    start = loop.time()
    try:
        for i, request in enumerate(requests):
            delay = start + i / rps - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            rid = str(request["id"])
            sent_at[rid] = loop.time()
            outstanding.add(rid)
            writer.write(encode_line(request))
            await writer.drain()
            report.sent += 1
        done.set_result(None)
        try:
            await asyncio.wait_for(reader_task, timeout=drain_timeout_s)
        except (TimeoutError, asyncio.TimeoutError):
            pass  # whatever is still outstanding is counted as dropped
    finally:
        if not done.done():
            done.set_result(None)
        if not reader_task.done():
            reader_task.cancel()
            await asyncio.gather(reader_task, return_exceptions=True)
        report.dropped = len(outstanding)
        report.wall_s = loop.time() - start
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run_load(
    *,
    rps: float,
    duration_s: float,
    seed: int = 0,
    host: str = "127.0.0.1",
    port: int | None = None,
    socket_path: str | Path | None = None,
    n: int = 120,
    n_procs: int = 4,
    drain_timeout_s: float = 60.0,
) -> LoadReport:
    """Offer ``rps`` requests/second for ``duration_s`` seconds.

    The stream is :func:`load_requests` of ``seed``; pacing is open-loop
    (a slow server does not slow the offered rate — that is how the
    saturation bench finds the knee).  After the last send, responses
    are drained for up to ``drain_timeout_s``; anything still missing is
    ``dropped``.
    """
    if rps <= 0:
        raise ValueError(f"rps must be > 0, got {rps}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    count = max(1, int(rps * duration_s))
    requests = load_requests(seed, count, n=n, n_procs=n_procs)
    report = LoadReport(offered_rps=rps, duration_s=duration_s, seed=seed)
    asyncio.run(
        _load_async(
            requests,
            rps,
            report,
            host=host,
            port=port,
            socket_path=socket_path,
            drain_timeout_s=drain_timeout_s,
        )
    )
    return report
