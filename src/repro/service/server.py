"""The asyncio listener: JSONL run protocol + a live ``GET /metrics``.

:class:`RunService` binds one listener (TCP or a unix socket) and speaks
two dialects on it, sniffed from the first line of each connection:

* **JSONL** (the default): one request object per line, one typed
  response line per request.  Requests on one connection are pipelined —
  the read loop keeps consuming while earlier runs execute — and
  responses stream back in *completion* order, correlated by ``id``.
* **HTTP** (a line starting ``GET``/``HEAD``): a minimal one-shot
  responder that serves the live Prometheus registry at ``/metrics``
  (the PR 4 text exporter over the server's own obs recorder) so a
  scrape target needs no second port.

Disconnect tolerance: a client that vanishes mid-run never takes the
service down — its in-flight responses are discarded (counted in
``repro_service_discarded_total``), the warm session survives, and the
next connection is served normally.
"""

from __future__ import annotations

import asyncio
import contextlib
from pathlib import Path
from typing import Any

from ..obs.exporters import to_prometheus_text
from ..obs.spans import Observability
from .protocol import (
    ProtocolError,
    ServiceRequest,
    encode_line,
    error_response,
    parse_request_line,
    reject_response,
)
from .queue import QueueFullError, RunScheduler

__all__ = ["RunService"]


class RunService:
    """One run-service endpoint: listener + scheduler + obs recorder.

    Exactly one of ``port`` / ``socket_path`` selects the listener
    flavour (``port=0`` asks the OS for a free port — tests use this).
    ``backend`` / ``executor`` are placement *defaults* applied to
    requests that do not choose their own; results are byte-identical
    either way.  ``obs`` defaults to a fresh enabled recorder whose
    registry backs ``GET /metrics``.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | Path | None = None,
        workers: int = 2,
        queue_size: int = 64,
        max_sessions: int = 8,
        backend: str | None = None,
        executor: str | None = None,
        obs: Observability | None = None,
        on_batch_start: Any = None,
    ) -> None:
        if (port is None) == (socket_path is None):
            raise ValueError("pass exactly one of port= or socket_path=")
        self.host = host
        self.port = port
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.default_backend = backend
        self.default_executor = executor
        self.obs = obs if obs is not None else Observability(service="repro")
        self.scheduler = RunScheduler(
            workers=workers,
            queue_size=queue_size,
            max_sessions=max_sessions,
            obs=self.obs,
            on_batch_start=on_batch_start,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections = 0
        self._disconnects = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """Printable bound address (resolved port for ``port=0``)."""
        if self.socket_path is not None:
            return str(self.socket_path)
        sockets = getattr(self._server, "sockets", None)
        if sockets:
            host, port = sockets[0].getsockname()[:2]
            return f"{host}:{port}"
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener and spawn the scheduler's workers."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self.scheduler.start()
        if self.socket_path is not None:
            self.socket_path.unlink(missing_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle, path=str(self.socket_path)
            )
        else:
            assert self.port is not None
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port
            )

    async def serve_forever(self) -> None:
        """Serve until cancelled (``repro serve`` wraps this)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drain the scheduler, close warm sessions."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.stop()
        if self.socket_path is not None:
            self.socket_path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self.obs.count("repro_service_connections_total")
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(b"GET ") or first.startswith(b"HEAD "):
                await self._serve_http(first, reader, writer)
                return
            await self._serve_jsonl(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            self._disconnects += 1
            self.obs.count("repro_service_disconnects_total")
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_jsonl(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        lock = asyncio.Lock()  # serialises response lines on this socket
        in_flight: set[asyncio.Task[None]] = set()
        seq = 0
        line = first
        while line:
            seq += 1
            task = self._dispatch(line, seq, writer, lock)
            if task is not None:
                in_flight.add(task)
                task.add_done_callback(in_flight.discard)
            line = await reader.readline()
        # EOF: the client closed.  Anything still running is orphaned —
        # cancel the response writers; the runs themselves complete and
        # are discarded by the scheduler (counted, never fatal).
        if in_flight:
            self._disconnects += 1
            self.obs.count("repro_service_disconnects_total")
            for task in list(in_flight):
                task.cancel()
            await asyncio.gather(*in_flight, return_exceptions=True)

    def _dispatch(
        self,
        line: bytes,
        seq: int,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> "asyncio.Task[None] | None":
        """Handle one request line; returns the response task for runs."""
        try:
            request = parse_request_line(
                line,
                seq=seq,
                default_backend=self.default_backend,
                default_executor=self.default_executor,
            )
        except ProtocolError as exc:
            self.obs.count("repro_service_invalid_total")
            return asyncio.get_running_loop().create_task(
                self._write_line(
                    writer, lock, error_response(exc.request_id, str(exc))
                )
            )
        if request.op != "run":
            return asyncio.get_running_loop().create_task(
                self._write_line(writer, lock, self._control(request))
            )
        try:
            future = self.scheduler.submit(request)
        except QueueFullError:
            return asyncio.get_running_loop().create_task(
                self._write_line(
                    writer,
                    lock,
                    reject_response(request.id, self.scheduler.queue_size),
                )
            )
        return asyncio.get_running_loop().create_task(
            self._respond(future, writer, lock)
        )

    def _control(self, request: ServiceRequest) -> dict[str, Any]:
        """ping / stats / metrics control responses (loop thread, sync)."""
        if request.op == "ping":
            return {"type": "pong", "id": request.id}
        if request.op == "stats":
            return {
                "type": "stats",
                "id": request.id,
                "stats": {
                    **self.scheduler.stats(),
                    "connections": self._connections,
                    "disconnects": self._disconnects,
                },
            }
        return {
            "type": "metrics",
            "id": request.id,
            "text": to_prometheus_text(self.obs.metrics),
        }

    async def _respond(
        self,
        future: "asyncio.Future[dict[str, Any]]",
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        response = await future
        await self._write_line(writer, lock, response)

    async def _write_line(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        response: dict[str, Any],
    ) -> None:
        async with lock:
            if writer.is_closing():
                return
            writer.write(encode_line(response))
            with contextlib.suppress(ConnectionError):
                await writer.drain()

    # ------------------------------------------------------------------
    # the /metrics endpoint
    # ------------------------------------------------------------------
    async def _serve_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One-shot HTTP responder: ``GET /metrics`` over the live registry."""
        # drain the request headers (ignored; scrapes carry no body)
        while True:
            header = await reader.readline()
            if header in (b"", b"\r\n", b"\n"):
                break
        parts = first.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else "/"
        if path.split("?")[0] == "/metrics":
            self.obs.count("repro_service_scrapes_total")
            body = to_prometheus_text(self.obs.metrics).encode("utf-8")
            status = "200 OK"
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = b"repro run service: scrape /metrics\n"
            status = "404 Not Found"
            ctype = "text/plain; charset=utf-8"
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head if parts and parts[0] == "HEAD" else head + body)
        with contextlib.suppress(ConnectionError):
            await writer.drain()
