"""The throughput run service: ``repro serve`` / ``repro load``.

A stdlib-only :mod:`asyncio` server that turns the warm
:class:`~repro.runtime.session.RunSession` seam of PR 8 into a long-lived
endpoint: clients send one JSON object per line (a *scheme-run request* —
the same axes an :class:`~repro.runtime.driver.ExperimentConfig` carries),
and receive one JSON line back with the full
:func:`~repro.machine.export.result_to_dict` payload.  The scheduler
batches compatible requests onto a bounded pool of warm sessions keyed
``(p, cost, backend, executor)`` with LRU eviction, the queue is bounded
(overload answers a typed ``429``-style reject line, never an unbounded
buffer), and the PR 4 Prometheus exporter is mounted live at
``GET /metrics`` on the same listener.

Layering: the service sits *above* :mod:`repro.runtime` — it never
touches mailboxes, processors or wire buffers (reprolint RL002), and all
``repro_service_*`` telemetry rides the existing
:class:`~repro.obs.spans.Observability` layer.

See docs/SERVICE.md for the protocol spec, lifecycle and cookbook.
"""

from .client import LoadReport, ServiceClient, load_requests, run_load
from .protocol import (
    ProtocolError,
    ServiceRequest,
    encode_line,
    error_response,
    parse_request_line,
    reject_response,
    result_response,
    session_key,
)
from .queue import QueueFullError, RunScheduler, SessionCache
from .server import RunService

__all__ = [
    "LoadReport",
    "ProtocolError",
    "QueueFullError",
    "RunScheduler",
    "RunService",
    "ServiceClient",
    "ServiceRequest",
    "SessionCache",
    "encode_line",
    "error_response",
    "load_requests",
    "parse_request_line",
    "reject_response",
    "result_response",
    "run_load",
    "session_key",
]
