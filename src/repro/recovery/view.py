"""Machine views used by the recovery layer.

:class:`SurvivorView`
    Presents the surviving processors of a partially-failed machine as a
    dense virtual machine with ranks ``0..p'-1``.  Scheme and app code is
    written against contiguous ranks (a partition plan's assignments are
    ``0..p-1``); after a fail-stop death the physical roster has holes, so
    recovery re-plans for ``p'`` processors and runs the unchanged code
    against this facade, which translates every rank on the way through.

:class:`GhostView`
    Presents the *original* ``p`` ranks of a machine whose dead slots are
    simulated host-side by ghost :class:`~repro.machine.processor.
    Processor` objects.  The peer-redistribution policy uses it to re-drive
    a scheme under the old partition plan: live ranks do their work on the
    real machine; a dead rank's share is performed *by the host* (its
    "send" is a host-local buffer move, its compute is charged to the
    host's serial timeline).  Afterwards the ghosts hold exactly the
    RO/CO/VL state the dead processors would have held — the host-side
    checkpoint replicas that peer redistribution then scatters over the
    survivors.

Both views deliberately expose only the :class:`~repro.machine.machine.
Machine` surface the schemes/apps use (``send``/``receive``/``charge_*``/
``processor``/``trace``/…); anything else is a bug worth surfacing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, Sequence

from ..machine.machine import HOST, Machine
from ..machine.processor import Message, Processor
from ..machine.trace import Phase

__all__ = ["GhostView", "SurvivorView", "make_ghosts"]


class SurvivorView:
    """A dense-rank facade over the surviving processors of ``machine``."""

    def __init__(self, machine: Machine, ranks: Sequence[int]) -> None:
        ranks = list(ranks)
        if not ranks:
            raise ValueError("a survivor view needs at least one rank")
        seen = set()
        for r in ranks:
            if not 0 <= r < machine.n_procs:
                raise ValueError(f"rank {r} out of range for p={machine.n_procs}")
            if r in seen:
                raise ValueError(f"duplicate rank {r} in survivor view")
            seen.add(r)
        self.machine = machine
        self._physical = list(ranks)
        self._virtual = {phys: v for v, phys in enumerate(ranks)}

    # -- rank translation ------------------------------------------------
    @property
    def n_procs(self) -> int:
        return len(self._physical)

    def physical(self, rank: int) -> int:
        """Physical rank behind virtual ``rank``."""
        try:
            return self._physical[rank]
        except IndexError:
            raise ValueError(
                f"virtual rank {rank} out of range for p'={self.n_procs}"
            ) from None

    def virtual(self, phys: int) -> int:
        """Virtual rank of physical ``phys`` (must be a survivor)."""
        try:
            return self._virtual[phys]
        except KeyError:
            raise ValueError(f"physical rank {phys} is not in this view") from None

    # -- delegated machine surface --------------------------------------
    @property
    def cost(self):
        return self.machine.cost

    @property
    def topology(self):
        return self.machine.topology

    @property
    def trace(self):
        return self.machine.trace

    @property
    def membership(self):
        return self.machine.membership

    @property
    def faults(self):
        return self.machine.faults

    @property
    def host_memory(self) -> dict[str, Any]:
        return self.machine.host_memory

    @property
    def obs(self):
        return self.machine.obs

    def fault_summary(self):
        return self.machine.fault_summary()

    def supervisor_summary(self):
        return self.machine.supervisor_summary()

    def kernel_context(self):
        return self.machine.kernel_context()

    def charge_host_ops(self, n_ops: int, phase: Phase, label: str = "") -> float:
        return self.machine.charge_host_ops(n_ops, phase, label)

    def charge_proc_ops(
        self, rank: int, n_ops: int, phase: Phase, label: str = ""
    ) -> float:
        return self.machine.charge_proc_ops(self.physical(rank), n_ops, phase, label)

    def processor(self, rank: int) -> Processor:
        return self.machine.processor(self.physical(rank))

    def send(
        self,
        dst: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        *,
        src: int = HOST,
        tag: str = "",
    ) -> float:
        return self.machine.send(
            self.physical(dst),
            payload,
            n_elements,
            phase,
            src=src if src == HOST else self.physical(src),
            tag=tag,
        )

    def send_to_host(
        self, src: int, payload: Any, n_elements: int, phase: Phase, *, tag: str = ""
    ) -> float:
        return self.machine.send_to_host(
            self.physical(src), payload, n_elements, phase, tag=tag
        )

    def receive(
        self, rank: int, tag: str | None = None, *, phase: Phase | None = None
    ) -> Message:
        return self.machine.receive(self.physical(rank), tag, phase=phase)

    def _pop_frame(self, rank: int, tag: str | None = None) -> Message:
        return self.machine._pop_frame(self.physical(rank), tag)

    def rank_pool(self):
        """A rank pool whose worker addressing follows the survivor map.

        Tasks are submitted (and charged) under *virtual* ranks; the pool
        translates to physical ranks only to pick the worker process, so
        the same re-driven scheme code parallelises on the shrunken
        roster.
        """
        from ..exec import RankPool

        return RankPool(
            self, self.machine._executor_session(), physical=self.physical
        )

    def host_receive(self, tag: str | None = None) -> Message:
        """Pop a host message, translating its source to the virtual rank."""
        msg = self.machine.host_receive(tag)
        if msg.src == HOST or msg.src not in self._virtual:
            return msg
        return replace(msg, src=self._virtual[msg.src])

    def __repr__(self) -> str:
        return f"SurvivorView(p'={self.n_procs}, physical={self._physical})"


class GhostView:
    """The original roster with dead slots simulated host-side.

    ``ghosts`` maps a dead physical rank to the host-held ghost
    :class:`Processor` standing in for it.  Traffic to a ghost never
    touches the interconnect: the host moves the buffer into the ghost's
    mailbox at one op per element, and the ghost's compute is charged to
    the host's *serial* timeline (the host really does that work while the
    live processors run in parallel — a deliberately honest overhead).
    """

    def __init__(self, machine: Machine, ghosts: dict[int, Processor]) -> None:
        for rank in ghosts:
            if not 0 <= rank < machine.n_procs:
                raise ValueError(f"ghost rank {rank} out of range")
            if machine.membership.is_alive(rank):
                raise ValueError(f"rank {rank} is alive; it cannot be a ghost")
        self.machine = machine
        self.ghosts = ghosts

    @property
    def n_procs(self) -> int:
        return self.machine.n_procs

    @property
    def cost(self):
        return self.machine.cost

    @property
    def topology(self):
        return self.machine.topology

    @property
    def trace(self):
        return self.machine.trace

    @property
    def membership(self):
        return self.machine.membership

    @property
    def faults(self):
        return self.machine.faults

    @property
    def host_memory(self) -> dict[str, Any]:
        return self.machine.host_memory

    @property
    def obs(self):
        return self.machine.obs

    def fault_summary(self):
        return self.machine.fault_summary()

    def supervisor_summary(self):
        return self.machine.supervisor_summary()

    def kernel_context(self):
        return self.machine.kernel_context()

    def charge_host_ops(self, n_ops: int, phase: Phase, label: str = "") -> float:
        return self.machine.charge_host_ops(n_ops, phase, label)

    def charge_proc_ops(
        self, rank: int, n_ops: int, phase: Phase, label: str = ""
    ) -> float:
        if rank in self.ghosts:
            # the host performs the dead processor's work, serially
            return self.machine.charge_host_ops(n_ops, phase, label=f"ghost-{label}")
        return self.machine.charge_proc_ops(rank, n_ops, phase, label)

    def processor(self, rank: int) -> Processor:
        if rank in self.ghosts:
            return self.ghosts[rank]
        return self.machine.processor(rank)

    def send(
        self,
        dst: int,
        payload: Any,
        n_elements: int,
        phase: Phase,
        *,
        src: int = HOST,
        tag: str = "",
    ) -> float:
        if dst in self.ghosts:
            if src != HOST and src in self.ghosts:
                raise ValueError("ghost-to-ghost traffic is not modelled")
            # host-local buffer move into the ghost replica: one op/element
            t = self.machine.charge_host_ops(
                n_elements, phase, label=f"ghost-send:{tag}" if tag else "ghost-send"
            )
            self.ghosts[dst].deliver(
                Message(src=src, dst=dst, tag=tag, payload=payload, n_elements=n_elements)
            )
            return t
        return self.machine.send(dst, payload, n_elements, phase, src=src, tag=tag)

    def send_to_host(
        self, src: int, payload: Any, n_elements: int, phase: Phase, *, tag: str = ""
    ) -> float:
        if src in self.ghosts:
            t = self.machine.charge_host_ops(
                n_elements, phase, label=f"ghost-gather:{tag}" if tag else "ghost-gather"
            )
            self.machine.host_mailbox.append(
                Message(src=src, dst=HOST, tag=tag, payload=payload, n_elements=n_elements)
            )
            return t
        return self.machine.send_to_host(src, payload, n_elements, phase, tag=tag)

    def receive(
        self, rank: int, tag: str | None = None, *, phase: Phase | None = None
    ) -> Message:
        if rank in self.ghosts:
            # ghost frames never crossed the wire: no checksum, no verify op
            return self.ghosts[rank].receive(tag)
        return self.machine.receive(rank, tag, phase=phase)

    def _pop_frame(self, rank: int, tag: str | None = None) -> Message:
        if rank in self.ghosts:
            # ghost frames carry no checksum, so the task's open_frame
            # verifies nothing — same as the serial ghost receive
            return self.ghosts[rank].receive(tag)
        return self.machine._pop_frame(rank, tag)

    def rank_pool(self):
        """A rank pool whose ghost ranks run inline, host-side.

        A dead rank has no worker (fail-stop killed it); the host
        executes its tasks itself and :meth:`charge_proc_ops` already
        translates their charges onto the host's serial timeline — the
        same honest overhead the serial ghost re-drive pays.
        """
        from ..exec import RankPool

        return RankPool(
            self,
            self.machine._executor_session(),
            inline_ranks=frozenset(self.ghosts),
        )

    def host_receive(self, tag: str | None = None) -> Message:
        return self.machine.host_receive(tag)

    def __repr__(self) -> str:
        return (
            f"GhostView(p={self.n_procs}, ghosts={sorted(self.ghosts)})"
        )


def make_ghosts(dead: Iterable[int]) -> dict[int, Processor]:
    """Host-held ghost processors standing in for the ``dead`` ranks.

    The recovery policies build their :class:`GhostView` rosters through
    this factory so that ghost :class:`Processor` construction stays
    inside the transport-virtualisation layer — the one place (besides
    :class:`~repro.machine.machine.Machine` itself) entitled to own
    processor endpoints.  A ghost never touches the interconnect: its
    traffic is host-local by construction (see :class:`GhostView`), so
    the cost model's no-drift contract survives the detour.
    """
    return {r: Processor(r) for r in dead}
