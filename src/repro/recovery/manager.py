"""Recovery policies: run a scheme (or an app) through fail-stop failures.

Two scheme-level policies (ISSUE: *detection, checkpointed recovery, and
degraded-mode redistribution*), both exposed through
:func:`run_with_recovery`:

``host-resend``
    The distribution phase is host-driven, and the host still owns the
    global sparse array — so when a rank dies mid-distribution the host
    confirms the failure (paying the detection timeouts), re-partitions
    the array over the survivors and simply re-drives the whole scheme on
    the shrunken roster.  Wasted work from the aborted round stays charged.

``peer-redistribute``
    The paper-faithful degraded-mode variant: the *old* partition's blocks
    are first completed under the original plan — a dead rank's share is
    simulated host-side by a ghost replica (:class:`~repro.recovery.view.
    GhostView`) — then every block is checkpointed at the host and the
    survivors absorb the lost partition point-to-point with the ED-style
    coordinate-pair wire format of :mod:`repro.core.redistribute`.  A death
    *during* recovery falls back to sourcing every block from the host
    checkpoints (survivor state may already be half-overwritten).

Both policies terminate: every failed round permanently removes at least
one rank, and the injector always spares at least one survivor.  Both end
with every survivor holding the block of a fresh ``p'``-processor plan —
byte-identical to a fault-free run on the surviving membership, which the
chaos suite pins.

:class:`RecoveryRuntime` carries the same machinery into the iterative
apps: it checkpoints the current plan's locals, and on a mid-iteration
:class:`~repro.machine.membership.DeadRankError` restores a degraded plan
from the checkpoints so the app can replay the interrupted iteration (its
vectors live host-side and are never lost).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Type, Union

from ..core.base import (
    LOCAL_KEY,
    CompressedLocal,
    DistributionScheme,
    SchemeResult,
    compression_kind,
)
from ..core.redistribute import (
    assemble_block,
    local_to_global_coo,
    ownership_maps,
    triplet_buffer,
)
from ..core.registry import get_compression, get_partition, get_scheme
from ..machine.machine import HOST, DeadRankError, Machine
from ..machine.trace import Phase
from ..partition.base import PartitionMethod, PartitionPlan
from ..sparse.coo import COOMatrix
from .checkpoint import CHECKPOINT_KEY, checkpoint_locals, get_checkpoint
from .summary import RecoverySummary
from .view import GhostView, SurvivorView, make_ghosts

__all__ = [
    "POLICIES",
    "RecoveryRuntime",
    "peer_redistribute",
    "run_with_recovery",
]

#: the scheme-level recovery policies run_with_recovery understands
POLICIES = ("host-resend", "peer-redistribute")

#: a block source for peer redistribution: held by a live processor
#: (``("proc", physical_rank)``) or replicated at the host
#: (``("host", compressed_block)``)
Source = tuple[str, object]

_PHASES = (Phase.DISTRIBUTION, Phase.COMPRESSION, Phase.COMPUTE)


def _snapshot(machine: Machine) -> tuple[int, int, float]:
    """(messages, elements, elapsed-ms) across all charged phases so far."""
    msgs = elems = 0
    elapsed = 0.0
    for ph in _PHASES:
        b = machine.trace.breakdown(ph)
        msgs += b.n_messages
        elems += b.elements_sent
        elapsed += b.elapsed
    return msgs, elems, elapsed


def _confirm(machine: Machine, err: DeadRankError, phase: Phase) -> None:
    """Make sure the host has *paid for* knowing ``err.rank`` is dead."""
    if machine.membership.is_alive(err.rank):
        machine.confirm_failure(err.rank, phase)
    machine.purge_mailboxes()


def _summary(
    machine: Machine,
    policy: str,
    *,
    rounds: int,
    snapshot: tuple[int, int, float] | None,
    failure_sequence: list[int],
    checkpoint_elements: int = 0,
    rollbacks: int = 0,
) -> RecoverySummary:
    m = machine.membership
    rec_msgs = rec_elems = 0
    rec_time = 0.0
    if snapshot is not None:
        msgs, elems, elapsed = _snapshot(machine)
        rec_msgs = msgs - snapshot[0]
        rec_elems = elems - snapshot[1]
        rec_time = elapsed - snapshot[2]
    return RecoverySummary(
        policy=policy,
        failed_ranks=tuple(m.dead),
        survivor_ranks=tuple(m.survivors),
        epoch=m.epoch,
        detections=len(m.detections),
        missed_acks=m.missed_acks_total,
        detection_time_ms=m.detection_time_ms,
        recovery_rounds=rounds,
        recovery_messages=rec_msgs,
        recovery_elements=rec_elems,
        recovery_time_ms=rec_time,
        checkpoint_elements=checkpoint_elements,
        rollbacks=rollbacks,
        failure_sequence=tuple(failure_sequence),
    )


# ----------------------------------------------------------------------
# peer redistribution (degraded-mode data movement)
# ----------------------------------------------------------------------
def peer_redistribute(
    machine: Machine,
    old_plan: PartitionPlan,
    new_view: SurvivorView,
    new_plan: PartitionPlan,
    compression: Type[CompressedLocal],
    *,
    sources: dict[int, Source],
    phase: Phase = Phase.DISTRIBUTION,
) -> list[CompressedLocal]:
    """Move ``old_plan`` blocks onto the survivors' ``new_plan`` blocks.

    ``sources[old_rank]`` says where that block's data lives right now:
    ``("proc", phys)`` — on live physical processor ``phys`` (sent
    point-to-point, ED-style triplet buffers); ``("host", block)`` — as a
    host-side replica (ghost state or checkpoint; the host sends it).
    Destinations are the *virtual* ranks of ``new_view``.

    Charges mirror :func:`repro.core.redistribute.redistribute`: one scan
    op per stored nonzero, three encode ops per forwarded nonzero, the
    full message cost per buffer, and decode/recompress at the receiver
    (via :func:`~repro.core.redistribute.assemble_block`).

    Raises :class:`DeadRankError` if a rank dies mid-move — the caller
    retries on the shrunken roster, sourcing from checkpoints only.
    """
    with machine.obs.span(
        "recovery.peer_redistribute",
        phase=phase.value,
        old_p=old_plan.n_procs,
        new_p=new_plan.n_procs,
    ):
        return _peer_redistribute_impl(
            machine, old_plan, new_view, new_plan, compression,
            sources=sources, phase=phase,
        )


def _peer_redistribute_impl(
    machine: Machine,
    old_plan: PartitionPlan,
    new_view: SurvivorView,
    new_plan: PartitionPlan,
    compression: Type[CompressedLocal],
    *,
    sources: dict[int, Source],
    phase: Phase,
) -> list[CompressedLocal]:
    """The data-movement body behind :func:`peer_redistribute`."""
    if old_plan.global_shape != new_plan.global_shape:
        raise ValueError(
            f"plans cover different arrays: {old_plan.global_shape} vs "
            f"{new_plan.global_shape}"
        )
    row_key, col_comp, owner_of_pair = ownership_maps(new_plan)
    staged: list[list] = [[] for _ in range(new_plan.n_procs)]

    for assignment in old_plan:
        src_kind, src_val = sources[assignment.rank]
        if src_kind == "proc":
            comp = machine.processor(src_val).load(LOCAL_KEY)
        elif src_kind == "host":
            comp = src_val
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown source kind {src_kind!r}")
        if comp.shape != assignment.local_shape:
            raise ValueError(
                f"old rank {assignment.rank}: block shape {comp.shape} does "
                f"not match the plan {assignment.local_shape}"
            )
        g_rows, g_cols, values = local_to_global_coo(comp.to_coo(), assignment)
        owners = owner_of_pair[row_key[g_rows] + col_comp[g_cols]]
        # one owner-lookup scan per stored nonzero
        if src_kind == "proc":
            machine.charge_proc_ops(src_val, comp.nnz, phase, label="recover-scan")
        else:
            machine.charge_host_ops(comp.nnz, phase, label="recover-scan")
        for dst in range(new_plan.n_procs):
            mask = owners == dst
            count = int(mask.sum())
            if count == 0:
                continue
            buffer = triplet_buffer(g_rows, g_cols, values, mask)
            dest_phys = new_view.physical(dst)
            if src_kind == "proc":
                machine.charge_proc_ops(
                    src_val, 3 * count, phase, label="recover-encode"
                )
                if src_val == dest_phys:
                    staged[dst].append(buffer)  # stays local, no wire cost
                else:
                    machine.send(
                        dest_phys, buffer, len(buffer), phase,
                        src=src_val, tag="recover",
                    )
            else:
                machine.charge_host_ops(3 * count, phase, label="recover-encode")
                machine.send(
                    dest_phys, buffer, len(buffer), phase,
                    src=HOST, tag="recover",
                )

    locals_: list[CompressedLocal] = []
    for assignment in new_plan:
        pieces = list(staged[assignment.rank])
        while True:
            try:
                pieces.append(
                    new_view.receive(
                        assignment.rank, "recover", phase=phase
                    ).payload
                )
            except LookupError:
                break
        locals_.append(
            assemble_block(
                new_view, assignment, pieces, new_plan.global_shape, compression
            )
        )
    return locals_


# ----------------------------------------------------------------------
# scheme-level recovery driver
# ----------------------------------------------------------------------
def run_with_recovery(
    scheme: Union[str, DistributionScheme],
    machine: Machine,
    global_matrix: COOMatrix,
    partition: Union[str, PartitionMethod],
    compression: Union[str, Type[CompressedLocal]],
    *,
    policy: str = "host-resend",
) -> SchemeResult:
    """Run ``scheme`` on ``machine``, surviving fail-stop rank deaths.

    Returns a :class:`SchemeResult` for the *surviving* membership: its
    plan covers ``p'`` virtual processors and its ``locals_`` are exactly
    what a fault-free run on a ``p'``-processor machine would produce
    (the recovery invariant, pinned by ``tests/recovery/``).  All aborted
    work, detection timeouts and recovery traffic stay charged in the
    machine's trace and are reported in ``result.recovery_summary``.

    With no fail-stop failure the scheme runs exactly once, unmodified.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    if isinstance(partition, str):
        partition = get_partition(partition)
    if isinstance(compression, str):
        compression = get_compression(compression)
    if policy not in POLICIES:
        raise ValueError(f"unknown recovery policy {policy!r}; pick from {POLICIES}")
    if policy == "host-resend":
        return _run_host_resend(scheme, machine, global_matrix, partition, compression)
    return _run_peer(scheme, machine, global_matrix, partition, compression)


def _run_host_resend(
    scheme: DistributionScheme,
    machine: Machine,
    global_matrix: COOMatrix,
    partition: PartitionMethod,
    compression: Type[CompressedLocal],
) -> SchemeResult:
    """Re-partition over the survivors and re-drive the scheme from the host."""
    rounds = 0
    snapshot: tuple[int, int, float] | None = None
    failure_sequence: list[int] = []
    while True:
        survivors = machine.membership.survivors
        view = (
            machine
            if len(survivors) == machine.n_procs
            else SurvivorView(machine, survivors)
        )
        plan = partition.plan(global_matrix.shape, len(survivors))
        try:
            result = scheme.run(view, global_matrix, plan, compression)
            break
        except DeadRankError as err:
            if snapshot is None:
                snapshot = _snapshot(machine)
            failure_sequence.append(err.rank)
            _confirm(machine, err, Phase.DISTRIBUTION)
            rounds += 1
            machine.obs.count(
                "repro_recovery_rounds_total",
                help="Recovery rounds driven after fail-stop deaths",
                policy="host-resend",
            )
    return replace(
        result,
        recovery_summary=_summary(
            machine,
            "host-resend",
            rounds=rounds,
            snapshot=snapshot,
            failure_sequence=failure_sequence,
        ),
    )


def _run_peer(
    scheme: DistributionScheme,
    machine: Machine,
    global_matrix: COOMatrix,
    partition: PartitionMethod,
    compression: Type[CompressedLocal],
) -> SchemeResult:
    """Complete the old plan with host-side ghosts, checkpoint, redistribute."""
    kind = compression_kind(compression)
    rounds = 0
    snapshot: tuple[int, int, float] | None = None
    failure_sequence: list[int] = []
    checkpoint_elements = 0
    old_plan = partition.plan(global_matrix.shape, machine.n_procs)

    # -- phase A: produce the full old-plan state, ghosting dead slots -----
    while True:
        dead = machine.membership.dead
        ghosts = make_ghosts(dead)
        gview: Machine | GhostView = (
            GhostView(machine, ghosts) if ghosts else machine
        )
        try:
            base_result = scheme.run(gview, global_matrix, old_plan, compression)
            if not ghosts:
                # clean run: nothing to recover
                return replace(
                    base_result,
                    recovery_summary=_summary(
                        machine,
                        "peer-redistribute",
                        rounds=rounds,
                        snapshot=snapshot,
                        failure_sequence=failure_sequence,
                    ),
                )
            # replicate every old block at the host (live blocks gathered,
            # ghost blocks moved host-locally)
            checkpoint_elements = checkpoint_locals(
                gview, old_plan, phase=Phase.DISTRIBUTION
            )
            break
        except DeadRankError as err:
            if snapshot is None:
                snapshot = _snapshot(machine)
            failure_sequence.append(err.rank)
            _confirm(machine, err, Phase.DISTRIBUTION)
            rounds += 1
            machine.obs.count(
                "repro_recovery_rounds_total",
                help="Recovery rounds driven after fail-stop deaths",
                policy="peer-redistribute",
            )

    # -- phase B: survivors absorb the lost partition ----------------------
    from_checkpoints_only = False
    while True:
        survivors = machine.membership.survivors
        new_plan = partition.plan(global_matrix.shape, len(survivors))
        new_view = SurvivorView(machine, survivors)
        blocks = machine.host_memory[CHECKPOINT_KEY]["blocks"]
        sources: dict[int, Source] = {}
        for a in old_plan:
            if not from_checkpoints_only and machine.membership.is_alive(a.rank):
                sources[a.rank] = ("proc", a.rank)
            else:
                sources[a.rank] = ("host", blocks[a.rank])
        try:
            locals_ = peer_redistribute(
                machine, old_plan, new_view, new_plan, compression,
                sources=sources, phase=Phase.DISTRIBUTION,
            )
            break
        except DeadRankError as err:
            failure_sequence.append(err.rank)
            _confirm(machine, err, Phase.DISTRIBUTION)
            # survivor state may be half-overwritten: retry sourcing every
            # block from the immutable host checkpoints
            from_checkpoints_only = True
            rounds += 1
            machine.obs.count(
                "repro_recovery_rounds_total",
                help="Recovery rounds driven after fail-stop deaths",
                policy="peer-redistribute",
            )

    result = scheme._result(new_view, global_matrix, new_plan, kind, locals_)
    return replace(
        result,
        recovery_summary=_summary(
            machine,
            "peer-redistribute",
            rounds=rounds,
            snapshot=snapshot,
            failure_sequence=failure_sequence,
            checkpoint_elements=checkpoint_elements,
        ),
    )


# ----------------------------------------------------------------------
# app-level recovery runtime (checkpoint / rollback)
# ----------------------------------------------------------------------
class RecoveryRuntime:
    """Checkpoint/rollback support for the iterative apps.

    Construct it after a successful scheme run: it gathers a host-side
    checkpoint of the current plan's locals (charged), then hands the apps
    a ``(view, plan)`` pair to compute against.  When an iteration dies
    with :class:`DeadRankError`, :meth:`handle` confirms the failure,
    restores a degraded ``p'`` plan purely from the checkpoints, refreshes
    the checkpoint under the new plan, and bumps :attr:`rollbacks` — the
    caller then simply replays the interrupted iteration (the app's
    vectors live host-side and were never lost).
    """

    def __init__(
        self,
        machine: Machine,
        plan: PartitionPlan,
        compression: Union[str, Type[CompressedLocal]],
        *,
        partition: Union[str, PartitionMethod, None] = None,
        phase: Phase = Phase.COMPUTE,
    ) -> None:
        if isinstance(compression, str):
            compression = get_compression(compression)
        if partition is None:
            partition = plan.method
        if isinstance(partition, str):
            partition = get_partition(partition)
        self.machine = machine
        self.compression = compression
        self.partition = partition
        self.phase = phase
        survivors = machine.membership.survivors
        self.view: Machine | SurvivorView = (
            machine
            if len(survivors) == machine.n_procs
            else SurvivorView(machine, survivors)
        )
        if plan.n_procs != len(survivors):
            raise ValueError(
                f"plan has {plan.n_procs} blocks but {len(survivors)} ranks "
                "are alive"
            )
        self.plan = plan
        self.rollbacks = 0
        self.recovery_rounds = 0
        self.failure_sequence: list[int] = []
        self._snapshot: tuple[int, int, float] | None = None
        self.checkpoint_elements = checkpoint_locals(self.view, plan, phase=phase)

    def handle(self, err: DeadRankError) -> None:
        """Repair the machine after a mid-iteration fail-stop death."""
        if self._snapshot is None:
            self._snapshot = _snapshot(self.machine)
        self.failure_sequence.append(err.rank)
        _confirm(self.machine, err, self.phase)
        with self.machine.obs.span(
            "recovery.rollback", rank=str(err.rank), phase=self.phase.value
        ):
            while True:
                self.recovery_rounds += 1
                survivors = self.machine.membership.survivors
                new_plan = self.partition.plan(
                    self.plan.global_shape, len(survivors)
                )
                new_view = SurvivorView(self.machine, survivors)
                ckpt = get_checkpoint(self.machine)
                if ckpt is None:  # pragma: no cover - defensive
                    raise RuntimeError("no checkpoint to recover from")
                sources: dict[int, Source] = {
                    a.rank: ("host", ckpt["blocks"][a.rank])
                    for a in ckpt["plan"]
                }
                try:
                    peer_redistribute(
                        self.machine, ckpt["plan"], new_view, new_plan,
                        self.compression, sources=sources, phase=self.phase,
                    )
                    # the recovery round is complete: only now swap the
                    # checkpoint over to the new plan (a half-finished round
                    # must be able to restart from the old epoch's replicas)
                    self.checkpoint_elements += checkpoint_locals(
                        new_view, new_plan, phase=self.phase
                    )
                    break
                except DeadRankError as err2:
                    self.failure_sequence.append(err2.rank)
                    _confirm(self.machine, err2, self.phase)
        self.view = new_view
        self.plan = new_plan
        self.rollbacks += 1
        self.machine.obs.count(
            "repro_rollbacks_total",
            help="App-level checkpoint rollbacks after mid-iteration deaths",
        )

    def summary(self) -> RecoverySummary:
        """The app-level recovery report (policy ``"app-rollback"``)."""
        return _summary(
            self.machine,
            "app-rollback",
            rounds=self.recovery_rounds,
            snapshot=self._snapshot,
            failure_sequence=self.failure_sequence,
            checkpoint_elements=self.checkpoint_elements,
            rollbacks=self.rollbacks,
        )

    def __repr__(self) -> str:
        return (
            f"RecoveryRuntime(p'={self.plan.n_procs}, "
            f"rollbacks={self.rollbacks}, phase={self.phase.value})"
        )
