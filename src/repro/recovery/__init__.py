"""Fail-stop failure recovery: detection accounting, checkpoints, repair.

The fault layer (:mod:`repro.faults`) makes ranks die; the machine's
membership layer (:mod:`repro.machine.membership`) makes the host *pay* to
learn it.  This package is what runs afterwards: scheme-level recovery
policies (``host-resend`` and ``peer-redistribute``), host-side RO/CO/VL
checkpoint replicas, rank-remapping machine views, and the iterative-app
checkpoint/rollback runtime.  See DESIGN.md §"Failure model".
"""

from .checkpoint import (
    CHECKPOINT_KEY,
    checkpoint_locals,
    copy_compressed,
    get_checkpoint,
    wire_elements,
)
from .manager import POLICIES, RecoveryRuntime, peer_redistribute, run_with_recovery
from .summary import RecoverySummary
from .view import GhostView, SurvivorView

__all__ = [
    "CHECKPOINT_KEY",
    "GhostView",
    "POLICIES",
    "RecoveryRuntime",
    "RecoverySummary",
    "SurvivorView",
    "checkpoint_locals",
    "copy_compressed",
    "get_checkpoint",
    "peer_redistribute",
    "run_with_recovery",
    "wire_elements",
]
