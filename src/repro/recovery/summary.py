"""Recovery report: what a fail-stop failure cost and how it was repaired.

Kept free of intra-package imports so :mod:`repro.core.base` can reference
:class:`RecoverySummary` (under ``TYPE_CHECKING``) without a cycle — the
recovery manager imports the core schemes, not the other way round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RecoverySummary"]


@dataclass(frozen=True)
class RecoverySummary:
    """Detection + repair accounting for one recovered run.

    All times are simulated milliseconds already recorded in the machine's
    trace; this record just separates *recovery* costs (everything charged
    after the first failure surfaced) from the productive work.
    """

    #: ``"host-resend"`` or ``"peer-redistribute"`` (``"app-rollback"`` for
    #: the iterative-app runtime)
    policy: str
    #: physical ranks declared dead, ascending
    failed_ranks: tuple[int, ...] = ()
    #: physical ranks still alive, ascending (the degraded roster)
    survivor_ranks: tuple[int, ...] = ()
    #: membership epoch after the last declaration (0 = no failures)
    epoch: int = 0
    #: completed dead-rank declarations
    detections: int = 0
    #: unacknowledged sends / heartbeat probes paid before declaring
    missed_acks: int = 0
    #: message + backoff time charged for all detections (ms)
    detection_time_ms: float = 0.0
    #: re-driven scheme runs / redistribution attempts (0 = clean run)
    recovery_rounds: int = 0
    #: messages charged after the first failure surfaced
    recovery_messages: int = 0
    #: array elements moved by those messages
    recovery_elements: int = 0
    #: simulated time charged after the first failure surfaced (ms)
    recovery_time_ms: float = 0.0
    #: elements gathered into host-side RO/CO/VL checkpoint replicas
    checkpoint_elements: int = 0
    #: app iterations replayed after a mid-iteration failure
    rollbacks: int = 0
    #: dead ranks per repair step, for multi-failure post-mortems
    failure_sequence: tuple[int, ...] = field(default=())

    @property
    def failed(self) -> bool:
        return bool(self.failed_ranks)

    def line(self) -> str:
        """One-line human summary (mirrors ``SchemeResult.fault_line``)."""
        if not self.failed:
            return f"recovery[{self.policy}]: no failures"
        parts = [
            f"recovery[{self.policy}]:",
            f"dead={list(self.failed_ranks)}",
            f"epoch={self.epoch}",
            f"detect={self.missed_acks} acks/{self.detection_time_ms:.3f}ms",
            f"rounds={self.recovery_rounds}",
            f"moved={self.recovery_elements} elems"
            f"/{self.recovery_messages} msgs",
            f"t_rec={self.recovery_time_ms:.3f}ms",
        ]
        if self.checkpoint_elements:
            parts.append(f"ckpt={self.checkpoint_elements} elems")
        if self.rollbacks:
            parts.append(f"rollbacks={self.rollbacks}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready form (used by the runtime exporters and the CLI)."""
        return {
            "policy": self.policy,
            "failed_ranks": list(self.failed_ranks),
            "survivor_ranks": list(self.survivor_ranks),
            "epoch": self.epoch,
            "detections": self.detections,
            "missed_acks": self.missed_acks,
            "detection_time_ms": self.detection_time_ms,
            "recovery_rounds": self.recovery_rounds,
            "recovery_messages": self.recovery_messages,
            "recovery_elements": self.recovery_elements,
            "recovery_time_ms": self.recovery_time_ms,
            "checkpoint_elements": self.checkpoint_elements,
            "rollbacks": self.rollbacks,
            "failure_sequence": list(self.failure_sequence),
        }
