"""Host-side checkpoint replicas of the distributed compressed locals.

The peer-redistribution recovery policy needs a copy of every block's
``RO``/``CO``/``VL`` arrays that survives the block owner's death.  In this
machine model the natural place is the host (it survives by assumption):
:func:`checkpoint_locals` gathers a *copy* of each processor's compressed
local array back to the host — charged as ordinary gather traffic, one
pack op per wire element on the processor plus the message cost on the
host's serial timeline — and stores the replicas in ``host_memory`` under
:data:`CHECKPOINT_KEY`, stamped with the membership epoch.

The gather works identically through the recovery views: a
:class:`~repro.recovery.view.GhostView` turns a dead rank's "gather" into
a host-local move (the ghost replica already lives host-side), and a
:class:`~repro.recovery.view.SurvivorView` translates virtual ranks so the
checkpoint is keyed consistently with the plan it covers.
"""

from __future__ import annotations

from typing import Any

from ..core.base import LOCAL_KEY, CompressedLocal
from ..machine.trace import Phase
from ..partition.base import PartitionPlan

__all__ = [
    "CHECKPOINT_KEY",
    "checkpoint_locals",
    "copy_compressed",
    "get_checkpoint",
    "wire_elements",
]

#: host-memory key under which the checkpoint replicas are stored
CHECKPOINT_KEY = "recovery_checkpoint"


def wire_elements(comp: CompressedLocal) -> int:
    """Elements of a compressed block's wire image (RO + CO + VL)."""
    return len(comp.indptr) + 2 * comp.nnz


def copy_compressed(comp: CompressedLocal) -> CompressedLocal:
    """A deep copy sharing no buffers with the original (the replica)."""
    return type(comp)(
        comp.shape, comp.indptr.copy(), comp.indices.copy(), comp.values.copy()
    )


def checkpoint_locals(
    machine: Any, plan: PartitionPlan, *, phase: Phase = Phase.DISTRIBUTION
) -> int:
    """Replicate every rank's compressed local at the host.

    ``machine`` may be a raw :class:`~repro.machine.machine.Machine` or a
    recovery view; ``plan`` must be the plan whose blocks the processors
    currently hold.  Each rank packs its ``RO``/``CO``/``VL`` wire image
    (one op per element) and sends the copy host-ward; the host stores the
    replicas keyed by the plan's rank, together with the plan and the
    membership epoch.  Returns the number of elements gathered (the
    checkpoint's wire footprint).

    May raise :class:`~repro.machine.membership.DeadRankError` if a doomed
    rank dies mid-gather — callers retry after confirming the failure.
    """
    from ..obs.spans import NULL_OBS

    obs = getattr(machine, "obs", NULL_OBS)
    elements = 0
    with obs.span("recovery.checkpoint", phase=phase.value, p=plan.n_procs):
        for assignment in plan:
            comp = machine.processor(assignment.rank).load(LOCAL_KEY)
            if comp.shape != assignment.local_shape:
                raise ValueError(
                    f"rank {assignment.rank}: stored local shape {comp.shape} "
                    f"does not match the plan {assignment.local_shape}"
                )
            n = wire_elements(comp)
            machine.charge_proc_ops(
                assignment.rank, n, phase, label="checkpoint-pack"
            )
            machine.send_to_host(
                assignment.rank, copy_compressed(comp), n, phase, tag="checkpoint"
            )
            elements += n
        blocks: dict[int, CompressedLocal] = {}
        for _ in plan:
            msg = machine.host_receive("checkpoint")
            blocks[msg.src] = msg.payload
        machine.host_memory[CHECKPOINT_KEY] = {
            "plan": plan,
            "epoch": machine.membership.epoch,
            "blocks": blocks,
            "elements": elements,
        }
    obs.count(
        "repro_checkpoint_elements_total",
        elements,
        help="Wire elements gathered into host-side checkpoints",
    )
    return elements


def get_checkpoint(machine: Any) -> dict[str, Any] | None:
    """The current checkpoint record, or ``None`` if none was taken."""
    return machine.host_memory.get(CHECKPOINT_KEY)
