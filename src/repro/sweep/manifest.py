"""Declarative JSON experiment manifests and their grid expansion.

A manifest names one or more parameter grids over the paper's experiment
axes (scheme × partition × compression × n × p × sparse ratio); the
orchestrator (:mod:`repro.sweep.orchestrator`) expands it into an ordered
list of :class:`Cell`\\ s and runs each through a
:class:`~repro.runtime.session.RunSession`.

The format is deliberately small and strict — unknown keys are rejected
with the full sorted key listing (the :class:`~repro.faults.spec.FaultSpec`
convention), axis values are validated against the registries in
:mod:`repro.core.registry`, and expansion is a *pure function* of the
manifest: a fixed nested-loop axis order and a seed rule derived only from
cell parameters.  That purity is what makes resume sound: the store
records a cell by its :attr:`Cell.cell_id` — a SHA-256 prefix of the
canonical-JSON parameter dict, stable under key reordering — and the
manifest by :meth:`Manifest.manifest_hash`, so a drifted manifest can
never silently reuse stale results (DESIGN.md §"Sweep orchestration").

Cell seeds follow the published-table recipe ``seed + n + 131 * p``
(:mod:`repro.runtime.experiments`): with ``"seed": 2002`` a manifest grid
reproduces the exact matrices of Tables 3–5.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from ..core.registry import COMPRESSIONS, PARTITIONS, SCHEMES
from ..machine.cost_model import CostModel, sp2_cost_model
from ..runtime.session import RunRequest

__all__ = [
    "Cell",
    "Grid",
    "Manifest",
    "ManifestError",
    "canonical_json",
    "cell_seed",
]

#: per-processor seed stride of the table recipe (experiments.py)
SEED_STRIDE_P = 131

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def canonical_json(obj: Any) -> str:
    """The canonical encoding hashes and the store are defined over:
    sorted keys, no whitespace — byte-stable under key reordering."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cell_seed(base_seed: int, n: int, n_procs: int) -> int:
    """The table-grid seed recipe: ``base + n + 131 * p``."""
    return base_seed + n + SEED_STRIDE_P * n_procs


class ManifestError(ValueError):
    """A manifest failed schema validation (message is CLI-friendly)."""


# ----------------------------------------------------------------------
# validation helpers (FaultSpec's strictness conventions)
# ----------------------------------------------------------------------
def _reject_unknown(data: Mapping[str, Any], known: Sequence[str], what: str) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ManifestError(
            f"unknown {what} key(s) {unknown}; known keys: {sorted(known)}"
        )


def _as_list(value: Any, key: str) -> list[Any]:
    """Promote a scalar axis value to a one-element list."""
    if isinstance(value, list):
        if not value:
            raise ManifestError(f"grid axis {key!r} must not be empty")
        return value
    return [value]


def _int_axis(values: list[Any], key: str) -> tuple[int, ...]:
    out: list[int] = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, int):
            raise ManifestError(f"grid axis {key!r} values must be integers, got {v!r}")
        if v < 1:
            raise ManifestError(f"grid axis {key!r} values must be >= 1, got {v}")
        out.append(v)
    if len(set(out)) != len(out):
        raise ManifestError(f"grid axis {key!r} has duplicate values: {values}")
    return tuple(out)


def _ratio_axis(values: list[Any], key: str) -> tuple[float, ...]:
    out: list[float] = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise ManifestError(f"grid axis {key!r} values must be numbers, got {v!r}")
        v = float(v)
        if not 0.0 < v <= 1.0:
            raise ManifestError(
                f"grid axis {key!r} values must be in (0, 1], got {v}"
            )
        out.append(v)
    if len(set(out)) != len(out):
        raise ManifestError(f"grid axis {key!r} has duplicate values: {values}")
    return tuple(out)


def _name_axis(
    values: list[Any], key: str, registry: Mapping[str, Any], what: str
) -> tuple[str, ...]:
    out: list[str] = []
    for v in values:
        if not isinstance(v, str):
            raise ManifestError(f"grid axis {key!r} values must be strings, got {v!r}")
        if v.lower() not in registry:
            raise ManifestError(
                f"unknown {what} {v!r} in grid axis {key!r}; "
                f"available: {sorted(registry)}"
            )
        out.append(v.lower())
    if len(set(out)) != len(out):
        raise ManifestError(f"grid axis {key!r} has duplicate values: {values}")
    return tuple(out)


def _mesh_shapes(
    value: Any, n_procs: tuple[int, ...], partitions: tuple[str, ...]
) -> tuple[tuple[int, tuple[int, int]], ...]:
    if not isinstance(value, Mapping):
        raise ManifestError(
            f"grid key 'mesh_shapes' must be an object mapping p -> [rows, cols], "
            f"got {value!r}"
        )
    if "mesh2d" not in partitions:
        raise ManifestError(
            "grid key 'mesh_shapes' is only meaningful with the 'mesh2d' partition"
        )
    out: list[tuple[int, tuple[int, int]]] = []
    for raw_p, shape in value.items():
        try:
            p = int(raw_p)
        except (TypeError, ValueError):
            raise ManifestError(
                f"mesh_shapes keys must be processor counts, got {raw_p!r}"
            ) from None
        if p not in n_procs:
            raise ManifestError(
                f"mesh_shapes key {p} is not on the 'n_procs' axis {list(n_procs)}"
            )
        if (
            not isinstance(shape, list)
            or len(shape) != 2
            or any(isinstance(s, bool) or not isinstance(s, int) or s < 1 for s in shape)
        ):
            raise ManifestError(
                f"mesh_shapes[{p}] must be [rows, cols] with positive integers, "
                f"got {shape!r}"
            )
        if shape[0] * shape[1] != p:
            raise ManifestError(
                f"mesh_shapes[{p}] = {shape} does not factor {p} processors"
            )
        out.append((p, (shape[0], shape[1])))
    return tuple(sorted(out))


# ----------------------------------------------------------------------
# the expanded unit of work
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One expanded grid point — everything one run needs, by value.

    ``seed`` is derived from the manifest seed by :func:`cell_seed`; it is
    stored explicitly so a store record is self-describing.  ``cell_id``
    hashes the canonical parameter dict, so it is independent of manifest
    key order and of which grid produced the cell.
    """

    scheme: str
    partition: str
    compression: str
    n: int
    n_procs: int
    sparse_ratio: float
    seed: int
    mesh_shape: tuple[int, int] | None = None

    def params(self) -> dict[str, Any]:
        """The canonical JSON-compatible parameter dict (ID + store form)."""
        out: dict[str, Any] = {
            "scheme": self.scheme,
            "partition": self.partition,
            "compression": self.compression,
            "n": self.n,
            "n_procs": self.n_procs,
            "sparse_ratio": self.sparse_ratio,
            "seed": self.seed,
        }
        if self.mesh_shape is not None:
            out["mesh_shape"] = list(self.mesh_shape)
        return out

    @property
    def cell_id(self) -> str:
        """16-hex-digit stable ID: SHA-256 prefix of the canonical params."""
        digest = hashlib.sha256(canonical_json(self.params()).encode("ascii"))
        return digest.hexdigest()[:16]

    def to_request(
        self,
        *,
        cost: CostModel | None = None,
        backend: str | None = None,
        executor: str | None = None,
    ) -> RunRequest:
        """The session-layer request for this cell.

        ``backend``/``executor`` are *run-time placement* overrides — they
        never change measured results (DESIGN.md §"Execution tiers"), so
        they are not part of the cell identity and not recorded in the
        store.
        """
        return RunRequest(
            scheme=self.scheme,
            n=self.n,
            n_procs=self.n_procs,
            partition=self.partition,
            compression=self.compression,
            sparse_ratio=self.sparse_ratio,
            seed=self.seed,
            mesh_shape=self.mesh_shape,
            cost=cost if cost is not None else sp2_cost_model(),
            backend=backend,
            executor=executor,
        )

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "Cell":
        """Rebuild a cell from its :meth:`params` dict (store records,
        worker processes)."""
        _reject_unknown(
            params,
            (
                "scheme",
                "partition",
                "compression",
                "n",
                "n_procs",
                "sparse_ratio",
                "seed",
                "mesh_shape",
            ),
            "cell params",
        )
        mesh = params.get("mesh_shape")
        return cls(
            scheme=params["scheme"],
            partition=params["partition"],
            compression=params["compression"],
            n=params["n"],
            n_procs=params["n_procs"],
            sparse_ratio=params["sparse_ratio"],
            seed=params["seed"],
            mesh_shape=(mesh[0], mesh[1]) if mesh is not None else None,
        )


# ----------------------------------------------------------------------
# one declared grid
# ----------------------------------------------------------------------
_GRID_KEYS = (
    "scheme",
    "partition",
    "compression",
    "n",
    "n_procs",
    "sparse_ratio",
    "mesh_shapes",
)


@dataclass(frozen=True)
class Grid:
    """One rectangular block of the sweep: the cross product of its axes.

    Axis defaults mirror the paper's fixed knobs (row partition, CRS
    compression, sparse ratio 0.1).  ``mesh_shapes`` pins the processor
    mesh per p for the ``mesh2d`` partition, like Table 5's 2×2/4×4/8×8.
    """

    scheme: tuple[str, ...]
    n: tuple[int, ...]
    n_procs: tuple[int, ...]
    partition: tuple[str, ...] = ("row",)
    compression: tuple[str, ...] = ("crs",)
    sparse_ratio: tuple[float, ...] = (0.1,)
    mesh_shapes: tuple[tuple[int, tuple[int, int]], ...] = ()

    def mesh_shape_for(self, p: int) -> tuple[int, int] | None:
        for q, shape in self.mesh_shapes:
            if q == p:
                return shape
        return None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Grid":
        if not isinstance(data, Mapping):
            raise ManifestError(f"each grid must be an object, got {data!r}")
        _reject_unknown(data, _GRID_KEYS, "grid")
        for required in ("scheme", "n", "n_procs"):
            if required not in data:
                raise ManifestError(f"grid is missing required key {required!r}")
        partition = _name_axis(
            _as_list(data.get("partition", "row"), "partition"),
            "partition", PARTITIONS, "partition method",
        )
        n_procs = _int_axis(_as_list(data["n_procs"], "n_procs"), "n_procs")
        mesh_raw = data.get("mesh_shapes")
        return cls(
            scheme=_name_axis(
                _as_list(data["scheme"], "scheme"), "scheme", SCHEMES, "scheme"
            ),
            n=_int_axis(_as_list(data["n"], "n"), "n"),
            n_procs=n_procs,
            partition=partition,
            compression=_name_axis(
                _as_list(data.get("compression", "crs"), "compression"),
                "compression", COMPRESSIONS, "compression method",
            ),
            sparse_ratio=_ratio_axis(
                _as_list(data.get("sparse_ratio", 0.1), "sparse_ratio"),
                "sparse_ratio",
            ),
            mesh_shapes=(
                _mesh_shapes(mesh_raw, n_procs, partition) if mesh_raw is not None else ()
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """Normalised form: every axis a list, in fixed key order."""
        out: dict[str, Any] = {
            "scheme": list(self.scheme),
            "partition": list(self.partition),
            "compression": list(self.compression),
            "n": list(self.n),
            "n_procs": list(self.n_procs),
            "sparse_ratio": list(self.sparse_ratio),
        }
        if self.mesh_shapes:
            out["mesh_shapes"] = {str(p): list(s) for p, s in self.mesh_shapes}
        return out

    def expand(self, base_seed: int) -> Iterator[Cell]:
        """The grid's cells in the fixed nested-loop axis order.

        The order (partition → compression → sparse_ratio → n_procs → n →
        scheme) matches the table grids: all schemes of one (p, n) cell
        are adjacent, so a warm session shares their generated matrix.
        """
        for partition in self.partition:
            mesh = self.mesh_shapes if partition == "mesh2d" else ()
            for compression in self.compression:
                for ratio in self.sparse_ratio:
                    for p in self.n_procs:
                        shape = None
                        for q, s in mesh:
                            if q == p:
                                shape = s
                        for n in self.n:
                            for scheme in self.scheme:
                                yield Cell(
                                    scheme=scheme,
                                    partition=partition,
                                    compression=compression,
                                    n=n,
                                    n_procs=p,
                                    sparse_ratio=ratio,
                                    seed=cell_seed(base_seed, n, p),
                                    mesh_shape=shape,
                                )


# ----------------------------------------------------------------------
# the manifest
# ----------------------------------------------------------------------
_MANIFEST_KEYS = ("name", "description", "seed", "grid", "grids")


@dataclass(frozen=True)
class Manifest:
    """A named, seeded collection of grids — the unit `repro sweep` runs."""

    name: str
    grids: tuple[Grid, ...]
    description: str = ""
    seed: int = 0
    _cells: tuple[Cell, ...] = field(
        default=(), init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise ManifestError(
                f"manifest 'name' must match [A-Za-z0-9][A-Za-z0-9._-]*, "
                f"got {self.name!r}"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ManifestError(f"manifest 'seed' must be an integer, got {self.seed!r}")
        if not isinstance(self.description, str):
            raise ManifestError(
                f"manifest 'description' must be a string, got {self.description!r}"
            )
        if not self.grids:
            raise ManifestError("manifest declares no grids")
        cells = tuple(
            cell for grid in self.grids for cell in grid.expand(self.seed)
        )
        seen: dict[str, Cell] = {}
        for cell in cells:
            prior = seen.get(cell.cell_id)
            if prior is not None:
                raise ManifestError(
                    f"grids overlap: cell {cell.cell_id} "
                    f"({canonical_json(cell.params())}) appears twice"
                )
            seen[cell.cell_id] = cell
        object.__setattr__(self, "_cells", cells)

    # -- expansion ------------------------------------------------------
    def expand(self) -> tuple[Cell, ...]:
        """All cells, grids concatenated in manifest order.  Pure: the
        same manifest always yields the same ordered tuple."""
        return self._cells

    def __len__(self) -> int:
        return len(self._cells)

    # -- (de)serialisation ---------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Manifest":
        if not isinstance(data, Mapping):
            raise ManifestError(f"manifest must be a JSON object, got {data!r}")
        _reject_unknown(data, _MANIFEST_KEYS, "manifest")
        if "name" not in data:
            raise ManifestError("manifest is missing required key 'name'")
        if "grid" in data and "grids" in data:
            raise ManifestError("manifest has both 'grid' and 'grids'; pick one")
        raw_grids = data.get("grids", data.get("grid"))
        if raw_grids is None:
            raise ManifestError("manifest is missing required key 'grids' (or 'grid')")
        if isinstance(raw_grids, Mapping):
            raw_grids = [raw_grids]
        if not isinstance(raw_grids, list):
            raise ManifestError(
                f"'grids' must be a grid object or a list of them, got {raw_grids!r}"
            )
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            seed=data.get("seed", 0),
            grids=tuple(Grid.from_dict(g) for g in raw_grids),
        )

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ManifestError(f"manifest is not valid JSON: {err}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "Manifest":
        path = Path(path)
        if not path.exists():
            raise ManifestError(f"manifest file not found: {path}")
        if path.is_dir():
            raise ManifestError(f"manifest path is a directory: {path}")
        return cls.from_json(path.read_text())

    def to_dict(self) -> dict[str, Any]:
        """Normalised round-trippable form (``from_dict`` is its inverse)."""
        out: dict[str, Any] = {"name": self.name}
        if self.description:
            out["description"] = self.description
        out["seed"] = self.seed
        out["grids"] = [grid.to_dict() for grid in self.grids]
        return out

    def manifest_hash(self) -> str:
        """SHA-256 of the canonical normalised form — the drift detector.

        Computed over :meth:`to_dict`, so cosmetic differences (key order,
        whitespace, scalar-vs-list axes, ``grid`` vs ``grids``) hash
        identically while any semantic change changes the hash.
        """
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("ascii")
        ).hexdigest()
