"""The sweep orchestrator: manifest in, committed result store out.

:func:`run_sweep` expands a :class:`~repro.sweep.manifest.Manifest`,
skips cells the store already holds (``resume=True``), and executes the
rest through the shared :class:`~repro.runtime.session.RunSession`
entry point — in-process with one warm session (``jobs=1``), or fanned
out over ``jobs`` forked worker processes, one short-lived process per
cell (``jobs>1``).  Workers are plain (non-daemonic) processes, so a
cell is free to use the process executor (and supervision) inside.

Crash-safety invariants, pinned by tests/sweep/test_resume_battery.py:

* records are committed **in expansion order** regardless of ``jobs`` —
  out-of-order completions wait in memory — so any interrupted store is
  an exact prefix of the uninterrupted one;
* a record is only committed after the cell's fsync'd line hits disk,
  and the commit payload contains no wall-clock fields — so resuming
  after SIGKILL (of the orchestrator or of workers) converges on a
  store byte-identical to an uninterrupted run;
* a worker that dies without reporting (killed, segfaulted) is
  respawned up to ``worker_retries`` times and then the cell runs
  inline in the orchestrator, so persistent worker murder degrades
  throughput, never correctness.

Progress is observable: ``repro_sweep_cells_total`` counters (labelled
``status=completed|skipped|retried``) and ``sweep.run``/``sweep.cell``
spans, which the Chrome exporter renders on a dedicated sweep lane.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import connection as mpconnection
from pathlib import Path
from typing import Any, Callable, Mapping

from ..machine.export import result_to_dict
from ..obs.spans import Observability
from ..runtime.session import RunSession
from .manifest import Cell, Manifest, canonical_json
from .store import ResultStore

__all__ = ["SweepCellError", "SweepError", "SweepReport", "run_sweep"]

#: respawn budget per cell before falling back to an inline run
DEFAULT_WORKER_RETRIES = 2

#: obs counter name for cell outcomes (status=completed|skipped|retried)
CELLS_TOTAL = "repro_sweep_cells_total"


class SweepError(RuntimeError):
    """A sweep could not run to completion (message is CLI-friendly)."""


class SweepCellError(SweepError):
    """One cell raised; the store keeps every cell committed before it."""


@dataclass
class SweepReport:
    """What one :func:`run_sweep` call did."""

    manifest_hash: str
    store_path: Path
    #: cells in the full expansion
    total: int
    #: cells found already committed on resume
    skipped: int
    #: cells executed (and committed) by this call
    executed: int
    #: worker respawns that were needed along the way
    retried: int
    #: every committed record, in expansion order (resumed + new)
    records: list[dict[str, Any]]


def _run_cell(
    session: RunSession,
    cell: Cell,
    executor: str | None,
    backend: str | None,
) -> dict[str, Any]:
    """Execute one cell and serialise its result (no wall-clock fields)."""
    result = session.run(cell.to_request(executor=executor, backend=backend))
    return result_to_dict(result)


def _cell_worker_main(
    conn: Any, params: Mapping[str, Any], executor: str | None, backend: str | None
) -> None:
    """Worker process entry point: run one cell, report, exit."""
    try:
        cell = Cell.from_params(params)
        with RunSession(reuse_machines=False) as session:
            payload = _run_cell(session, cell, executor, backend)
        conn.send(("ok", payload))
    except BaseException as err:  # noqa: BLE001 - report, parent decides
        try:
            conn.send(("err", f"{type(err).__name__}: {err}"))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()


@dataclass
class _Worker:
    seq: int
    cell: Cell
    proc: Any
    conn: Any
    attempts: int


def _spawn_worker(
    ctx: Any, seq: int, cell: Cell, executor: str | None, backend: str | None,
    attempts: int,
) -> _Worker:
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_cell_worker_main,
        args=(child_conn, cell.params(), executor, backend),
        name=f"repro-sweep-{seq}",
    )
    proc.start()
    child_conn.close()  # the parent's copy; the worker holds its own
    return _Worker(seq=seq, cell=cell, proc=proc, conn=parent_conn, attempts=attempts)


def _reap_worker(worker: _Worker) -> None:
    worker.conn.close()
    worker.proc.join()


def run_sweep(
    manifest: Manifest,
    store_path: str | Path,
    *,
    resume: bool = False,
    jobs: int = 1,
    executor: str | None = None,
    backend: str | None = None,
    obs: Observability | None = None,
    worker_retries: int = DEFAULT_WORKER_RETRIES,
    after_record: Callable[[int, dict[str, Any]], None] | None = None,
    on_worker_spawn: Callable[[int, int], None] | None = None,
    echo: Callable[[str], None] | None = None,
) -> SweepReport:
    """Run (or resume) one manifest into one result store.

    ``resume=False`` demands a fresh store path; ``resume=True``
    reattaches (validating manifest hash and record prefix, truncating a
    torn tail) or starts fresh when the file does not exist yet.

    ``executor``/``backend`` place every cell's rank tasks — run-time
    knobs that never change measured results, hence not recorded in the
    store.  ``obs`` collects sweep spans and counters; ``echo`` receives
    one human line per event for the CLI.

    ``after_record(seq, record)`` fires after each record is fsync'd and
    ``on_worker_spawn(seq, pid)`` after each worker start — the seeded
    kill points the interruption battery drives.
    """
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    obs = obs if obs is not None else Observability(enabled=False)
    say = echo if echo is not None else (lambda _line: None)
    cells = manifest.expand()
    store_path = Path(store_path)

    if resume:
        store, prior = ResultStore.resume(store_path, manifest)
    else:
        store, prior = ResultStore.create(store_path, manifest), []
    skipped = len(prior)
    if skipped:
        obs.count(CELLS_TOTAL, skipped, status="skipped")
        say(f"resume: {skipped}/{len(cells)} cells already in {store_path}")

    records = list(prior)
    executed = 0
    retried = 0

    def commit(seq: int, cell: Cell, payload: dict[str, Any]) -> None:
        nonlocal executed
        record = store.append(cell, payload)
        records.append(record)
        executed += 1
        obs.count(CELLS_TOTAL, status="completed")
        say(
            f"cell {seq + 1}/{len(cells)} {cell.cell_id} "
            f"{cell.scheme}/{cell.partition}/{cell.compression} "
            f"n={cell.n} p={cell.n_procs} committed"
        )
        if after_record is not None:
            after_record(seq, record)

    try:
        with obs.span("sweep.run", manifest=manifest.name, n_cells=len(cells)):
            if jobs == 1:
                with RunSession() as session:
                    for seq in range(skipped, len(cells)):
                        cell = cells[seq]
                        with obs.span(
                            "sweep.cell", id=cell.cell_id, seq=seq,
                            scheme=cell.scheme, n=cell.n, n_procs=cell.n_procs,
                        ):
                            try:
                                payload = _run_cell(session, cell, executor, backend)
                            except Exception as err:
                                raise SweepCellError(
                                    f"cell {cell.cell_id} "
                                    f"({canonical_json(cell.params())}) failed: "
                                    f"{type(err).__name__}: {err}"
                                ) from err
                        commit(seq, cell, payload)
            else:
                retried = _run_fanned_out(
                    cells, skipped, jobs, executor, backend, obs,
                    worker_retries, on_worker_spawn, commit,
                )
    finally:
        store.close()

    return SweepReport(
        manifest_hash=manifest.manifest_hash(),
        store_path=store_path,
        total=len(cells),
        skipped=skipped,
        executed=executed,
        retried=retried,
        records=records,
    )


def _run_fanned_out(
    cells: tuple[Cell, ...],
    skipped: int,
    jobs: int,
    executor: str | None,
    backend: str | None,
    obs: Observability,
    worker_retries: int,
    on_worker_spawn: Callable[[int, int], None] | None,
    commit: Callable[[int, Cell, dict[str, Any]], None],
) -> int:
    """One worker process per cell, ``jobs`` at a time, in-order commits."""
    # fork keeps worker startup cheap and inherits the warm interpreter;
    # workers are non-daemonic so cells may fork rank workers themselves
    ctx = multiprocessing.get_context("fork")
    active: dict[Any, _Worker] = {}
    buffered: dict[int, tuple[Cell, dict[str, Any]]] = {}
    next_spawn = skipped
    next_commit = skipped
    retried = 0

    def spawn(seq: int, attempts: int = 0) -> None:
        worker = _spawn_worker(ctx, seq, cells[seq], executor, backend, attempts)
        active[worker.conn] = worker
        if on_worker_spawn is not None:
            on_worker_spawn(seq, worker.proc.pid)

    try:
        while next_commit < len(cells):
            while next_spawn < len(cells) and len(active) < jobs:
                spawn(next_spawn)
                next_spawn += 1
            # commit every contiguous finished cell before blocking again
            while next_commit in buffered:
                cell, payload = buffered.pop(next_commit)
                commit(next_commit, cell, payload)
                next_commit += 1
            if next_commit >= len(cells) or not active:
                continue
            for conn in mpconnection.wait(list(active)):
                worker = active.pop(conn)
                try:
                    message = worker.conn.recv()
                except EOFError:
                    message = None
                _reap_worker(worker)
                if message is None:
                    # died without reporting: killed or crashed hard
                    retried += 1
                    obs.count(CELLS_TOTAL, status="retried")
                    if worker.attempts < worker_retries:
                        spawn(worker.seq, worker.attempts + 1)
                    else:
                        # respawn budget spent: run inline, which either
                        # completes the cell or surfaces the real error
                        with RunSession(reuse_machines=False) as session:
                            payload = _run_cell(
                                session, worker.cell, executor, backend
                            )
                        buffered[worker.seq] = (worker.cell, payload)
                    continue
                status, payload = message
                if status != "ok":
                    raise SweepCellError(
                        f"cell {worker.cell.cell_id} "
                        f"({canonical_json(worker.cell.params())}) failed: "
                        f"{payload}"
                    )
                buffered[worker.seq] = (worker.cell, payload)
    finally:
        for worker in active.values():
            worker.proc.terminate()
        for worker in active.values():
            _reap_worker(worker)
    return retried
