"""Append-only JSONL result store with torn-tail recovery.

One sweep writes one store file:

* line 1 — a header record binding the file to its manifest:
  ``{"kind": "header", "format": 1, "manifest": <sha256>, "name": …,
  "n_cells": N, "seed": …}``;
* then one ``{"kind": "cell", "seq": k, "id": …, "seed": …, "params":
  …, "result": …}`` record per completed cell, in expansion order,
  each flushed and fsync'd before the orchestrator moves on.

Every line is canonical JSON (sorted keys, no whitespace) and contains
no wall-clock fields — the ``result`` payload is
:func:`~repro.machine.export.result_to_dict`, all times simulated — so
an interrupted-and-resumed store converges byte-identically to an
uninterrupted one (tests/sweep/test_resume_battery.py).

Durability contract: a record is *committed* iff its line is terminated
by ``\\n``.  A SIGKILL mid-append leaves at most one unterminated tail;
:func:`load_store` drops it (``torn=True``) and resume physically
truncates the file back to the last committed byte before appending, so
the torn cell is simply re-run.  A *terminated* line that fails to parse
or validate can only come from outside interference and raises
:class:`StoreError`; a header bound to a different manifest raises
:class:`StoreDriftError` instead of silently mixing grids.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from .manifest import Cell, Manifest, canonical_json

__all__ = [
    "FORMAT_VERSION",
    "ResultStore",
    "StoreDriftError",
    "StoreError",
    "StoreState",
    "load_store",
]

FORMAT_VERSION = 1

_HEADER_KEYS = ("kind", "format", "manifest", "name", "n_cells", "seed")
_CELL_KEYS = ("kind", "seq", "id", "seed", "params", "result")


class StoreError(ValueError):
    """The store file is unusable (message is CLI-friendly)."""


class StoreDriftError(StoreError):
    """The store belongs to a different manifest than the one supplied."""


def _encode(record: Mapping[str, Any]) -> bytes:
    return canonical_json(dict(record)).encode("utf-8") + b"\n"


def header_record(manifest: Manifest) -> dict[str, Any]:
    """The binding first line of a store for ``manifest``."""
    return {
        "kind": "header",
        "format": FORMAT_VERSION,
        "manifest": manifest.manifest_hash(),
        "name": manifest.name,
        "n_cells": len(manifest),
        "seed": manifest.seed,
    }


def cell_record(seq: int, cell: Cell, result: Mapping[str, Any]) -> dict[str, Any]:
    """One committed cell line (``result`` = ``result_to_dict`` payload)."""
    return {
        "kind": "cell",
        "seq": seq,
        "id": cell.cell_id,
        "seed": cell.seed,
        "params": cell.params(),
        "result": dict(result),
    }


@dataclass
class StoreState:
    """What :func:`load_store` found on disk."""

    #: the parsed header line (validated shape, not yet matched to a manifest)
    header: dict[str, Any]
    #: committed cell records, in file order
    records: list[dict[str, Any]]
    #: bytes up to and including the last committed newline
    valid_bytes: int
    #: True when an unterminated (torn) tail was dropped
    torn: bool


def _parse_header(obj: Any, path: Path) -> dict[str, Any]:
    if not isinstance(obj, dict) or obj.get("kind") != "header":
        raise StoreError(f"store {path} does not start with a header record")
    unknown = sorted(set(obj) - set(_HEADER_KEYS))
    missing = sorted(set(_HEADER_KEYS) - set(obj))
    if unknown or missing:
        raise StoreError(
            f"store {path} header is malformed "
            f"(missing {missing or 'nothing'}, unknown {unknown or 'nothing'})"
        )
    if obj["format"] != FORMAT_VERSION:
        raise StoreError(
            f"store {path} uses format {obj['format']!r}; "
            f"this build reads format {FORMAT_VERSION}"
        )
    return obj


def _parse_cell(obj: Any, index: int, path: Path) -> dict[str, Any]:
    if not isinstance(obj, dict) or obj.get("kind") != "cell":
        raise StoreError(f"store {path} line {index + 2} is not a cell record")
    unknown = sorted(set(obj) - set(_CELL_KEYS))
    missing = sorted(set(_CELL_KEYS) - set(obj))
    if unknown or missing:
        raise StoreError(
            f"store {path} line {index + 2} is malformed "
            f"(missing {missing or 'nothing'}, unknown {unknown or 'nothing'})"
        )
    return obj


def load_store(path: str | Path) -> StoreState:
    """Parse a store file, tolerating (and reporting) a torn final line."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise StoreError(f"result store not found: {path}") from None
    except IsADirectoryError:
        raise StoreError(f"result store path is a directory: {path}") from None

    lines: list[bytes] = []
    offset = 0
    torn = False
    while offset < len(data):
        nl = data.find(b"\n", offset)
        if nl == -1:
            # an append cut short by a crash: drop the uncommitted tail
            torn = True
            break
        lines.append(data[offset:nl])
        offset = nl + 1

    if not lines:
        raise StoreError(
            f"store {path} has no committed records"
            + (" (torn header line)" if torn else "")
        )

    parsed: list[Any] = []
    for i, line in enumerate(lines):
        try:
            parsed.append(json.loads(line))
        except ValueError:
            # a committed (newline-terminated) line must parse; torn
            # writes can only ever damage the unterminated tail
            raise StoreError(
                f"store {path} line {i + 1} is corrupt "
                "(committed record is not valid JSON)"
            ) from None

    header = _parse_header(parsed[0], path)
    records = [_parse_cell(obj, i, path) for i, obj in enumerate(parsed[1:])]
    return StoreState(header=header, records=records, valid_bytes=offset, torn=torn)


def _check_manifest(state: StoreState, manifest: Manifest, path: Path) -> None:
    expected = manifest.manifest_hash()
    found = state.header["manifest"]
    if found != expected:
        raise StoreDriftError(
            f"store {path} was written for manifest {str(found)[:12]}… but "
            f"{manifest.name!r} hashes to {expected[:12]}…; the manifest has "
            "drifted — use a fresh store path (or restore the old manifest)"
        )


def _check_prefix(state: StoreState, cells: tuple[Cell, ...], path: Path) -> None:
    if len(state.records) > len(cells):
        raise StoreError(
            f"store {path} holds {len(state.records)} records but the "
            f"manifest expands to {len(cells)} cells"
        )
    for k, record in enumerate(state.records):
        if record["seq"] != k or record["id"] != cells[k].cell_id:
            raise StoreError(
                f"store {path} record {k} is out of order: expected cell "
                f"{cells[k].cell_id} at seq {k}, found {record['id']} "
                f"at seq {record['seq']}"
            )


class ResultStore:
    """The orchestrator's writer handle: append-only, one fsync per record.

    Construct through :meth:`create` (fresh file, writes the header) or
    :meth:`resume` (validates the existing prefix against the manifest,
    truncates any torn tail).  ``append`` commits one cell record; after
    it returns, the record survives SIGKILL.
    """

    def __init__(self, path: Path, manifest: Manifest, completed: int) -> None:
        self.path = path
        self.manifest = manifest
        self.completed = completed
        self._fh: Any = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def create(cls, path: str | Path, manifest: Manifest) -> "ResultStore":
        path = Path(path)
        if path.exists():
            raise StoreError(
                f"result store {path} already exists; pass --resume to "
                "continue it or choose a fresh --store path"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        store = cls(path, manifest, completed=0)
        # buffering=0: each append is a single write of one full line, so
        # a crash can only ever leave an unterminated tail
        store._fh = open(path, "xb", buffering=0)
        store._commit(header_record(manifest))
        return store

    @classmethod
    def resume(
        cls, path: str | Path, manifest: Manifest
    ) -> tuple["ResultStore", list[dict[str, Any]]]:
        """Reattach to an existing store; returns the committed records.

        A missing file degrades to :meth:`create` (first run and resumed
        runs can then share one invocation shape), so the battery's
        "always restart with --resume" loop needs no special casing.
        """
        path = Path(path)
        if not path.exists():
            return cls.create(path, manifest), []
        state = load_store(path)
        _check_manifest(state, manifest, path)
        _check_prefix(state, manifest.expand(), path)
        if state.torn:
            # drop the uncommitted tail so the next append starts a
            # clean line; the torn cell is re-run by the orchestrator
            os.truncate(path, state.valid_bytes)
        store = cls(path, manifest, completed=len(state.records))
        store._fh = open(path, "ab", buffering=0)
        return store, state.records

    # -- writing --------------------------------------------------------
    def _commit(self, record: Mapping[str, Any]) -> None:
        self._fh.write(_encode(record))
        os.fsync(self._fh.fileno())

    def append(self, cell: Cell, result: Mapping[str, Any]) -> dict[str, Any]:
        """Commit the next cell record (fsync'd before returning)."""
        if self._fh is None:
            raise StoreError(f"result store {self.path} is closed")
        record = cell_record(self.completed, cell, result)
        self._commit(record)
        self.completed += 1
        return record

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return (
            f"ResultStore(path={str(self.path)!r}, "
            f"completed={self.completed}/{len(self.manifest)})"
        )
