"""Manifest-driven experiment sweeps with a resumable JSONL result store.

The declarative counterpart to :mod:`repro.runtime.experiments`'s table
grids (ROADMAP item 3): a JSON :class:`Manifest` names parameter grids
over scheme × partition × compression × n × p, :func:`run_sweep`
executes the expansion through the shared
:class:`~repro.runtime.session.RunSession` entry point (optionally
fanned out over worker processes), and every completed cell is one
fsync'd line in an append-only JSONL :class:`ResultStore` keyed by
manifest hash + cell ID — so an interrupted sweep resumes exactly where
it stopped and converges byte-identically to an uninterrupted run
(DESIGN.md §"Sweep orchestration").
"""

from .manifest import (
    Cell,
    Grid,
    Manifest,
    ManifestError,
    canonical_json,
    cell_seed,
)
from .orchestrator import SweepCellError, SweepError, SweepReport, run_sweep
from .report import StoredResult, paper_tables_manifest, table_from_store
from .store import (
    FORMAT_VERSION,
    ResultStore,
    StoreDriftError,
    StoreError,
    StoreState,
    load_store,
)

__all__ = [
    "Cell",
    "FORMAT_VERSION",
    "Grid",
    "Manifest",
    "ManifestError",
    "ResultStore",
    "StoreDriftError",
    "StoreError",
    "StoreState",
    "StoredResult",
    "SweepCellError",
    "SweepError",
    "SweepReport",
    "canonical_json",
    "cell_seed",
    "load_store",
    "paper_tables_manifest",
    "run_sweep",
    "table_from_store",
]
