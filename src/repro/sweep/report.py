"""Render published-table reproductions from a sweep store alone.

The EXPERIMENTS.md table sections used to rerun their grids in memory;
now :func:`paper_tables_manifest` declares the exact Tables 3–5 grids
as a sweep manifest (same ``2002 + n + 131·p`` seed recipe, so the same
matrices), the orchestrator runs it into a result store, and
:func:`table_from_store` rebuilds a
:class:`~repro.runtime.experiments.TableReproduction` — the object the
markdown renderers and shape verdicts already consume — from the
committed records *without re-running anything*.  ``repro report``
therefore regenerates its tables exclusively from the store, and an
interrupted report run resumes instead of starting over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence, cast

from ..core.base import SchemeResult
from ..runtime.experiments import (
    SCHEMES_ORDER,
    TABLE_SPECS,
    TableReproduction,
    TableSpec,
)
from ..runtime.paper_results import TABLE3_SIZES, TABLE5_SIZES
from .manifest import Grid, Manifest
from .store import StoreError

__all__ = ["StoredResult", "paper_tables_manifest", "table_from_store"]

#: the published grids' base seed (experiments.py's default)
PAPER_SEED = 2002


@dataclass(frozen=True)
class StoredResult:
    """The slice of a :class:`SchemeResult` a store record preserves.

    Quacks like the real thing for everything the table renderers and
    shape verdicts touch (``t_distribution``/``t_compression``/
    ``t_total``/``fault_summary``).
    """

    t_distribution: float
    t_compression: float
    wire_elements: int
    n_messages: int
    fault_summary: dict[str, dict[str, int]] | None = None

    @property
    def t_total(self) -> float:
        return self.t_distribution + self.t_compression

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "StoredResult":
        result = record["result"]
        return cls(
            t_distribution=result["t_distribution_ms"],
            t_compression=result["t_compression_ms"],
            wire_elements=result["wire_elements"],
            n_messages=result["n_messages"],
            fault_summary=result.get("fault_summary"),
        )


def paper_tables_manifest(
    *,
    sizes: Sequence[int] | None = None,
    proc_counts: Sequence[int] | None = None,
    mesh_sizes: Sequence[int] | None = None,
    mesh_proc_counts: Sequence[int] | None = None,
) -> Manifest:
    """The declarative form of the paper's Tables 3–5 grids.

    One grid covers Tables 3 and 4 (row and column partitions share
    sizes and processor counts) and a second covers Table 5's 2-D
    meshes.  ``examples/sweeps/tables.json`` is this manifest's
    :meth:`~repro.sweep.manifest.Manifest.to_dict` verbatim
    (tests/sweep/test_report_from_store.py pins the equality).  The
    size/count overrides exist for reduced test grids.
    """
    t5 = TABLE_SPECS["table5"]
    mesh_p = tuple(mesh_proc_counts) if mesh_proc_counts is not None else t5.proc_counts
    assert t5.mesh_shapes is not None
    return Manifest(
        name="paper-tables",
        description=(
            "Tables 3-5 of Lin/Chung/Liu (ICPP 2002): scheme x partition "
            "grid at s=0.1, CRS, seeded with the published-table recipe"
        ),
        seed=PAPER_SEED,
        grids=(
            _grid(
                partition=("row", "column"),
                n=tuple(sizes) if sizes is not None else tuple(TABLE3_SIZES),
                n_procs=(
                    tuple(proc_counts)
                    if proc_counts is not None
                    else TABLE_SPECS["table3"].proc_counts
                ),
            ),
            _grid(
                partition=("mesh2d",),
                n=tuple(mesh_sizes) if mesh_sizes is not None else tuple(TABLE5_SIZES),
                n_procs=mesh_p,
                mesh_shapes=tuple(
                    (p, t5.mesh_shapes[p]) for p in mesh_p if p in t5.mesh_shapes
                ),
            ),
        ),
    )


def _grid(
    *,
    partition: tuple[str, ...],
    n: tuple[int, ...],
    n_procs: tuple[int, ...],
    mesh_shapes: tuple[tuple[int, tuple[int, int]], ...] = (),
) -> Grid:
    return Grid(
        scheme=tuple(SCHEMES_ORDER),
        n=n,
        n_procs=n_procs,
        partition=partition,
        compression=("crs",),
        sparse_ratio=(0.1,),
        mesh_shapes=mesh_shapes,
    )


def table_from_store(
    records: Iterable[Mapping[str, Any]],
    table_id: str,
    *,
    sizes: Sequence[int] | None = None,
    proc_counts: Sequence[int] | None = None,
    sparse_ratio: float = 0.1,
) -> TableReproduction:
    """Rebuild one table's :class:`TableReproduction` from store records.

    Selects the records matching the table's partition/compression (and
    ``sparse_ratio``) and demands full grid coverage — a store that is
    missing cells raises :class:`~repro.sweep.store.StoreError` rather
    than rendering a silently truncated table.
    """
    spec: TableSpec = TABLE_SPECS[table_id]
    sizes = tuple(sizes) if sizes is not None else spec.sizes
    proc_counts = tuple(proc_counts) if proc_counts is not None else spec.proc_counts
    by_cell: dict[tuple[int, str, int], StoredResult] = {}
    for record in records:
        params = record["params"]
        if (
            params["partition"] != spec.partition
            or params["compression"] != spec.compression
            or params["sparse_ratio"] != sparse_ratio
        ):
            continue
        key = (params["n_procs"], params["scheme"], params["n"])
        by_cell[key] = StoredResult.from_record(record)

    repro = TableReproduction(spec=spec, sizes=sizes, proc_counts=proc_counts)
    missing: list[tuple[int, str, int]] = []
    for p in proc_counts:
        for scheme in SCHEMES_ORDER:
            for n in sizes:
                stored = by_cell.get((p, scheme, n))
                if stored is None:
                    missing.append((p, scheme, n))
                    continue
                # StoredResult exposes exactly the attributes the
                # renderers read; the full SchemeResult (locals, traces)
                # is deliberately not persisted
                repro.cells[(p, scheme, n)] = cast(SchemeResult, stored)
    if missing:
        raise StoreError(
            f"store does not cover {table_id}: missing cells "
            f"{missing[:4]}{'…' if len(missing) > 4 else ''} "
            f"({len(missing)} of {len(proc_counts) * len(SCHEMES_ORDER) * len(sizes)})"
        )
    return repro
