"""repro — reproduction of "Data Distribution Schemes of Sparse Arrays on
Distributed Memory Multicomputers" (Lin, Chung & Liu, ICPP 2002).

Quick start::

    from repro import random_sparse, run_scheme

    A = random_sparse((1000, 1000), 0.1, seed=0)
    result = run_scheme("ed", A, partition="row", n_procs=16, compression="crs")
    print(result.summary())

Packages:

* :mod:`repro.sparse`    — COO/CRS/CCS storage, ops, generators, IO
* :mod:`repro.partition` — row / column / 2-D mesh (+ block-cyclic,
  bin-packing) partition methods
* :mod:`repro.machine`   — the simulated distributed-memory multicomputer
* :mod:`repro.core`      — the SFC / CFS / ED distribution schemes
* :mod:`repro.model`     — the paper's closed-form cost model (Tables 1-2,
  Remarks 1-5, crossover analysis)
* :mod:`repro.runtime`   — experiment harness reproducing Tables 3-5
* :mod:`repro.apps`      — distributed SpMV / power iteration / Jacobi
* :mod:`repro.ekmr`      — multi-dimensional arrays via EKMR (future work)
* :mod:`repro.data`      — the paper's worked-example figures
"""

from .core import CFSScheme, EDScheme, SFCScheme, SchemeResult, get_scheme
from .machine import CostModel, Machine, Phase, sp2_cost_model
from .model import ProblemSpec, predict
from .partition import ColumnPartition, Mesh2DPartition, PartitionPlan, RowPartition
from .runtime import reproduce_table, run_scheme
from .sparse import CCSMatrix, COOMatrix, CRSMatrix, random_sparse, spmv

__version__ = "1.0.0"

__all__ = [
    "CCSMatrix",
    "CFSScheme",
    "COOMatrix",
    "CRSMatrix",
    "ColumnPartition",
    "CostModel",
    "EDScheme",
    "Machine",
    "Mesh2DPartition",
    "PartitionPlan",
    "Phase",
    "ProblemSpec",
    "RowPartition",
    "SFCScheme",
    "SchemeResult",
    "__version__",
    "get_scheme",
    "predict",
    "random_sparse",
    "reproduce_table",
    "run_scheme",
    "sp2_cost_model",
    "spmv",
]
