"""The Extended Karnaugh Map Representation (EKMR) of refs [11, 12].

EKMR represents an n-dimensional array as a single 2-D array by assigning
each dimension to one of the two axes, Karnaugh-map style.  The published
layouts are

* **EKMR(3)**: ``A[k][i][j] → A'[i][k·n_j + j]`` — the third dimension
  tiles along the columns;
* **EKMR(4)**: ``A[l][k][i][j] → A'[l·n_i + i][k·n_j + j]`` — the fourth
  tiles along the rows.

:class:`EKMRMap` generalises this to any rank: the last two dimensions form
the base 2-D map; walking outward, each additional dimension is appended
alternately to the column axis first, then the row axis, with outer
dimensions more significant.  Rank 3 and 4 then reduce exactly to the
published EKMR(3)/EKMR(4).

The payoff, as in the EKMR papers, is that *all* 2-D machinery — CRS/CCS
compression and the SFC/CFS/ED distribution schemes — applies to
multi-dimensional sparse arrays without n-dimensional generalisations of
the storage formats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.coo import COOMatrix
from .tensor import SparseTensor

__all__ = ["EKMRMap", "tensor_to_ekmr", "ekmr_to_tensor"]


@dataclass(frozen=True)
class EKMRMap:
    """The dimension-to-axis assignment for one tensor shape."""

    tensor_shape: tuple[int, ...]
    row_dims: tuple[int, ...]  # outermost first (most significant)
    col_dims: tuple[int, ...]

    @classmethod
    def for_shape(cls, shape) -> "EKMRMap":
        shape = tuple(int(d) for d in shape)
        if len(shape) < 2:
            raise ValueError(f"EKMR needs rank >= 2, got shape {shape}")
        m = len(shape)
        row_dims = [m - 2]
        col_dims = [m - 1]
        to_cols = True  # dimension m-3 goes to columns (EKMR(3))
        for d in range(m - 3, -1, -1):
            if to_cols:
                col_dims.insert(0, d)
            else:
                row_dims.insert(0, d)
            to_cols = not to_cols
        return cls(shape, tuple(row_dims), tuple(col_dims))

    # ------------------------------------------------------------------
    @property
    def matrix_shape(self) -> tuple[int, int]:
        """Shape of the 2-D EKMR image."""
        rows = int(np.prod([self.tensor_shape[d] for d in self.row_dims]))
        cols = int(np.prod([self.tensor_shape[d] for d in self.col_dims]))
        return (rows, cols)

    def _axis_index(self, coords: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
        """Mixed-radix flatten of the given dims (outer = most significant)."""
        idx = np.zeros(coords.shape[1], dtype=np.int64)
        for d in dims:
            idx = idx * self.tensor_shape[d] + coords[d]
        return idx

    def _axis_unflatten(
        self, idx: np.ndarray, dims: tuple[int, ...]
    ) -> dict[int, np.ndarray]:
        out: dict[int, np.ndarray] = {}
        rem = idx.astype(np.int64, copy=True)
        for d in reversed(dims):
            size = self.tensor_shape[d]
            out[d] = rem % size
            rem //= size
        return out

    def flatten(self, coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Tensor coordinates ``(ndim, k)`` → EKMR ``(rows, cols)``."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[0] != len(self.tensor_shape):
            raise ValueError(
                f"coords must have shape ({len(self.tensor_shape)}, k), "
                f"got {coords.shape}"
            )
        return self._axis_index(coords, self.row_dims), self._axis_index(
            coords, self.col_dims
        )

    def unflatten(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """EKMR ``(rows, cols)`` → tensor coordinates ``(ndim, k)``."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must be parallel")
        parts = self._axis_unflatten(rows, self.row_dims)
        parts.update(self._axis_unflatten(cols, self.col_dims))
        return np.stack([parts[d] for d in range(len(self.tensor_shape))])


def tensor_to_ekmr(tensor: SparseTensor) -> tuple[COOMatrix, EKMRMap]:
    """The 2-D EKMR image of a sparse tensor (plus the map to invert it)."""
    emap = EKMRMap.for_shape(tensor.shape)
    rows, cols = emap.flatten(tensor.coords)
    matrix = COOMatrix(emap.matrix_shape, rows, cols, tensor.values)
    return matrix, emap


def ekmr_to_tensor(matrix: COOMatrix, emap: EKMRMap) -> SparseTensor:
    """Invert :func:`tensor_to_ekmr`."""
    if matrix.shape != emap.matrix_shape:
        raise ValueError(
            f"matrix shape {matrix.shape} does not match the map's "
            f"{emap.matrix_shape}"
        )
    coords = emap.unflatten(matrix.rows, matrix.cols)
    return SparseTensor(emap.tensor_shape, coords, matrix.values)
