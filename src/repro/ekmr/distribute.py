"""Distribution schemes for multi-dimensional sparse arrays via EKMR.

The paper's future-work direction, realised: map the sparse tensor to its
2-D EKMR image, then run any of SFC/CFS/ED with any partition and
compression on that image.  Each processor ends up with a compressed 2-D
block of the EKMR image; :func:`gather_tensor` shows the round trip back to
tensor coordinates (and is what the tests use to prove losslessness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import SchemeResult
from ..core.registry import get_compression, get_partition, get_scheme
from ..machine.cost_model import CostModel
from ..machine.machine import Machine
from ..partition.base import PartitionMethod, PartitionPlan
from ..sparse.coo import COOMatrix
from .ekmr import EKMRMap, ekmr_to_tensor, tensor_to_ekmr
from .tensor import SparseTensor

__all__ = ["TensorDistribution", "distribute_tensor", "gather_tensor", "tensor_inner_product"]


@dataclass(frozen=True)
class TensorDistribution:
    """A distributed tensor: scheme result + the EKMR map that made it 2-D."""

    tensor_shape: tuple[int, ...]
    emap: EKMRMap
    plan: PartitionPlan
    result: SchemeResult
    machine: Machine


def distribute_tensor(
    tensor: SparseTensor,
    *,
    scheme: str = "ed",
    partition: str | PartitionMethod = "row",
    n_procs: int = 4,
    compression: str = "crs",
    cost: CostModel | None = None,
) -> TensorDistribution:
    """Distribute a sparse tensor through its EKMR image.

    Returns the full context needed to interpret (or gather back) the
    per-processor compressed blocks.
    """
    matrix, emap = tensor_to_ekmr(tensor)
    method = (
        partition if isinstance(partition, PartitionMethod) else get_partition(partition)
    )
    plan = method.plan(matrix.shape, n_procs)
    machine = Machine(n_procs, cost=cost)
    result = get_scheme(scheme).run(machine, matrix, plan, get_compression(compression))
    return TensorDistribution(
        tensor_shape=tensor.shape,
        emap=emap,
        plan=plan,
        result=result,
        machine=machine,
    )


def gather_tensor(dist: TensorDistribution) -> SparseTensor:
    """Reassemble the global tensor from the processors' local blocks.

    Converts each local compressed block back to global EKMR coordinates
    using the plan's ownership maps, merges, and inverts the EKMR map.
    """
    rows_all: list[np.ndarray] = []
    cols_all: list[np.ndarray] = []
    vals_all: list[np.ndarray] = []
    for assignment, local in zip(dist.plan, dist.result.locals_):
        coo = local.to_coo()
        rows_all.append(assignment.row_ids[coo.rows])
        cols_all.append(assignment.col_ids[coo.cols])
        vals_all.append(coo.values)
    merged = COOMatrix(
        dist.emap.matrix_shape,
        np.concatenate(rows_all) if rows_all else np.empty(0, dtype=np.int64),
        np.concatenate(cols_all) if cols_all else np.empty(0, dtype=np.int64),
        np.concatenate(vals_all) if vals_all else np.empty(0, dtype=np.float64),
    )
    return ekmr_to_tensor(merged, dist.emap)


def tensor_inner_product(dist: TensorDistribution, other: SparseTensor) -> float:
    """Distributed inner product ``<T, S> = Σ T[idx]·S[idx]``.

    ``other`` is broadcast slice-by-slice: the host sends each processor
    the piece of ``S``'s EKMR image matching that processor's block (the
    same ownership the distribution established); each processor computes
    its local dot product against its compressed block, and the partial
    sums are reduced on the host.  Costs are charged to ``Phase.COMPUTE``.
    """
    import numpy as np

    from ..machine.trace import Phase
    from ..core.base import LOCAL_KEY
    from ..sparse.ops import sp_elementwise_multiply

    if other.shape != dist.tensor_shape:
        raise ValueError(
            f"tensors have different shapes: {other.shape} vs {dist.tensor_shape}"
        )
    other_matrix, _ = tensor_to_ekmr(other)
    machine = dist.machine
    partials = []
    for assignment in dist.plan:
        piece = assignment.extract_local(other_matrix)
        wire = 2 * piece.nnz + 1
        machine.send(
            assignment.rank, piece, wire, Phase.COMPUTE, tag="inner-piece"
        )
    for assignment in dist.plan:
        proc = machine.processor(assignment.rank)
        piece = machine.receive(assignment.rank, "inner-piece").payload
        local = proc.load(LOCAL_KEY)
        product = sp_elementwise_multiply(local.to_coo(), piece)
        partial = float(product.values.sum())
        machine.charge_proc_ops(
            assignment.rank,
            2 * min(local.nnz, piece.nnz),
            Phase.COMPUTE,
            label="inner-product",
        )
        machine.send_to_host(
            assignment.rank, partial, 1, Phase.COMPUTE, tag="inner-partial"
        )
        partials.append(partial)
    total = 0.0
    for _ in dist.plan:
        msg = machine.host_receive("inner-partial")
        total += msg.payload
        machine.charge_host_ops(1, Phase.COMPUTE, label="reduce")
    return total
