"""Multi-dimensional sparse arrays (COO tensors).

The paper's conclusion names its future work: "developing efficient data
distribution schemes for multi-dimensional sparse arrays based on the
extended Karnaugh map representation (EKMR)" [11, 12].  This subpackage
implements that direction: :class:`SparseTensor` is the n-dimensional
staging format, :mod:`repro.ekmr.ekmr` maps it onto a 2-D array the
existing CRS/CCS + SFC/CFS/ED machinery handles unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SparseTensor"]


@dataclass(frozen=True)
class SparseTensor:
    """An immutable n-dimensional sparse array in coordinate format.

    ``coords`` has shape ``(ndim, nnz)``; column ``k`` is the coordinate of
    the ``k``-th stored nonzero.  Canonical form: lexicographically sorted
    by coordinate (first dimension most significant), duplicate-free, no
    stored zeros.
    """

    shape: tuple[int, ...]
    coords: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)

    def __init__(self, shape, coords, values, *, canonical: bool = False):
        shape = tuple(int(d) for d in shape)
        if len(shape) < 1:
            raise ValueError("tensor needs at least one dimension")
        if any(d < 0 for d in shape):
            raise ValueError(f"shape must be non-negative, got {shape}")
        coords = np.asarray(coords, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[0] != len(shape):
            raise ValueError(
                f"coords must have shape (ndim={len(shape)}, nnz), got {coords.shape}"
            )
        if values.ndim != 1 or values.shape[0] != coords.shape[1]:
            raise ValueError("values must be 1-D and parallel to coords")
        for d, size in enumerate(shape):
            if coords.shape[1] and (
                coords[d].min() < 0 or coords[d].max() >= size
            ):
                raise ValueError(f"coordinate out of range in dimension {d}")
        if not canonical:
            coords, values = self._canonicalise(shape, coords, values)
        coords = np.ascontiguousarray(coords)
        values = np.ascontiguousarray(values)
        coords.setflags(write=False)
        values.setflags(write=False)
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "coords", coords)
        object.__setattr__(self, "values", values)

    @staticmethod
    def _canonicalise(shape, coords, values):
        order = np.lexsort(coords[::-1])
        coords, values = coords[:, order], values[order]
        n = coords.shape[1]
        if n:
            new_group = np.empty(n, dtype=bool)
            new_group[0] = True
            new_group[1:] = np.any(coords[:, 1:] != coords[:, :-1], axis=0)
            gid = np.cumsum(new_group) - 1
            summed = np.zeros(gid[-1] + 1, dtype=np.float64)
            np.add.at(summed, gid, values)
            firsts = np.flatnonzero(new_group)
            coords, values = coords[:, firsts], summed
            keep = values != 0.0
            coords, values = coords[:, keep], values[keep]
        return coords, values

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "SparseTensor":
        dense = np.asarray(dense, dtype=np.float64)
        coords = np.array(np.nonzero(dense), dtype=np.int64)
        return cls(dense.shape, coords, dense[tuple(coords)], canonical=True)

    @classmethod
    def random(cls, shape, sparse_ratio: float, *, seed=None) -> "SparseTensor":
        """Uniform random tensor with exactly ``round(s·numel)`` nonzeros."""
        if not 0.0 <= sparse_ratio <= 1.0:
            raise ValueError(f"sparse_ratio must be in [0, 1], got {sparse_ratio}")
        shape = tuple(int(d) for d in shape)
        total = int(np.prod(shape)) if shape else 0
        k = int(round(sparse_ratio * total))
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        if k == 0:
            return cls(shape, np.empty((len(shape), 0), dtype=np.int64), np.empty(0))
        flat = rng.choice(total, size=k, replace=False)
        coords = np.array(np.unravel_index(flat, shape), dtype=np.int64)
        return cls(shape, coords, rng.uniform(1.0, 2.0, size=k))

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def sparse_ratio(self) -> float:
        total = int(np.prod(self.shape)) if self.shape else 0
        return self.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        dense[tuple(self.coords)] = self.values
        return dense

    def __eq__(self, other) -> bool:
        if not isinstance(other, SparseTensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.coords, other.coords)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):
        return id(self)

    def __repr__(self) -> str:
        return f"SparseTensor(shape={self.shape}, nnz={self.nnz})"
