"""EKMR extension: multi-dimensional sparse array distribution (future work
of the paper, refs [11, 12])."""

from .distribute import TensorDistribution, distribute_tensor, gather_tensor, tensor_inner_product
from .ekmr import EKMRMap, ekmr_to_tensor, tensor_to_ekmr
from .tensor import SparseTensor

__all__ = [
    "EKMRMap",
    "SparseTensor",
    "TensorDistribution",
    "distribute_tensor",
    "ekmr_to_tensor",
    "gather_tensor",
    "tensor_inner_product",
    "tensor_to_ekmr",
]
