"""Published ground-truth data: the paper's worked-example figures."""

from .figures import (
    FIGURE1_DENSE,
    FIGURE2_ROW_BLOCKS,
    FIGURE4_CRS,
    FIGURE5_CCS_GLOBAL,
    FIGURE7_SPECIAL_BUFFERS,
    N_PROCS,
    sparse_array_A,
)

__all__ = [
    "FIGURE1_DENSE",
    "FIGURE2_ROW_BLOCKS",
    "FIGURE4_CRS",
    "FIGURE5_CCS_GLOBAL",
    "FIGURE7_SPECIAL_BUFFERS",
    "N_PROCS",
    "sparse_array_A",
]
