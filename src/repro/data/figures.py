"""The paper's worked example: Figures 1–7 as executable ground truth.

Figure 1 gives a 10×8 sparse array ``A`` with 16 nonzero elements (the text
calls it "8×10"; the figure itself has 10 rows of 8 columns — we follow the
figure, which all subsequent figures are consistent with).  Figures 2–7
walk that array through the three schemes with four processors.  This
module hard-codes the published figures so the test suite can assert that
our partition / compression / encoding machinery reproduces them *exactly*.

Conventions (see :mod:`repro.sparse.crs`): ``RO`` entries are 1-based
positions, ``CO`` / ``C_{i,j}`` entries are 0-based indices.
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COOMatrix

__all__ = [
    "sparse_array_A",
    "FIGURE1_DENSE",
    "FIGURE2_ROW_BLOCKS",
    "FIGURE4_CRS",
    "FIGURE5_CCS_GLOBAL",
    "FIGURE7_SPECIAL_BUFFERS",
    "N_PROCS",
]

#: the worked example always uses four processors
N_PROCS = 4

#: Figure 1 — the 10×8 global sparse array A with 16 nonzero elements
FIGURE1_DENSE = np.array(
    [
        [0, 1, 0, 0, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 2, 0],
        [3, 0, 0, 0, 0, 0, 0, 4],
        [0, 0, 0, 0, 0, 5, 0, 0],
        [0, 0, 0, 6, 0, 0, 0, 0],
        [0, 0, 0, 0, 7, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 8, 0],
        [0, 0, 0, 0, 9, 0, 0, 10],
        [0, 11, 12, 0, 13, 0, 0, 0],
        [14, 0, 0, 15, 0, 0, 16, 0],
    ],
    dtype=np.float64,
)


def sparse_array_A() -> COOMatrix:
    """The global sparse array of Figure 1."""
    return COOMatrix.from_dense(FIGURE1_DENSE)


#: Figure 2 — row partition of A over four processors: global row ranges
#: (balanced blocks of 10 rows: 3, 3, 2, 2)
FIGURE2_ROW_BLOCKS = [(0, 3), (3, 6), (6, 8), (8, 10)]

#: Figure 4 — CRS compression of each received local array.
#: Per processor: (RO, CO, VL) with RO 1-based, CO 0-based *local* column
#: indices (identical to global ones under the row partition).
FIGURE4_CRS = [
    ([1, 2, 3, 5], [1, 6, 0, 7], [1.0, 2.0, 3.0, 4.0]),
    ([1, 2, 3, 4], [5, 3, 4], [5.0, 6.0, 7.0]),
    ([1, 2, 4], [6, 4, 7], [8.0, 9.0, 10.0]),
    ([1, 4, 7], [1, 2, 4, 0, 3, 6], [11.0, 12.0, 13.0, 14.0, 15.0, 16.0]),
]

#: Figure 5(b) — CFS: CCS compression of each row-partition block with
#: *global* row indices in CO (the pre-conversion wire content).
#: Per processor: (RO, CO_global, VL); RO spans the 8 columns (9 entries).
FIGURE5_CCS_GLOBAL = [
    ([1, 2, 3, 3, 3, 3, 3, 4, 5], [2, 0, 1, 2], [3.0, 1.0, 2.0, 4.0]),
    ([1, 1, 1, 1, 2, 3, 4, 4, 4], [4, 5, 3], [6.0, 7.0, 5.0]),
    ([1, 1, 1, 1, 1, 2, 2, 3, 4], [7, 6, 7], [9.0, 8.0, 10.0]),
    ([1, 2, 3, 4, 5, 6, 6, 7, 7], [9, 8, 8, 9, 8, 9], [14.0, 11.0, 12.0, 15.0, 13.0, 16.0]),
]

#: Figure 7(b/c) — ED with the row partition and the CCS method: the special
#: buffer each processor receives, flattened per Figure 6's layout
#: ``R_col, (C, V)*`` for each of the 8 local columns; C entries are global
#: row indices.
FIGURE7_SPECIAL_BUFFERS = [
    # P0 owns global rows 0-2: col0:{(2,3)} col1:{(0,1)} col6:{(1,2)} col7:{(2,4)}
    [1, 2, 3, 1, 0, 1, 0, 0, 0, 0, 1, 1, 2, 1, 2, 4],
    # P1 owns global rows 3-5: col3:{(4,6)} col4:{(5,7)} col5:{(3,5)}
    [0, 0, 0, 1, 4, 6, 1, 5, 7, 1, 3, 5, 0, 0],
    # P2 owns global rows 6-7: col4:{(7,9)} col6:{(6,8)} col7:{(7,10)}
    [0, 0, 0, 0, 1, 7, 9, 0, 1, 6, 8, 1, 7, 10],
    # P3 owns global rows 8-9: col0:{(9,14)} col1:{(8,11)} col2:{(8,12)}
    # col3:{(9,15)} col4:{(8,13)} col6:{(9,16)}
    [1, 9, 14, 1, 8, 11, 1, 8, 12, 1, 9, 15, 1, 8, 13, 0, 1, 9, 16, 0],
]
