"""Distributed power iteration — dominant eigenpair via repeated SpMV.

A classic consumer of a distributed sparse array (the paper's reference [7]
is a large-eigenvalue-computation text): iterate ``x ← A·x / ‖A·x‖`` until
the Rayleigh quotient stabilises.  Each multiply is a full distributed
:func:`~repro.apps.spmv.distributed_spmv`; the host performs the O(n)
normalisation and convergence bookkeeping (charged per element).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from .spmv import distributed_spmv, resilient_spmv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..recovery.manager import RecoveryRuntime

__all__ = ["PowerIterationResult", "distributed_power_iteration"]


@dataclass(frozen=True)
class PowerIterationResult:
    """Converged (or iteration-capped) dominant eigenpair estimate."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool
    residual: float
    #: iterations replayed after mid-iteration fail-stop deaths (0 when run
    #: without a recovery runtime or nothing died)
    rollbacks: int = 0


def distributed_power_iteration(
    machine: Machine,
    plan: PartitionPlan,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 500,
    seed: int = 0,
    recovery: "RecoveryRuntime | None" = None,
) -> PowerIterationResult:
    """Run power iteration against the machine's distributed local arrays.

    Requires a square global array and a prior scheme run on ``machine``
    (the processors must hold their compressed locals).

    With a :class:`~repro.recovery.manager.RecoveryRuntime` the iteration
    survives fail-stop rank deaths: ``x`` and the Rayleigh bookkeeping
    live host-side, so after the runtime repairs the machine the
    interrupted multiply is replayed — a rollback to the last completed
    iteration.  ``rollbacks`` in the result counts those replays.
    """
    if recovery is not None and recovery.machine is not machine:
        raise ValueError("recovery runtime is bound to a different machine")

    def matvec(v: np.ndarray) -> np.ndarray:
        if recovery is not None:
            return resilient_spmv(recovery, v)
        return distributed_spmv(machine, plan, v)

    rollbacks_at_entry = recovery.rollbacks if recovery is not None else 0

    def rollbacks() -> int:
        return (recovery.rollbacks - rollbacks_at_entry) if recovery is not None else 0

    n_rows, n_cols = plan.global_shape
    if n_rows != n_cols:
        raise ValueError(f"power iteration needs a square array, got {plan.global_shape}")
    if x0 is None:
        x = np.random.default_rng(seed).standard_normal(n_cols)
    else:
        x = np.asarray(x0, dtype=np.float64).copy()
        if x.shape != (n_cols,):
            raise ValueError(f"x0 must have shape ({n_cols},), got {x.shape}")
    norm = np.linalg.norm(x)
    if norm == 0.0:
        raise ValueError("x0 must be nonzero")
    x /= norm

    eigenvalue = 0.0
    for iteration in range(1, max_iter + 1):
        y = matvec(x)
        machine.charge_host_ops(2 * n_rows, Phase.COMPUTE, label="normalise")
        y_norm = np.linalg.norm(y)
        if y_norm == 0.0:
            # x is in the null space; the dominant eigenvalue along it is 0
            return PowerIterationResult(0.0, x, iteration, True, 0.0, rollbacks())
        new_eigenvalue = float(x @ y)  # Rayleigh quotient (‖x‖ = 1)
        x_next = y / y_norm
        residual = float(np.linalg.norm(y - new_eigenvalue * x))
        if abs(new_eigenvalue - eigenvalue) <= tol * max(1.0, abs(new_eigenvalue)):
            return PowerIterationResult(
                new_eigenvalue, x_next, iteration, True, residual, rollbacks()
            )
        eigenvalue = new_eigenvalue
        x = x_next
    return PowerIterationResult(eigenvalue, x, max_iter, False, residual, rollbacks())
