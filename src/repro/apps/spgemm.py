"""Distributed sparse matrix–matrix multiply ``C = A · B``.

``A`` lives distributed (any whole-row layout, the natural one for
row-wise SpGEMM); ``B`` is broadcast in the compact ED wire encoding —
``cols(B) + 2·nnz(B)`` elements per processor instead of the dense
``n·k`` — and each processor computes its rows of ``C`` locally with the
:func:`~repro.sparse.ops.spgemm` kernel.  The result stays distributed
(each processor keeps its block of ``C`` under :data:`RESULT_KEY`),
mirroring how a multi-phase application would chain products.

Cost accounting: the broadcast charges ``p`` messages of the encoded
``B``, decoding charges the usual per-element ops, and the local multiply
charges two ops per partial product (multiply + accumulate) — the exact
flop count of the expansion, derived from the actual operands.
"""

from __future__ import annotations

import numpy as np

from ..core.base import LOCAL_KEY
from ..core.encoded_buffer import EncodedBuffer
from ..core.index_conversion import ConversionSpec
from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix
from ..sparse.crs import CRSMatrix
from ..sparse.ops import spgemm as local_spgemm

__all__ = ["RESULT_KEY", "distributed_spgemm"]

#: processor-memory key for each processor's block of the product
RESULT_KEY = "local_spgemm_result"


def distributed_spgemm(
    machine: Machine, plan: PartitionPlan, b: COOMatrix
) -> COOMatrix:
    """Compute ``C = A @ B`` against the machine's distributed ``A``.

    Requires a whole-row plan and a prior scheme run (each processor holds
    its rows of ``A``).  Returns the assembled global ``C`` (also leaving
    each processor's block in its memory); all traffic and flops are
    charged to ``Phase.COMPUTE``.
    """
    n_rows, n_cols = plan.global_shape
    if b.shape[0] != n_cols:
        raise ValueError(
            f"inner dimensions disagree: A is {plan.global_shape}, "
            f"B is {b.shape}"
        )
    for a in plan:
        if len(a.col_ids) != n_cols:
            raise ValueError(
                "distributed SpGEMM requires a whole-row partition; rank "
                f"{a.rank} owns {len(a.col_ids)} of {n_cols} columns"
            )
    with machine.kernel_context():
        return _spgemm_impl(machine, plan, b, n_rows)


def _spgemm_impl(
    machine: Machine, plan: PartitionPlan, b: COOMatrix, n_rows: int
) -> COOMatrix:
    # broadcast B in the compact ED encoding
    none_conv = ConversionSpec(kind="none")
    buf, encode_ops = EncodedBuffer.encode(b, "crs", none_conv)
    machine.charge_host_ops(encode_ops, Phase.COMPUTE, label="encode-B")
    for a in plan:
        machine.send(a.rank, buf, buf.n_elements, Phase.COMPUTE, tag="B-bcast")

    # local products
    flop_counts: dict[int, int] = {}
    local_results: list[CRSMatrix] = []
    for a in plan:
        proc = machine.processor(a.rank)
        received = machine.receive(a.rank, "B-bcast").payload
        b_local, decode_ops = received.decode(none_conv)
        machine.charge_proc_ops(a.rank, decode_ops, Phase.COMPUTE, label="decode-B")
        a_local = proc.load(LOCAL_KEY)
        if a_local.shape != a.local_shape:
            raise ValueError(
                f"rank {a.rank}: stored local shape {a_local.shape} does not "
                f"match the plan {a.local_shape}"
            )
        c_local = CRSMatrix.from_coo(local_spgemm(a_local, b_local))
        # flops: two ops per partial product = sum over A entries of the
        # matched B-row lengths — derived from the actual operands
        a_coo = a_local.to_coo()
        b_counts = b_local.row_counts()
        flops = 2 * int(b_counts[a_coo.cols].sum())
        machine.charge_proc_ops(a.rank, flops, Phase.COMPUTE, label="spgemm")
        flop_counts[a.rank] = flops
        proc.store(RESULT_KEY, c_local)
        local_results.append(c_local)

    # gather the blocks of C back to the host
    rows_all, cols_all, vals_all = [], [], []
    for a, c_local in zip(plan, local_results):
        wire = 2 * c_local.nnz + c_local.shape[0]
        machine.send_to_host(a.rank, c_local, wire, Phase.COMPUTE, tag="C-part")
    for _ in plan:
        msg = machine.host_receive("C-part")
        a = plan[msg.src]
        coo = msg.payload.to_coo()
        rows_all.append(a.row_ids[coo.rows])
        cols_all.append(coo.cols)
        vals_all.append(coo.values)
        machine.charge_host_ops(coo.nnz, Phase.COMPUTE, label="assemble-C")
    return COOMatrix(
        (n_rows, b.shape[1]),
        np.concatenate(rows_all) if rows_all else np.empty(0, np.int64),
        np.concatenate(cols_all) if cols_all else np.empty(0, np.int64),
        np.concatenate(vals_all) if vals_all else np.empty(0),
    )
