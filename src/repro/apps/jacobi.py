"""Distributed Jacobi iteration for ``A·x = b``.

Finite-element and climate codes (the paper's motivating applications)
spend their time in exactly this loop: a sparse matrix–vector product plus
a diagonal correction,

    ``x_{k+1} = x_k + D^{-1} (b − A·x_k)``.

The multiply runs distributed (:func:`~repro.apps.spmv.distributed_spmv`);
the host applies the O(n) update.  Convergence requires the usual Jacobi
condition (e.g. strict diagonal dominance); :func:`diagonally_dominant`
generates suitable test systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix
from ..sparse.generators import random_sparse
from ..sparse.ops import extract_diagonal
from .spmv import distributed_spmv

__all__ = ["JacobiResult", "distributed_jacobi", "diagonally_dominant"]


def diagonally_dominant(
    n: int, sparse_ratio: float = 0.05, *, dominance: float = 2.0, seed=None
) -> COOMatrix:
    """A strictly diagonally dominant sparse system matrix.

    Off-diagonal structure is uniform random at the requested ratio; each
    diagonal entry is set to ``dominance ×`` its row's absolute off-diagonal
    sum (clamped away from zero), guaranteeing Jacobi convergence.
    """
    if dominance <= 1.0:
        raise ValueError(f"dominance must exceed 1 for guaranteed convergence, got {dominance}")
    base = random_sparse((n, n), sparse_ratio, seed=seed)
    off_mask = base.rows != base.cols
    rows = base.rows[off_mask]
    cols = base.cols[off_mask]
    vals = base.values[off_mask]
    row_abs = np.zeros(n, dtype=np.float64)
    np.add.at(row_abs, rows, np.abs(vals))
    diag = dominance * np.maximum(row_abs, 1.0)
    all_rows = np.concatenate([rows, np.arange(n, dtype=np.int64)])
    all_cols = np.concatenate([cols, np.arange(n, dtype=np.int64)])
    all_vals = np.concatenate([vals, diag])
    return COOMatrix((n, n), all_rows, all_cols, all_vals)


@dataclass(frozen=True)
class JacobiResult:
    """Solver outcome."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float


def distributed_jacobi(
    machine: Machine,
    plan: PartitionPlan,
    matrix: COOMatrix,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> JacobiResult:
    """Solve ``A·x = b`` by Jacobi iteration over the distributed ``A``.

    ``matrix`` is the same global array the scheme distributed (the host
    keeps it to read the diagonal — on a real machine the diagonal would be
    gathered once; we charge ``n`` ops for that extraction).
    """
    n_rows, n_cols = plan.global_shape
    if n_rows != n_cols:
        raise ValueError(f"Jacobi needs a square system, got {plan.global_shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n_rows,):
        raise ValueError(f"b must have shape ({n_rows},), got {b.shape}")
    diag = extract_diagonal(matrix)
    machine.charge_host_ops(n_rows, Phase.COMPUTE, label="extract-diagonal")
    if np.any(diag == 0.0):
        raise ValueError("Jacobi requires a zero-free diagonal")
    x = (
        np.zeros(n_rows)
        if x0 is None
        else np.asarray(x0, dtype=np.float64).copy()
    )
    residual_norm = np.inf
    for iteration in range(1, max_iter + 1):
        ax = distributed_spmv(machine, plan, x)
        r = b - ax
        machine.charge_host_ops(3 * n_rows, Phase.COMPUTE, label="jacobi-update")
        residual_norm = float(np.linalg.norm(r))
        if residual_norm <= tol * max(1.0, float(np.linalg.norm(b))):
            return JacobiResult(x, iteration, True, residual_norm)
        x = x + r / diag
    return JacobiResult(x, max_iter, False, residual_norm)
