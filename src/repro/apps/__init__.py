"""Motivating workloads: distributed kernels over distributed sparse arrays."""

from .conjugate_gradient import CGResult, distributed_cg, spd_system
from .jacobi import JacobiResult, diagonally_dominant, distributed_jacobi
from .power_iteration import PowerIterationResult, distributed_power_iteration
from .spgemm import RESULT_KEY, distributed_spgemm
from .spmv import distributed_spmv, distributed_spmv_transpose, resilient_spmv
from .spmv_allgather import distributed_spmv_allgather

__all__ = [
    "CGResult",
    "RESULT_KEY",
    "JacobiResult",
    "PowerIterationResult",
    "diagonally_dominant",
    "distributed_cg",
    "distributed_jacobi",
    "distributed_power_iteration",
    "distributed_spgemm",
    "distributed_spmv",
    "distributed_spmv_allgather",
    "distributed_spmv_transpose",
    "resilient_spmv",
    "spd_system",
]
