"""Distributed conjugate gradient for symmetric positive-definite systems.

The heavyweight iterative solver of the paper's motivating domains (FEM
[10], eigencomputations [7]).  Each iteration is one distributed SpMV plus
O(n) host-side vector updates — CG therefore amplifies whatever the
distribution scheme saved or wasted, which is why getting the compressed
local arrays in place cheaply (the paper's subject) matters.

Convergence requires ``A`` symmetric positive definite;
:func:`spd_system` generates suitable test systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix
from ..sparse.generators import random_sparse
from .spmv import distributed_spmv, resilient_spmv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..recovery.manager import RecoveryRuntime

__all__ = ["CGResult", "distributed_cg", "spd_system"]


def spd_system(n: int, sparse_ratio: float = 0.05, *, shift: float = None, seed=None) -> COOMatrix:
    """A sparse symmetric positive-definite matrix ``B + Bᵀ + shift·I``.

    ``shift`` defaults to a value safely above the Gershgorin bound of the
    symmetrised part, guaranteeing positive definiteness.
    """
    base = random_sparse((n, n), sparse_ratio, seed=seed)
    sym = base.to_dense()
    sym = sym + sym.T
    if shift is None:
        shift = float(np.abs(sym).sum(axis=1).max()) + 1.0
    return COOMatrix.from_dense(sym + shift * np.eye(n))


@dataclass(frozen=True)
class CGResult:
    """Solver outcome."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    #: iterations replayed after mid-iteration fail-stop deaths (0 when the
    #: solver ran without a recovery runtime or nothing died)
    rollbacks: int = 0


def distributed_cg(
    machine: Machine,
    plan: PartitionPlan,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int | None = None,
    recovery: "RecoveryRuntime | None" = None,
) -> CGResult:
    """Solve ``A·x = b`` by CG against the machine's distributed ``A``.

    Requires a prior scheme run on ``machine`` with the same (square)
    ``plan``.  Host-side vector arithmetic is charged per element to the
    COMPUTE phase; the SpMV runs distributed.

    With a :class:`~repro.recovery.manager.RecoveryRuntime` the solver
    survives fail-stop rank deaths: every iteration's state (``x``, ``r``,
    ``p``) lives host-side, so after the runtime repairs the machine the
    interrupted multiply is replayed and the solve resumes from the last
    completed iteration.  The result's ``rollbacks`` counts those replays.
    """
    if recovery is not None and recovery.machine is not machine:
        raise ValueError("recovery runtime is bound to a different machine")

    def matvec(v: np.ndarray) -> np.ndarray:
        if recovery is not None:
            return resilient_spmv(recovery, v)
        return distributed_spmv(machine, plan, v)

    rollbacks_at_entry = recovery.rollbacks if recovery is not None else 0

    def rollbacks() -> int:
        return (recovery.rollbacks - rollbacks_at_entry) if recovery is not None else 0

    n_rows, n_cols = plan.global_shape
    if n_rows != n_cols:
        raise ValueError(f"CG needs a square system, got {plan.global_shape}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n_rows,):
        raise ValueError(f"b must have shape ({n_rows},), got {b.shape}")
    if max_iter is None:
        max_iter = 10 * n_rows
    x = np.zeros(n_rows) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n_rows,):
        raise ValueError(f"x0 must have shape ({n_rows},), got {x.shape}")

    b_norm = float(np.linalg.norm(b))
    r = b - matvec(x)
    machine.charge_host_ops(n_rows, Phase.COMPUTE, label="cg-residual")
    p = r.copy()
    rs_old = float(r @ r)
    machine.charge_host_ops(2 * n_rows, Phase.COMPUTE, label="cg-dot")

    residual_norm = float(np.sqrt(rs_old))
    if residual_norm <= tol * max(1.0, b_norm):
        return CGResult(x, 0, True, residual_norm, rollbacks())

    for iteration in range(1, max_iter + 1):
        ap = matvec(p)
        p_ap = float(p @ ap)
        machine.charge_host_ops(2 * n_rows, Phase.COMPUTE, label="cg-dot")
        if p_ap <= 0.0:
            raise np.linalg.LinAlgError(
                "pᵀAp <= 0: the system matrix is not positive definite"
            )
        alpha = rs_old / p_ap
        x = x + alpha * p
        r = r - alpha * ap
        machine.charge_host_ops(4 * n_rows, Phase.COMPUTE, label="cg-update")
        rs_new = float(r @ r)
        machine.charge_host_ops(2 * n_rows, Phase.COMPUTE, label="cg-dot")
        residual_norm = float(np.sqrt(rs_new))
        if residual_norm <= tol * max(1.0, b_norm):
            return CGResult(x, iteration, True, residual_norm, rollbacks())
        p = r + (rs_new / rs_old) * p
        machine.charge_host_ops(2 * n_rows, Phase.COMPUTE, label="cg-direction")
        rs_old = rs_new
    return CGResult(x, max_iter, False, residual_norm, rollbacks())
