"""Allgather-based distributed SpMV (the classic MPI matvec pattern).

:func:`~repro.apps.spmv.distributed_spmv` is host-centric: the host
scatters ``x`` slices and assembles partial results — faithful to the
paper's front-end-driven machine model, but it makes the host the hub of
every iteration.

This variant is the pattern parallel codes actually use for *row*
partitions (see the mpi4py tutorial's ``matvec``): each processor owns the
block of ``x`` matching its rows, the full ``x`` is assembled with an
allgather, everyone multiplies locally, and the result ``y`` stays
distributed (each processor holds the slice for its rows) — ready to be the
next iteration's input without any further traffic.

The cost trade-off, exposed by the ablation bench: per iteration the
host-centric kernel moves ``p·n + n`` vector elements through the host,
while the allgather variant moves ``2·n`` up/down but leaves ``y`` in
place, so iterative solvers save the gather entirely.
"""

from __future__ import annotations

import numpy as np

from ..core.base import LOCAL_KEY
from ..machine.collectives import allgather, ring_allgather
from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.ops import spmv as local_spmv

__all__ = ["distributed_spmv_allgather"]


def _check_row_partition(plan: PartitionPlan) -> None:
    n_rows, n_cols = plan.global_shape
    if n_rows != n_cols:
        raise ValueError(
            f"the allgather matvec needs a square array, got {plan.global_shape}"
        )
    for a in plan:
        if len(a.col_ids) != n_cols:
            raise ValueError(
                "the allgather matvec requires a whole-row (row / block-"
                f"cyclic-row / bin-packing) partition; rank {a.rank} owns "
                f"only {len(a.col_ids)} of {n_cols} columns"
            )


def distributed_spmv_allgather(
    machine: Machine,
    plan: PartitionPlan,
    x_slices: list[np.ndarray],
    *,
    collective: str = "host",
) -> list[np.ndarray]:
    """One matvec where both ``x`` and ``y`` live distributed by rows.

    ``x_slices[r]`` is processor ``r``'s slice of ``x`` (values at its
    ``row_ids``, in local order).  Returns the distributed ``y`` in the
    same layout.  Requires a whole-row partition and a prior scheme run.

    ``collective`` selects the allgather algorithm: ``"host"`` (the
    paper's front-end-routed model, 2p serial messages) or ``"ring"``
    (true multi-party, (p-1) overlapped rounds — the variant the
    collective-algorithm ablation measures).
    """
    if collective not in ("host", "ring"):
        raise ValueError(f"collective must be 'host' or 'ring', got {collective!r}")
    _check_row_partition(plan)
    if len(x_slices) != plan.n_procs:
        raise ValueError(
            f"need {plan.n_procs} x slices, got {len(x_slices)}"
        )
    n = plan.global_shape[1]
    for a, piece in zip(plan, x_slices):
        piece = np.asarray(piece)
        if piece.shape != (len(a.row_ids),):
            raise ValueError(
                f"rank {a.rank}: x slice has shape {piece.shape}, expected "
                f"({len(a.row_ids)},)"
            )

    pieces = [np.asarray(piece, dtype=np.float64) for piece in x_slices]
    with machine.kernel_context():
        return _allgather_impl(machine, plan, pieces, n, collective)


def _allgather_impl(
    machine: Machine,
    plan: PartitionPlan,
    pieces: list[np.ndarray],
    n: int,
    collective: str,
) -> list[np.ndarray]:
    # Every processor assembles the full x. The concatenated order is the
    # rank-major ownership order; processors permute it into global order
    # (one op per element, charged below).
    if collective == "host":
        gathered = allgather(machine, pieces, Phase.COMPUTE, tag="x-allgather")
    else:
        per_proc_pieces = ring_allgather(
            machine, pieces, Phase.COMPUTE, tag="x-allgather"
        )
        gathered = [np.concatenate(h) for h in per_proc_pieces]
    ownership_order = np.concatenate([a.row_ids for a in plan])
    y_slices: list[np.ndarray] = []
    for a, full in zip(plan, gathered):
        x_global = np.empty(n, dtype=np.float64)
        x_global[ownership_order] = full
        machine.charge_proc_ops(a.rank, n, Phase.COMPUTE, label="permute-x")
        local = machine.processor(a.rank).load(LOCAL_KEY)
        if local.shape != a.local_shape:
            raise ValueError(
                f"rank {a.rank}: stored local array shape {local.shape} does "
                f"not match the plan {a.local_shape}"
            )
        y_local = local_spmv(local, x_global)
        machine.charge_proc_ops(a.rank, 2 * local.nnz, Phase.COMPUTE, label="spmv")
        y_slices.append(y_local)
    return y_slices
