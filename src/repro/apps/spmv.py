"""Distributed sparse matrix–vector multiply on the simulated machine.

This is the workload the paper's introduction motivates: once a
distribution scheme has placed compressed local arrays on the processors,
scientific codes run kernels like ``y = A·x`` against them.  The kernel
works for *any* partition plan:

1. the host sends each processor the slice of ``x`` matching its owned
   columns (one message each, sequential);
2. each processor computes its partial product over its local rows
   (``2·nnz_local`` ops — one multiply, one add per stored element);
3. each processor sends its partial result back; the host scatters the
   partials into the global ``y`` (one add per received element — for row
   or column partitions this is a plain placement/reduction respectively).

All traffic and ops are charged to :data:`~repro.machine.trace.Phase.
COMPUTE`, so distribution-phase timings stay untouched and one machine can
run distribute-then-compute pipelines.

:func:`resilient_spmv` is the fail-stop-tolerant wrapper: it computes the
same product through a :class:`~repro.recovery.manager.RecoveryRuntime`,
replaying the multiply after the runtime repairs any rank death — the
checkpoint/rollback building block of the iterative apps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.base import LOCAL_KEY
from ..machine.machine import Machine
from ..machine.membership import DeadRankError
from ..machine.trace import Phase
from ..partition.base import PartitionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..recovery.manager import RecoveryRuntime

__all__ = ["distributed_spmv", "distributed_spmv_transpose", "resilient_spmv"]


def distributed_spmv(
    machine: Machine, plan: PartitionPlan, x: np.ndarray
) -> np.ndarray:
    """Compute ``y = A @ x`` against the distributed compressed locals.

    Requires a prior scheme run on ``machine`` with the same ``plan`` (each
    processor must hold its local array under ``LOCAL_KEY``).  Returns the
    assembled global ``y``; simulated cost is recorded under
    ``Phase.COMPUTE``.
    """
    n_rows, n_cols = plan.global_shape
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n_cols,):
        raise ValueError(f"x must have shape ({n_cols},), got {x.shape}")
    with machine.kernel_context():
        return _spmv_impl(machine, plan, x, n_rows)


def _spmv_impl(
    machine: Machine, plan: PartitionPlan, x: np.ndarray, n_rows: int
) -> np.ndarray:
    # 1. scatter the needed x slices
    for assignment in plan:
        x_local = x[assignment.col_ids]
        machine.send(
            assignment.rank, x_local, len(x_local), Phase.COMPUTE, tag="x-slice"
        )

    # 2. local partial products — rank tasks on the machine's executor;
    # the x-slice frame is checksum-verified (uncharged, phase=None like
    # the serial receive) and the stored local array travels by reference
    # (shipped to a worker once, then version-cached)
    pool = machine.rank_pool()
    for assignment in plan:
        pool.submit(
            assignment.rank, "spmv.partial", Phase.COMPUTE,
            frame=pool.take_frame(assignment.rank, "x-slice"),
            local=pool.ref(LOCAL_KEY),
            expected_shape=assignment.local_shape,
            transpose=False,
        )
    partials: list[np.ndarray] = []
    for assignment in plan:
        partials.append(pool.result(assignment.rank))

    # 3. gather and assemble (host adds each returned element once)
    y = np.zeros(n_rows, dtype=np.float64)
    for assignment, y_local in zip(plan, partials):
        machine.send_to_host(
            assignment.rank, y_local, len(y_local), Phase.COMPUTE, tag="y-partial"
        )
    for assignment in plan:
        msg = machine.host_receive("y-partial")
        np.add.at(y, plan[msg.src].row_ids, msg.payload)
        machine.charge_host_ops(len(msg.payload), Phase.COMPUTE, label="assemble")
    return y


def resilient_spmv(runtime: "RecoveryRuntime", x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` that survives fail-stop rank deaths mid-multiply.

    Runs :func:`distributed_spmv` against the runtime's current
    ``(view, plan)`` pair.  If a rank dies mid-iteration the runtime
    confirms the failure (detection timeouts charged), restores a degraded
    plan from its host-side checkpoints and the multiply is *replayed* on
    the shrunken machine — ``x`` lives host-side, so replaying the
    interrupted multiply is exactly a rollback to the last completed
    iteration.  Terminates because every failure permanently removes a
    rank and at least one always survives.
    """
    while True:
        try:
            return distributed_spmv(runtime.view, runtime.plan, x)
        except DeadRankError as err:
            runtime.handle(err)


def distributed_spmv_transpose(
    machine: Machine, plan: PartitionPlan, x: np.ndarray
) -> np.ndarray:
    """Compute ``y = Aᵀ @ x`` against the distributed ``A`` — no transpose.

    Dual of :func:`distributed_spmv`: the host sends each processor the
    slice of ``x`` matching its owned *rows*, each processor computes a
    partial over its owned *columns* with the transpose kernel
    (``2·nnz`` ops), and the host accumulates partials into ``y`` indexed
    by column ownership.  Works for any partition plan; the distributed
    array itself is untouched.
    """
    n_rows, n_cols = plan.global_shape
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n_rows,):
        raise ValueError(f"x must have shape ({n_rows},), got {x.shape}")
    with machine.kernel_context():
        return _spmv_transpose_impl(machine, plan, x, n_cols)


def _spmv_transpose_impl(
    machine: Machine, plan: PartitionPlan, x: np.ndarray, n_cols: int
) -> np.ndarray:
    for assignment in plan:
        x_local = x[assignment.row_ids]
        machine.send(
            assignment.rank, x_local, len(x_local), Phase.COMPUTE, tag="xT-slice"
        )

    # rank tasks, exactly as in _spmv_impl but with the transpose kernel
    pool = machine.rank_pool()
    for assignment in plan:
        pool.submit(
            assignment.rank, "spmv.partial", Phase.COMPUTE,
            frame=pool.take_frame(assignment.rank, "xT-slice"),
            local=pool.ref(LOCAL_KEY),
            expected_shape=assignment.local_shape,
            transpose=True,
        )
    partials: list[np.ndarray] = []
    for assignment in plan:
        partials.append(pool.result(assignment.rank))

    y = np.zeros(n_cols, dtype=np.float64)
    for assignment, y_local in zip(plan, partials):
        machine.send_to_host(
            assignment.rank, y_local, len(y_local), Phase.COMPUTE, tag="yT-partial"
        )
    for assignment in plan:
        msg = machine.host_receive("yT-partial")
        np.add.at(y, plan[msg.src].col_ids, msg.payload)
        machine.charge_host_ops(len(msg.payload), Phase.COMPUTE, label="assemble-T")
    return y
