"""Distributed transpose of a distributed sparse array.

A pleasant consequence of cross-product ownership: the processor owning
block ``(R, C)`` of ``A`` owns exactly block ``(C, R)`` of ``Aᵀ``.
Transposing a distributed array therefore needs **zero communication** —
each processor transposes its local compressed block in place (a resort,
three ops per nonzero) and the *plan* swaps its row/column roles:

* a row partition of ``A`` becomes a column partition of ``Aᵀ``;
* a ``pr × pc`` mesh becomes a ``pc × pr`` mesh with the same linear ranks;
* CRS locals become CCS locals of the transpose (and vice versa) *for
  free* — ``CRS(B)ᵀ`` has exactly the arrays of ``CCS(Bᵀ)`` — though this
  implementation materialises the requested output compression explicitly.

Contrast with :mod:`repro.core.redistribute`, which moves data between
arbitrary layouts: transpose is the special case where the layout moves
and the data stays.
"""

from __future__ import annotations

from typing import Type

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import BlockAssignment, PartitionPlan
from .base import LOCAL_KEY, CompressedLocal, compression_kind

__all__ = ["transpose_plan", "distributed_transpose"]


def transpose_plan(plan: PartitionPlan) -> PartitionPlan:
    """The ownership plan of ``Aᵀ``: per rank, row and column ids swap."""
    assignments = tuple(
        BlockAssignment(
            rank=a.rank,
            row_ids=a.col_ids,
            col_ids=a.row_ids,
            mesh_coords=(a.mesh_coords[1], a.mesh_coords[0])
            if a.mesh_coords is not None
            else None,
        )
        for a in plan
    )
    mesh = (
        (plan.mesh_shape[1], plan.mesh_shape[0])
        if plan.mesh_shape is not None
        else None
    )
    return PartitionPlan(
        f"{plan.method}^T",
        (plan.global_shape[1], plan.global_shape[0]),
        assignments,
        mesh_shape=mesh,
    )


def distributed_transpose(
    machine: Machine,
    plan: PartitionPlan,
    compression: Type[CompressedLocal],
) -> tuple[PartitionPlan, tuple[CompressedLocal, ...]]:
    """Transpose the machine's distributed array in place.

    Requires a prior scheme run with ``plan``.  Afterwards each processor
    holds the ``compression`` of its block of ``Aᵀ`` under ``LOCAL_KEY``;
    returns the transposed plan and the new locals.  Cost: three
    ``T_Operation`` per stored nonzero per processor (the resort), in
    parallel, charged to COMPUTE; no messages at all.
    """
    compression_kind(compression)  # validate the type early
    new_plan = transpose_plan(plan)
    locals_: list[CompressedLocal] = []
    for assignment in plan:
        proc = machine.processor(assignment.rank)
        local = proc.load(LOCAL_KEY)
        if local.shape != assignment.local_shape:
            raise ValueError(
                f"rank {assignment.rank}: stored local shape {local.shape} "
                f"does not match the plan {assignment.local_shape}"
            )
        transposed = compression.from_coo(local.to_coo().transpose())
        machine.charge_proc_ops(
            assignment.rank, 3 * transposed.nnz, Phase.COMPUTE, label="transpose"
        )
        proc.store(LOCAL_KEY, transposed)
        locals_.append(transposed)
    return new_plan, tuple(locals_)
