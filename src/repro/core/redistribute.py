"""Sparse array redistribution between partition plans.

The paper's related work (Bandera & Zapata, "Sparse Matrix Block-Cyclic
Redistribution", IPPS 1999 — reference [3]) studies the follow-on problem:
an application changes phase and the *already distributed* sparse array
must move from one partition to another (row → mesh, block → block-cyclic,
…) without materialising it on the host.

This module implements that operation on our machine, reusing the ED
scheme's insight: each processor encodes the intersection of its current
block with every destination block into a coordinate-pair special buffer
(``count, (row, col, value)...`` triplets — coordinates are *global*, so no
per-hop conversion tables are needed), sends the buffers point-to-point,
and each destination decodes and recompresses.

Cost accounting mirrors the distribution phase: encode/decode are one op
per written element plus one scan op per stored nonzero examined; each
message costs ``T_Startup + elements·T_Data``.  Sends are charged to the
*sender's* timeline and, as in the paper's model, senders operate in
parallel with each other (the phase ends when the slowest sender-then-
receiver chain finishes; we account senders and receivers as the two
parallel pools of the DISTRIBUTION phase: phase time = max sender time +
max receiver time, which the ledger realises as proc-time maxima because
hosts are uninvolved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

import numpy as np

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import BlockAssignment, PartitionPlan
from ..sparse.coo import COOMatrix
from .base import LOCAL_KEY, CompressedLocal, compression_kind

__all__ = [
    "RedistributionResult",
    "assemble_block",
    "local_to_global_coo",
    "ownership_maps",
    "redistribute",
    "triplet_buffer",
]


def local_to_global_coo(
    local: COOMatrix, assignment: BlockAssignment
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lift a local compressed block's coordinates to global indices."""
    return (
        assignment.row_ids[local.rows],
        assignment.col_ids[local.cols],
        local.values,
    )


def ownership_maps(plan: PartitionPlan) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(row_owner_component, col_owner_component) lookup tables.

    ``owner = row_component[r] , col_component[c]`` — a processor owns the
    cell iff both components match its block.  For the cross-product plans
    this package produces, each global row belongs to exactly one row-block
    id and each column to one column-block id; a processor is addressed by
    the pair.
    """
    n_rows, n_cols = plan.global_shape
    row_comp = np.full(n_rows, -1, dtype=np.int64)
    col_comp = np.full(n_cols, -1, dtype=np.int64)
    # assign component ids by scanning assignments; processors sharing the
    # same row set get the same row component id (mesh partitions).
    row_sets: dict[bytes, int] = {}
    col_sets: dict[bytes, int] = {}
    proc_components = []
    for a in plan:
        rkey = a.row_ids.tobytes()
        ckey = a.col_ids.tobytes()
        if rkey not in row_sets:
            row_sets[rkey] = len(row_sets)
            row_comp[a.row_ids] = row_sets[rkey]
        if ckey not in col_sets:
            col_sets[ckey] = len(col_sets)
            col_comp[a.col_ids] = col_sets[ckey]
        proc_components.append((row_sets[rkey], col_sets[ckey]))
    # map component pair -> rank
    pair_to_rank = {pair: rank for rank, pair in enumerate(proc_components)}
    n_col_comps = len(col_sets)
    owner_of_pair = np.full(len(row_sets) * n_col_comps, -1, dtype=np.int64)
    for (ri, ci), rank in pair_to_rank.items():
        owner_of_pair[ri * n_col_comps + ci] = rank
    return row_comp * n_col_comps, col_comp, owner_of_pair


def triplet_buffer(
    g_rows: np.ndarray, g_cols: np.ndarray, values: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Encode the masked nonzeros as one flat ``rows|cols|values`` buffer.

    The ED-style coordinate-pair wire format of this module: coordinates
    are *global*, so the receiver needs no per-hop conversion tables.
    """
    return np.concatenate(
        [
            g_rows[mask].astype(np.float64),
            g_cols[mask].astype(np.float64),
            values[mask],
        ]
    )


def assemble_block(
    machine: Machine,
    assignment: BlockAssignment,
    pieces: list[np.ndarray],
    global_shape: tuple[int, int],
    compression: Type[CompressedLocal],
) -> CompressedLocal:
    """Decode triplet buffers into this rank's compressed local block.

    Shared by :func:`redistribute` and the peer-redistribution recovery
    policy (src/repro/recovery/): decodes every buffer, converts global →
    local coordinates, recompresses, charges the ops to the DISTRIBUTION
    phase and stores the result under ``LOCAL_KEY``.
    """
    rows_parts, cols_parts, vals_parts = [], [], []
    decode_ops = 0
    for buf in pieces:
        count = len(buf) // 3
        rows_parts.append(buf[:count].astype(np.int64))
        cols_parts.append(buf[count : 2 * count].astype(np.int64))
        vals_parts.append(buf[2 * count :])
        decode_ops += 3 * count
    g_rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
    g_cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
    values = np.concatenate(vals_parts) if vals_parts else np.empty(0)
    # global -> local conversion: one lookup per coordinate pair
    row_lookup = np.full(global_shape[0], -1, dtype=np.int64)
    row_lookup[assignment.row_ids] = np.arange(len(assignment.row_ids))
    col_lookup = np.full(global_shape[1], -1, dtype=np.int64)
    col_lookup[assignment.col_ids] = np.arange(len(assignment.col_ids))
    l_rows = row_lookup[g_rows]
    l_cols = col_lookup[g_cols]
    if np.any(l_rows < 0) or np.any(l_cols < 0):
        raise ValueError(
            f"rank {assignment.rank} received a cell it does not own"
        )
    local_coo = COOMatrix(assignment.local_shape, l_rows, l_cols, values)
    compressed = compression.from_coo(local_coo)
    # decode + conversion + recompression (3 ops per nonzero)
    machine.charge_proc_ops(
        assignment.rank,
        decode_ops + 2 * len(values) + 3 * compressed.nnz,
        Phase.DISTRIBUTION,
        label="decode-recompress",
    )
    machine.processor(assignment.rank).store(LOCAL_KEY, compressed)
    return compressed


@dataclass(frozen=True)
class RedistributionResult:
    """Outcome of one redistribution."""

    source: str
    destination: str
    n_procs: int
    t_redistribution: float
    locals_: tuple[CompressedLocal, ...]
    messages: int
    elements_moved: int


def redistribute(
    machine: Machine,
    old_plan: PartitionPlan,
    new_plan: PartitionPlan,
    compression: Type[CompressedLocal],
) -> RedistributionResult:
    """Move the distributed array from ``old_plan`` ownership to ``new_plan``.

    Requires a prior scheme run against ``old_plan`` on this machine (each
    processor holds its compressed local under ``LOCAL_KEY``).  On return
    every processor holds the ``new_plan`` block instead, and the cost is
    recorded in the ledger's DISTRIBUTION phase.
    """
    if old_plan.n_procs != machine.n_procs or new_plan.n_procs != machine.n_procs:
        raise ValueError("both plans must match the machine's processor count")
    if old_plan.global_shape != new_plan.global_shape:
        raise ValueError(
            f"plans cover different arrays: {old_plan.global_shape} vs "
            f"{new_plan.global_shape}"
        )
    kind = compression_kind(compression)
    row_key, col_comp, owner_of_pair = ownership_maps(new_plan)

    # -- each source processor splits its block by destination ------------
    n_messages = 0
    elements_moved = 0
    staged: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(machine.n_procs)]
    for assignment in old_plan:
        proc = machine.processor(assignment.rank)
        local = proc.load(LOCAL_KEY)
        if local.shape != assignment.local_shape:
            raise ValueError(
                f"rank {assignment.rank}: stored local shape {local.shape} "
                f"does not match old plan {assignment.local_shape}"
            )
        g_rows, g_cols, values = local_to_global_coo(local.to_coo(), assignment)
        owners = owner_of_pair[row_key[g_rows] + col_comp[g_cols]]
        # encode one triplet buffer per destination: scan each stored
        # nonzero once (owner lookup) + 3 writes per forwarded nonzero
        machine.charge_proc_ops(
            assignment.rank, local.nnz, Phase.DISTRIBUTION, label="split-scan"
        )
        for dst in range(machine.n_procs):
            mask = owners == dst
            count = int(mask.sum())
            if count == 0 and dst != assignment.rank:
                continue
            buffer = triplet_buffer(g_rows, g_cols, values, mask)
            machine.charge_proc_ops(
                assignment.rank, 3 * count, Phase.DISTRIBUTION, label="encode"
            )
            if dst == assignment.rank:
                staged[dst].append((assignment.rank, buffer))  # stays local
            else:
                machine.send(
                    dst,
                    buffer,
                    len(buffer),
                    Phase.DISTRIBUTION,
                    src=assignment.rank,
                    tag="redistribute",
                )
                n_messages += 1
                elements_moved += len(buffer)

    # -- each destination assembles and recompresses ----------------------
    locals_: list[CompressedLocal] = []
    for assignment in new_plan:
        pieces = [buf for _, buf in staged[assignment.rank]]
        while True:
            try:
                pieces.append(
                    machine.receive(assignment.rank, "redistribute").payload
                )
            except LookupError:
                break
        locals_.append(
            assemble_block(
                machine, assignment, pieces, new_plan.global_shape, compression
            )
        )

    return RedistributionResult(
        source=old_plan.method,
        destination=new_plan.method,
        n_procs=machine.n_procs,
        t_redistribution=machine.trace.elapsed(Phase.DISTRIBUTION),
        locals_=tuple(locals_),
        messages=n_messages,
        elements_moved=elements_moved,
    )
