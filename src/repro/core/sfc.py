"""The Send-Followed-Compress (SFC) scheme — the classical baseline.

Phase order: partition → **distribute dense** → compress locally.

The host sends each processor its *entire* dense local array (zeros
included), so the distribution phase moves ``n²`` elements regardless of
sparsity — ``p·T_Startup + n²·T_Data`` under the row partition (Table 1).
Each processor then compresses its dense block with CRS/CCS at a cost of
one scan op per element plus three ops per nonzero, in parallel —
``⌈n/p⌉·n·(1+3s′)·T_Operation``.

Packing subtlety (visible in the paper's Tables 3 vs 4/5): a *row* block is
contiguous in the host's row-major global array, so it is sent "without
packing into buffers" (Section 4.1.1A).  Column and mesh blocks are strided,
so the host must gather them into a send buffer first — one move op per
element.  The receiver always stores the arrived buffer directly as its
dense local array (no unpack charge).  This is why the paper's measured SFC
distribution time for the column partition is ~2.4× the row partition's.
"""

from __future__ import annotations

from typing import Type

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import BlockAssignment, PartitionPlan
from ..sparse.coo import COOMatrix
from .base import LOCAL_KEY, CompressedLocal, DistributionScheme, SchemeResult, compression_kind

__all__ = ["SFCScheme", "dense_block_is_contiguous"]


def dense_block_is_contiguous(
    assignment: BlockAssignment, global_shape: tuple[int, int]
) -> bool:
    """True when the block is contiguous in the row-major global array.

    Exactly the full-width contiguous row blocks of the row partition
    qualify; those are sent straight out of the global array with zero
    packing ops.
    """
    return (
        assignment.rows_contiguous
        and assignment.cols_contiguous
        and len(assignment.col_ids) == global_shape[1]
    )


class SFCScheme(DistributionScheme):
    """partition → send dense local arrays → compress on each processor."""

    name = "sfc"

    def run(
        self,
        machine: Machine,
        global_matrix: COOMatrix,
        plan: PartitionPlan,
        compression: Type[CompressedLocal],
    ) -> SchemeResult:
        self._check_inputs(machine, global_matrix, plan)
        kind = compression_kind(compression)
        with machine.kernel_context():
            return self._run(machine, global_matrix, plan, compression, kind)

    def _run(self, machine, global_matrix, plan, compression, kind):
        obs = machine.obs
        # -- phase 1: partition (untimed, per Section 4: "we do not
        # consider the data partition time") --------------------------------
        local_arrays = plan.extract_all(global_matrix)

        # -- phase 2: distribution — dense blocks, sent in sequence ---------
        with obs.span("sfc.distribute", phase="distribution"):
            for assignment, local in zip(plan, local_arrays):
                with obs.span("sfc.send", rank=assignment.rank):
                    dense = local.to_dense()
                    n_elements = dense.size
                    if not dense_block_is_contiguous(
                        assignment, global_matrix.shape
                    ):
                        # strided block: gather into a send buffer, one
                        # move op per element
                        machine.charge_host_ops(
                            n_elements, Phase.DISTRIBUTION, label="pack-dense"
                        )
                    machine.send(
                        assignment.rank,
                        dense,
                        n_elements,
                        Phase.DISTRIBUTION,
                        tag="dense-block",
                    )

        # -- phase 3: compression — each processor, in parallel -------------
        # the rank pool runs every block's compress wherever the machine's
        # executor puts it (inline / worker process); each task verifies
        # its frame's wire checksum when fault injection is active and its
        # charges replay here in rank order, byte-identical to the serial
        # receive/compress/charge loop
        locals_ = []
        pool = machine.rank_pool()
        with obs.span("sfc.compress", phase="compression"):
            for assignment in plan:
                pool.submit(
                    assignment.rank, "sfc.compress", Phase.COMPRESSION,
                    frame=pool.take_frame(assignment.rank, "dense-block"),
                    kind=kind,
                )
            for assignment in plan:
                proc = machine.processor(assignment.rank)
                with obs.span("sfc.compress_local", rank=assignment.rank):
                    compressed = pool.result(assignment.rank)
                obs.record_compressed(self.name, compressed.nnz)
                proc.store(LOCAL_KEY, compressed)
                locals_.append(compressed)

        return self._result(machine, global_matrix, plan, kind, locals_)
