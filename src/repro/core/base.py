"""Scheme driver interface and result record.

A *data distribution scheme* takes a global sparse array held by the host
of a :class:`~repro.machine.machine.Machine`, a
:class:`~repro.partition.base.PartitionPlan`, and a compression method
(:class:`~repro.sparse.crs.CRSMatrix` or :class:`~repro.sparse.ccs.
CCSMatrix`), runs its three phases on the machine, and leaves every
processor holding its compressed local sparse array (with *local* indices)
under :data:`LOCAL_KEY`.

The returned :class:`SchemeResult` carries the paper's two reported
quantities (``T_Distribution``, ``T_Compression``) plus the full trace for
finer-grained analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Sequence, Type, Union

from ..machine.machine import Machine
from ..machine.trace import Phase, PhaseBreakdown
from ..partition.base import PartitionPlan
from ..sparse.ccs import CCSMatrix
from ..sparse.coo import COOMatrix
from ..sparse.crs import CRSMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recovery -> core)
    from ..exec.supervise import SupervisorSummary
    from ..obs.spans import ObsSnapshot
    from ..recovery.summary import RecoverySummary

__all__ = ["LOCAL_KEY", "CompressedLocal", "SchemeResult", "DistributionScheme", "compression_kind"]

#: processor-memory key under which schemes store the compressed local array
LOCAL_KEY = "local_compressed"

CompressedLocal = Union[CRSMatrix, CCSMatrix]


def compression_kind(compression: Type[CompressedLocal]) -> Literal["crs", "ccs"]:
    """``'crs'`` / ``'ccs'`` tag for a compression class."""
    if compression is CRSMatrix:
        return "crs"
    if compression is CCSMatrix:
        return "ccs"
    raise TypeError(
        f"compression must be CRSMatrix or CCSMatrix, got {compression!r}"
    )


@dataclass(frozen=True)
class SchemeResult:
    """Outcome of running one scheme on one machine.

    Times are simulated milliseconds under the machine's cost model; the
    attribute names mirror the paper's notation.
    """

    scheme: str
    partition: str
    compression: Literal["crs", "ccs"]
    n_procs: int
    global_shape: tuple[int, int]
    global_nnz: int
    t_distribution: float
    t_compression: float
    distribution_breakdown: PhaseBreakdown
    compression_breakdown: PhaseBreakdown
    locals_: tuple[CompressedLocal, ...]
    #: per-phase fault counters from the machine's injector (None = no
    #: injector attached; the run was the exact fault-free simulator)
    fault_summary: dict[str, dict[str, int]] | None = None
    #: recovery subsystem report (None = no fail-stop failure occurred, or
    #: the run was executed without a recovery policy)
    recovery_summary: "RecoverySummary | None" = None
    #: observability snapshot (None = the run was executed with
    #: observability disabled — the default, byte-identical golden path)
    observability: "ObsSnapshot | None" = None
    #: real-fault supervision record (None = the run's executor session
    #: was unsupervised — sim, or bare process executor)
    supervisor_summary: "SupervisorSummary | None" = None

    @property
    def t_total(self) -> float:
        """Overall scheme time (the paper's "overall performance")."""
        return self.t_distribution + self.t_compression

    @property
    def wire_elements(self) -> int:
        """Total array elements transmitted during distribution."""
        return self.distribution_breakdown.elements_sent

    @property
    def n_messages(self) -> int:
        return self.distribution_breakdown.n_messages

    @property
    def total_retries(self) -> int:
        """Retransmissions charged across all phases (0 when fault-free)."""
        if not self.fault_summary:
            return 0
        return sum(b.get("retries", 0) for b in self.fault_summary.values())

    def fault_line(self) -> str:
        """One-line retries/drops/corruptions/duplicates summary."""
        if self.fault_summary is None:
            return "faults: off"
        totals: dict[str, int] = {}
        for bucket in self.fault_summary.values():
            for k, v in bucket.items():
                totals[k] = totals.get(k, 0) + v
        if not totals:
            return "faults: injector on, no faults fired"
        keys = ("retries", "drops", "corruptions", "crash_drops", "duplicates", "reorders", "forced")
        return "faults: " + " ".join(
            f"{k}={totals[k]}" for k in keys if totals.get(k)
        )

    def recovery_line(self) -> str:
        """One-line recovery summary (policy, dead ranks, costs)."""
        if self.recovery_summary is None:
            return "recovery: n/a"
        return self.recovery_summary.line()

    def supervisor_line(self) -> str:
        """One-line real-fault supervision summary (crashes, restarts)."""
        if self.supervisor_summary is None:
            return "supervisor: off"
        return self.supervisor_summary.line()

    @property
    def sparse_ratio(self) -> float:
        total = self.global_shape[0] * self.global_shape[1]
        return self.global_nnz / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{self.scheme.upper()} ({self.partition}+{self.compression}, "
            f"p={self.n_procs}, n={self.global_shape}): "
            f"T_dist={self.t_distribution:.3f}ms "
            f"T_comp={self.t_compression:.3f}ms "
            f"total={self.t_total:.3f}ms"
        )


class DistributionScheme:
    """Base class for SFC / CFS / ED (and any future ordering)."""

    #: registry / table name ("sfc", "cfs", "ed")
    name: str = "abstract"

    def run(
        self,
        machine: Machine,
        global_matrix: COOMatrix,
        plan: PartitionPlan,
        compression: Type[CompressedLocal],
    ) -> SchemeResult:
        """Execute the scheme; see module docstring for the contract."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_inputs(
        machine: Machine, global_matrix: COOMatrix, plan: PartitionPlan
    ) -> None:
        if plan.n_procs != machine.n_procs:
            raise ValueError(
                f"plan has {plan.n_procs} blocks but machine has "
                f"{machine.n_procs} processors"
            )
        if plan.global_shape != global_matrix.shape:
            raise ValueError(
                f"plan shape {plan.global_shape} != matrix shape "
                f"{global_matrix.shape}"
            )

    def _result(
        self,
        machine: Machine,
        global_matrix: COOMatrix,
        plan: PartitionPlan,
        kind: Literal["crs", "ccs"],
        locals_: Sequence[CompressedLocal],
    ) -> SchemeResult:
        dist = machine.trace.breakdown(Phase.DISTRIBUTION)
        comp = machine.trace.breakdown(Phase.COMPRESSION)
        observability = None
        if machine.obs.enabled:
            # the no-drift contract: every observed run self-checks that
            # the metrics registry and the TraceLog breakdowns agree
            machine.obs.meta.setdefault("scheme", self.name)
            machine.obs.meta.setdefault("partition", plan.method)
            machine.obs.meta.setdefault("compression", kind)
            machine.obs.verify_against_trace(machine.trace)
            observability = machine.obs.snapshot()
        return SchemeResult(
            scheme=self.name,
            partition=plan.method,
            compression=kind,
            n_procs=machine.n_procs,
            global_shape=global_matrix.shape,
            global_nnz=global_matrix.nnz,
            t_distribution=dist.elapsed,
            t_compression=comp.elapsed,
            distribution_breakdown=dist,
            compression_breakdown=comp,
            locals_=tuple(locals_),
            fault_summary=machine.fault_summary(),
            observability=observability,
            supervisor_summary=machine.supervisor_summary(),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
