"""SFC / CFS / ED orderings for the JDS compression method.

The paper's future work (1): "Analyze the performance of the SFC, the CFS,
and the ED schemes for other partition and data compression methods."
This module carries the three orderings over to Jagged Diagonal Storage
(:mod:`repro.sparse.jds`) under whole-row partitions:

* **SFC**: send the dense block, build JDS on the processor
  (scan + row-count sort + 3 ops per nonzero, the sort charged at one op
  per row as a counting sort over nonzero counts);
* **CFS**: build JDS on the host, pack ``(perm, jd_ptr, indices, values)``
  and send; the receiver unpacks — column indices are already local under
  a whole-row partition (the Case 3.2.1 analogue);
* **ED**: encode a JDS special buffer — ``perm`` header followed by
  per-jag segments ``[L_j, (C, V)...]`` mirroring Figure 6 with jags in
  the role of rows — and decode on the processor by prefix-summing jag
  lengths.

The ED wire is again the smallest (``rows + jags + 2·nnz`` vs CFS's
``rows + jags + 1 + 2·nnz`` plus a pack/unpack pass), so Remark 1's
mechanism survives the change of compression method — which is the point
of the exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.machine import Machine
from ..machine.packing import PackedBuffer
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix
from ..sparse.jds import JDSMatrix

__all__ = ["JDS_LOCAL_KEY", "JDSResult", "run_jds_scheme"]

#: processor-memory key for the JDS local arrays (distinct from CRS/CCS runs)
JDS_LOCAL_KEY = "local_jds"


@dataclass(frozen=True)
class JDSResult:
    """Phase times and per-processor JDS locals for one run."""

    scheme: str
    partition: str
    n_procs: int
    t_distribution: float
    t_compression: float
    locals_: tuple[JDSMatrix, ...]
    wire_elements: int

    @property
    def t_total(self) -> float:
        return self.t_distribution + self.t_compression


def _require_whole_rows(plan: PartitionPlan) -> None:
    n_cols = plan.global_shape[1]
    for a in plan:
        if len(a.col_ids) != n_cols:
            raise ValueError(
                "JDS schemes require whole-row partitions; rank "
                f"{a.rank} owns {len(a.col_ids)} of {n_cols} columns"
            )


def _jds_build_ops(local: COOMatrix) -> int:
    """Scan each element + counting-sort rows + 3 ops per nonzero."""
    return local.shape[0] * local.shape[1] + local.shape[0] + 3 * local.nnz


def _encode_jds(jds: JDSMatrix) -> tuple[np.ndarray, int]:
    """The ED special buffer: ``perm`` then per-jag ``[L_j, (C, V)...]``."""
    parts = [jds.perm.astype(np.float64)]
    for j in range(jds.n_jags):
        cols, vals = jds.jag(j)
        seg = np.empty(1 + 2 * len(cols), dtype=np.float64)
        seg[0] = len(cols)
        seg[1::2] = cols
        seg[2::2] = vals
        parts.append(seg)
    buffer = np.concatenate(parts) if parts else np.empty(0)
    return buffer, len(buffer)


def _decode_jds(buffer: np.ndarray, n_rows: int, n_cols: int) -> tuple[JDSMatrix, int]:
    perm = buffer[:n_rows].astype(np.int64)
    pos = n_rows
    lengths = []
    indices_parts = []
    values_parts = []
    while pos < len(buffer):
        length = int(buffer[pos])
        seg = buffer[pos + 1 : pos + 1 + 2 * length]
        indices_parts.append(seg[0::2].astype(np.int64))
        values_parts.append(seg[1::2])
        lengths.append(length)
        pos += 1 + 2 * length
    jd_ptr = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=jd_ptr[1:])
    indices = (
        np.concatenate(indices_parts) if indices_parts else np.empty(0, np.int64)
    )
    values = np.concatenate(values_parts) if values_parts else np.empty(0)
    jds = JDSMatrix((n_rows, n_cols), perm, jd_ptr, indices, values)
    ops = 1 + len(lengths) + 2 * int(jd_ptr[-1]) + n_rows  # prefix + moves + perm
    return jds, ops


def run_jds_scheme(
    scheme: str,
    machine: Machine,
    global_matrix: COOMatrix,
    plan: PartitionPlan,
) -> JDSResult:
    """Run one ordering (``"sfc"``/``"cfs"``/``"ed"``) with JDS compression."""
    if scheme not in ("sfc", "cfs", "ed"):
        raise ValueError(f"scheme must be sfc, cfs or ed, got {scheme!r}")
    if plan.n_procs != machine.n_procs:
        raise ValueError("plan and machine disagree on processor count")
    if plan.global_shape != global_matrix.shape:
        raise ValueError("plan and matrix disagree on shape")
    _require_whole_rows(plan)
    local_arrays = plan.extract_all(global_matrix)

    locals_: list[JDSMatrix] = []
    if scheme == "sfc":
        for a, local in zip(plan, local_arrays):
            dense = local.to_dense()
            machine.send(a.rank, dense, dense.size, Phase.DISTRIBUTION, tag="jds-dense")
        for a, local in zip(plan, local_arrays):
            proc = machine.processor(a.rank)
            dense = machine.receive(a.rank, "jds-dense").payload
            jds = JDSMatrix.from_dense(dense)
            machine.charge_proc_ops(
                a.rank, _jds_build_ops(local), Phase.COMPRESSION, label="jds-build"
            )
            proc.store(JDS_LOCAL_KEY, jds)
            locals_.append(jds)
    elif scheme == "cfs":
        compressed = []
        for a, local in zip(plan, local_arrays):
            jds = JDSMatrix.from_coo(local)
            machine.charge_host_ops(
                _jds_build_ops(local), Phase.COMPRESSION, label="jds-build"
            )
            compressed.append(jds)
        for a, jds in zip(plan, compressed):
            buf, pack_ops = PackedBuffer.pack(
                {
                    "perm": jds.perm,
                    "jd_ptr": jds.jd_ptr,
                    "indices": jds.indices,
                    "values": jds.values,
                },
                order=("perm", "jd_ptr", "indices", "values"),
            )
            machine.charge_host_ops(pack_ops, Phase.DISTRIBUTION, label="pack")
            machine.send(a.rank, buf, buf.n_elements, Phase.DISTRIBUTION, tag="jds-triple")
        for a in plan:
            proc = machine.processor(a.rank)
            buf = machine.receive(a.rank, "jds-triple").payload
            arrays, unpack_ops = buf.unpack()
            machine.charge_proc_ops(a.rank, unpack_ops, Phase.DISTRIBUTION, label="unpack")
            jds = JDSMatrix(
                a.local_shape,
                arrays["perm"],
                arrays["jd_ptr"],
                arrays["indices"],
                arrays["values"],
            )
            proc.store(JDS_LOCAL_KEY, jds)
            locals_.append(jds)
    else:  # ed
        buffers = []
        for a, local in zip(plan, local_arrays):
            jds = JDSMatrix.from_coo(local)
            buffer, _ = _encode_jds(jds)
            machine.charge_host_ops(
                _jds_build_ops(local), Phase.COMPRESSION, label="jds-encode"
            )
            buffers.append(buffer)
        for a, buffer in zip(plan, buffers):
            machine.send(
                a.rank, buffer, len(buffer), Phase.DISTRIBUTION, tag="jds-buffer"
            )
        for a in plan:
            proc = machine.processor(a.rank)
            buffer = machine.receive(a.rank, "jds-buffer").payload
            lr, lc = a.local_shape
            jds, decode_ops = _decode_jds(buffer, lr, lc)
            machine.charge_proc_ops(
                a.rank, decode_ops, Phase.COMPRESSION, label="jds-decode"
            )
            proc.store(JDS_LOCAL_KEY, jds)
            locals_.append(jds)

    dist = machine.trace.breakdown(Phase.DISTRIBUTION)
    comp = machine.trace.breakdown(Phase.COMPRESSION)
    return JDSResult(
        scheme=scheme,
        partition=plan.method,
        n_procs=plan.n_procs,
        t_distribution=dist.elapsed,
        t_compression=comp.elapsed,
        locals_=tuple(locals_),
        wire_elements=dist.elements_sent,
    )
