"""The ED scheme's *special buffer* ``B`` (paper Section 3.3, Figure 6).

For the CRS method the buffer stores, for each row ``i`` of a local sparse
array:

    R_i, C_{i,0}, V_{i,0}, C_{i,1}, V_{i,1}, ...

where ``R_i`` is the number of nonzeros in row ``i`` and the ``C``/``V``
pairs are the (global) column index and value of each nonzero, alternating
exactly as Figure 6 draws them.  For the CCS method the roles of rows and
columns swap.  Wire size is therefore ``n_segments + 2·nnz`` elements —
the term that makes ED's distribution time the smallest of the three
schemes (Remark 1).

Encoding cost (charged to the host): one scan op per array element plus
three ops per nonzero (bump ``R_i``, write ``C``, write ``V``) — the
paper's ``n²(1+3s)``.  Decoding cost (charged to the receiving processor):
``RO`` by prefix sum (one init plus one add per segment), one move per
``C`` and per ``V``, plus one conversion op per nonzero when the
index-conversion case demands it — the paper's
``⌈n/p⌉·n·(2s′+1/n)+1`` (row partition, CRS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..kernels import current_backend
from ..machine.packing import MAX_EXACT_INT
from ..sparse.ccs import CCSMatrix
from ..sparse.coo import COOMatrix
from ..sparse.crs import CRSMatrix
from .index_conversion import ConversionSpec

__all__ = ["EncodedBuffer"]


@dataclass(frozen=True)
class EncodedBuffer:
    """An encoded local sparse array, ready to be sent as one message.

    Attributes
    ----------
    data:
        Flat ``float64`` wire buffer in the Figure 6 layout.  Indices inside
        are **0-based global** (the paper's figures print them 1-based; use
        :meth:`to_paper_format` for figure-exact output).
    mode:
        ``"crs"`` (segments are rows) or ``"ccs"`` (segments are columns).
    local_shape:
        Shape of the local sparse array this encodes.
    """

    data: np.ndarray
    mode: Literal["crs", "ccs"]
    local_shape: tuple[int, int]

    @property
    def n_segments(self) -> int:
        """Rows (CRS) or columns (CCS) of the encoded local array."""
        return self.local_shape[0] if self.mode == "crs" else self.local_shape[1]

    @property
    def n_elements(self) -> int:
        """Wire size in elements: ``n_segments + 2·nnz``."""
        return int(len(self.data))

    @property
    def nnz(self) -> int:
        return (self.n_elements - self.n_segments) // 2

    @property
    def checksum(self) -> int:
        """CRC-32 of the wire bytes (the reliable-delivery frame check)."""
        from ..faults.checksum import wire_checksum

        return wire_checksum(self.data)

    # ------------------------------------------------------------------
    # encoding (host side)
    # ------------------------------------------------------------------
    @classmethod
    def encode(
        cls,
        local: COOMatrix,
        mode: Literal["crs", "ccs"],
        conversion: ConversionSpec,
    ) -> tuple["EncodedBuffer", int]:
        """Encode a local sparse array (local indices) into a special buffer.

        ``conversion`` maps the stored dimension's local indices to the
        global indices the wire carries.  Returns ``(buffer, encode_ops)``
        with ``encode_ops = local_elements + 3·nnz`` (the dense-scan model
        the paper charges the host for).
        """
        lr, lc = local.shape
        if mode == "crs":
            counts = local.row_counts()
            seg_of = local.rows
            idx_wire = conversion.to_global(local.cols)
            vals = local.values
        elif mode == "ccs":
            counts = local.col_counts()
            order = np.lexsort((local.rows, local.cols))
            seg_of = local.cols[order]
            idx_wire = conversion.to_global(local.rows[order])
            vals = local.values[order]
        else:
            raise ValueError(f"mode must be 'crs' or 'ccs', got {mode!r}")
        n_seg = len(counts)
        nnz = local.nnz
        if nnz and (
            int(idx_wire.max()) > MAX_EXACT_INT or int(idx_wire.min()) < -MAX_EXACT_INT
        ):
            raise OverflowError(
                "encoded buffer: wire indices outside ±2**53 cannot ride the "
                "float64 wire exactly"
            )
        # nonzeros are already grouped by segment (canonical COO for CRS,
        # the lexsort above for CCS); the backend lays out the Figure 6
        # R_i, C, V, C, V, ... stream (vectorised or per-element).
        data = current_backend().ed_encode(n_seg, counts, seg_of, idx_wire, vals)
        buf = cls(data=data, mode=mode, local_shape=(lr, lc))
        encode_ops = lr * lc + 3 * nnz
        return buf, encode_ops

    # ------------------------------------------------------------------
    # decoding (processor side)
    # ------------------------------------------------------------------
    def decode(self, conversion: ConversionSpec):
        """Decode into a compressed local array (local indices).

        Returns ``(matrix, decode_ops)`` where ``matrix`` is a
        :class:`CRSMatrix` (mode ``"crs"``) or :class:`CCSMatrix` and
        ``decode_ops = 1 + n_segments + 2·nnz + conversion·nnz``:
        ``RO[0]`` init, one add per segment for the prefix sum, one move per
        ``C`` and ``V``, one subtract/lookup per nonzero when converting.
        """
        n_seg = self.n_segments
        kernels = current_backend()
        # sequential walk: R_i's position depends on R_{<i}; raises on a
        # corrupt buffer (negative / non-integral counts, bad walk length)
        counts, seg_starts = kernels.ed_decode_counts(self.data, n_seg)
        nnz = int(counts.sum())
        indptr = np.zeros(n_seg + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        wire_idx, values = kernels.ed_decode_pairs(
            self.data, counts, seg_starts, indptr
        )
        local_idx = conversion.to_local(wire_idx)
        if self.mode == "crs":
            matrix = CRSMatrix(self.local_shape, indptr, local_idx, values)
        else:
            matrix = CCSMatrix(self.local_shape, indptr, local_idx, values)
        decode_ops = 1 + n_seg + 2 * nnz + conversion.ops_per_nonzero * nnz
        return matrix, decode_ops

    # ------------------------------------------------------------------
    # figure-exact view
    # ------------------------------------------------------------------
    def to_paper_format(self) -> list[float]:
        """The buffer exactly as printed in Figures 6–7.

        The paper's ``C_{i,j}`` entries are 0-based (like its ``CO``), so
        this is simply the wire buffer as a plain list of floats.
        """
        return [float(x) for x in self.data]
