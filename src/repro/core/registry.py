"""Name-based registries for schemes, partitions and compressions.

The experiment harness and examples refer to everything by short strings
("ed", "row", "crs"); this module is the single place those names resolve.
"""

from __future__ import annotations

from typing import Callable, Type

from ..partition.base import PartitionMethod
from ..partition.column import ColumnPartition
from ..partition.mesh2d import Mesh2DPartition
from ..partition.row import RowPartition
from ..sparse.ccs import CCSMatrix
from ..sparse.crs import CRSMatrix
from .base import CompressedLocal, DistributionScheme
from .cfs import CFSScheme
from .ed import EDScheme
from .sfc import SFCScheme

__all__ = [
    "SCHEMES",
    "PARTITIONS",
    "COMPRESSIONS",
    "get_scheme",
    "get_partition",
    "get_compression",
]

SCHEMES: dict[str, Callable[[], DistributionScheme]] = {
    "sfc": SFCScheme,
    "cfs": CFSScheme,
    "ed": EDScheme,
}

PARTITIONS: dict[str, Callable[[], PartitionMethod]] = {
    "row": RowPartition,
    "column": ColumnPartition,
    "mesh2d": Mesh2DPartition,
}

COMPRESSIONS: dict[str, Type[CompressedLocal]] = {
    "crs": CRSMatrix,
    "ccs": CCSMatrix,
}


def _lookup(table: dict, name: str, what: str):
    try:
        return table[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown {what} {name!r}; available: {sorted(table)}"
        ) from None


def get_scheme(name: str) -> DistributionScheme:
    """Instantiate a scheme by name ('sfc' | 'cfs' | 'ed')."""
    return _lookup(SCHEMES, name, "scheme")()


def get_partition(name: str) -> PartitionMethod:
    """Instantiate a partition method by name ('row'|'column'|'mesh2d')."""
    return _lookup(PARTITIONS, name, "partition method")()


def get_compression(name: str) -> Type[CompressedLocal]:
    """Resolve a compression method class by name ('crs' | 'ccs')."""
    return _lookup(COMPRESSIONS, name, "compression method")
