"""The Encoding-Decoding (ED) scheme — the paper's novel contribution.

Phase order: partition → **encode** → distribute special buffers →
**decode**.

The compression phase is split around the distribution phase.  The host
encodes each local sparse array into the Figure 6 special buffer
(``R_i`` per-segment counts with alternating ``C``/``V`` pairs) — same
host cost as CFS compression, ``n²(1+3s)``.  But unlike CFS there is *no
separate packing step*: the buffer **is** the wire format, so distribution
is just ``p`` sends of ``segments + 2·nnz`` elements — strictly fewer
elements and ops than CFS's pack+send, which is Remark 1 (ED has the
smallest distribution time of all three schemes).

Each receiver decodes the buffer into ``RO`` (prefix-summing the ``R_i``),
``CO`` and ``VL``, converting global indices per Cases 3.3.1–3.3.3; decode
runs in parallel and is charged to the compression phase, exactly as the
paper accounts it.
"""

from __future__ import annotations

from typing import Type

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix
from .base import LOCAL_KEY, CompressedLocal, DistributionScheme, SchemeResult, compression_kind
from .encoded_buffer import EncodedBuffer
from .index_conversion import conversion_for

__all__ = ["EDScheme"]


class EDScheme(DistributionScheme):
    """partition → encode at host → send special buffers → decode locally."""

    name = "ed"

    def run(
        self,
        machine: Machine,
        global_matrix: COOMatrix,
        plan: PartitionPlan,
        compression: Type[CompressedLocal],
    ) -> SchemeResult:
        self._check_inputs(machine, global_matrix, plan)
        kind = compression_kind(compression)
        with machine.kernel_context():
            return self._run(machine, global_matrix, plan, compression, kind)

    def _run(self, machine, global_matrix, plan, compression, kind):
        obs = machine.obs
        # -- phase 1: partition (untimed) ------------------------------------
        local_arrays = plan.extract_all(global_matrix)

        # -- phase 2a: encoding — host builds one special buffer per block ---
        conversions = []
        buffers = []
        with obs.span("ed.encode", phase="compression"):
            for assignment, local in zip(plan, local_arrays):
                with obs.span("ed.encode_block", rank=assignment.rank):
                    conv = conversion_for(assignment, kind)
                    buf, encode_ops = EncodedBuffer.encode(local, kind, conv)
                    machine.charge_host_ops(
                        encode_ops, Phase.COMPRESSION, label="encode"
                    )
                obs.record_compressed(self.name, local.nnz)
                conversions.append(conv)
                buffers.append(buf)

        # -- phase 3: distribution — the buffer IS the wire format -----------
        with obs.span("ed.send", phase="distribution"):
            for assignment, buf in zip(plan, buffers):
                with obs.span("ed.send_buffer", rank=assignment.rank):
                    machine.send(
                        assignment.rank,
                        buf,
                        buf.n_elements,
                        Phase.DISTRIBUTION,
                        tag="special-buffer",
                    )

        # -- phase 2b: decoding — each processor, in parallel -----------------
        # each rank's decode runs as a rank task on the machine's
        # executor; the task verifies the special buffer's wire checksum
        # when fault injection is active and its charges replay here in
        # rank order, byte-identical to the serial loop
        locals_ = []
        pool = machine.rank_pool()
        with obs.span("ed.decode", phase="compression"):
            for assignment, conv in zip(plan, conversions):
                pool.submit(
                    assignment.rank, "ed.decode", Phase.COMPRESSION,
                    frame=pool.take_frame(assignment.rank, "special-buffer"),
                    conv=conv,
                )
            for assignment in plan:
                proc = machine.processor(assignment.rank)
                with obs.span("ed.decode_buffer", rank=assignment.rank):
                    compressed = pool.result(assignment.rank)
                proc.store(LOCAL_KEY, compressed)
                locals_.append(compressed)

        return self._result(machine, global_matrix, plan, kind, locals_)
