"""The paper's primary contribution: SFC, CFS and ED distribution schemes."""

from .base import (
    LOCAL_KEY,
    CompressedLocal,
    DistributionScheme,
    SchemeResult,
    compression_kind,
)
from .cfs import CFSScheme
from .ed import EDScheme
from .encoded_buffer import EncodedBuffer
from .gather import gather_global
from .jds_schemes import JDS_LOCAL_KEY, JDSResult, run_jds_scheme
from .index_conversion import ConversionSpec, conversion_for, paper_case_label
from .redistribute import RedistributionResult, redistribute
from .registry import (
    COMPRESSIONS,
    PARTITIONS,
    SCHEMES,
    get_compression,
    get_partition,
    get_scheme,
)
from .sfc import SFCScheme, dense_block_is_contiguous
from .transpose import distributed_transpose, transpose_plan

__all__ = [
    "COMPRESSIONS",
    "CFSScheme",
    "CompressedLocal",
    "ConversionSpec",
    "DistributionScheme",
    "EDScheme",
    "EncodedBuffer",
    "LOCAL_KEY",
    "PARTITIONS",
    "RedistributionResult",
    "SCHEMES",
    "SFCScheme",
    "SchemeResult",
    "compression_kind",
    "conversion_for",
    "dense_block_is_contiguous",
    "distributed_transpose",
    "gather_global",
    "JDS_LOCAL_KEY",
    "JDSResult",
    "get_compression",
    "get_partition",
    "get_scheme",
    "paper_case_label",
    "redistribute",
    "run_jds_scheme",
    "transpose_plan",
]
