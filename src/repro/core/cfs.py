"""The Compress-Followed-Send (CFS) scheme.

Phase order: partition → **compress on the host** → distribute packed
``RO``/``CO``/``VL`` triples.

The host compresses every local sparse array itself (serial —
``n²(1+3s)·T_Operation``, Table 1), packs each triple into one buffer (one
move op per element), and sends the buffers in sequence.  ``CO`` carries
*global* indices; each receiver unpacks (one move op per element) and, when
its Case (3.2.2 / 3.2.3) demands, converts ``CO`` to local indices at one
subtraction per nonzero.  The wire carries only ``2·nnz + rows + p``
elements instead of SFC's ``n²`` — the source of CFS's distribution-time
win at low sparse ratios (Remark 2).
"""

from __future__ import annotations

from typing import Type

from ..machine.machine import Machine
from ..machine.packing import PackedBuffer
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix
from .base import LOCAL_KEY, CompressedLocal, DistributionScheme, SchemeResult, compression_kind
from .index_conversion import conversion_for

__all__ = ["CFSScheme"]


class CFSScheme(DistributionScheme):
    """partition → compress at host → send packed RO/CO/VL → unpack+convert."""

    name = "cfs"

    def run(
        self,
        machine: Machine,
        global_matrix: COOMatrix,
        plan: PartitionPlan,
        compression: Type[CompressedLocal],
    ) -> SchemeResult:
        self._check_inputs(machine, global_matrix, plan)
        kind = compression_kind(compression)
        with machine.kernel_context():
            return self._run(machine, global_matrix, plan, compression, kind)

    def _run(self, machine, global_matrix, plan, compression, kind):
        obs = machine.obs
        # -- phase 1: partition (untimed) ------------------------------------
        local_arrays = plan.extract_all(global_matrix)

        # -- phase 2: compression — the host compresses every local array ----
        conversions = []
        compressed_locals = []
        with obs.span("cfs.compress", phase="compression"):
            for assignment, local in zip(plan, local_arrays):
                with obs.span("cfs.compress_block", rank=assignment.rank):
                    comp = compression.from_coo(local)
                    machine.charge_host_ops(
                        local.shape[0] * local.shape[1] + 3 * comp.nnz,
                        Phase.COMPRESSION,
                        label="compress",
                    )
                obs.record_compressed(self.name, comp.nnz)
                conversions.append(conversion_for(assignment, kind))
                compressed_locals.append(comp)

        # -- phase 3: distribution — pack, send in sequence, unpack ----------
        with obs.span("cfs.send", phase="distribution"):
            for assignment, comp, conv in zip(
                plan, compressed_locals, conversions
            ):
                with obs.span("cfs.pack_send", rank=assignment.rank):
                    wire_co = conv.to_global(comp.indices)  # global CO
                    buf, pack_ops = PackedBuffer.pack(
                        {"RO": comp.indptr, "CO": wire_co, "VL": comp.values},
                        order=("RO", "CO", "VL"),
                    )
                    machine.charge_host_ops(
                        pack_ops, Phase.DISTRIBUTION, label="pack"
                    )
                    machine.send(
                        assignment.rank,
                        buf,
                        buf.n_elements,
                        Phase.DISTRIBUTION,
                        tag="crs-triple" if kind == "crs" else "ccs-triple",
                    )

        # each rank's unpack+convert runs as a rank task on the machine's
        # executor; the task verifies the packed buffer's wire checksum
        # when fault injection is active and its charges replay here in
        # rank order, byte-identical to the serial loop
        locals_ = []
        pool = machine.rank_pool()
        with obs.span("cfs.unpack", phase="distribution"):
            for assignment, conv in zip(plan, conversions):
                pool.submit(
                    assignment.rank, "cfs.unpack", Phase.DISTRIBUTION,
                    frame=pool.take_frame(assignment.rank),
                    conv=conv, kind=kind,
                    local_shape=assignment.local_shape,
                )
            for assignment in plan:
                proc = machine.processor(assignment.rank)
                with obs.span("cfs.unpack_convert", rank=assignment.rank):
                    compressed = pool.result(assignment.rank)
                proc.store(LOCAL_KEY, compressed)
                locals_.append(compressed)

        return self._result(machine, global_matrix, plan, kind, locals_)
