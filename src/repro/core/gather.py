"""Gathering a distributed sparse array back to the host.

The inverse of a distribution scheme: after the compute phases finish (or
for checkpointing), the host collects every processor's compressed local
array and reassembles the global sparse array.  The wire format is the ED
special buffer in reverse — each processor encodes its local block
(``R_i`` counts with ``C, V`` pairs, indices converted back to global) and
the host decodes and merges, so the traffic is ``2·nnz + segments``
elements, mirroring the ED distribution cost.
"""

from __future__ import annotations

import numpy as np

from ..machine.machine import Machine
from ..machine.trace import Phase
from ..partition.base import PartitionPlan
from ..sparse.coo import COOMatrix
from .base import LOCAL_KEY
from .encoded_buffer import EncodedBuffer
from .index_conversion import conversion_for

__all__ = ["gather_global"]


def gather_global(
    machine: Machine, plan: PartitionPlan, *, phase: Phase = Phase.DISTRIBUTION
) -> COOMatrix:
    """Collect the distributed array back into one global ``COOMatrix``.

    Requires a prior scheme run on ``machine`` with the same ``plan``.
    Each processor pays the ED encode cost for its block; the host pays the
    decode plus one op per nonzero to merge.  Local arrays stay in place
    (gather is non-destructive).
    """
    buffers = []
    for assignment in plan:
        proc = machine.processor(assignment.rank)
        local = proc.load(LOCAL_KEY)
        if local.shape != assignment.local_shape:
            raise ValueError(
                f"rank {assignment.rank}: stored local shape {local.shape} "
                f"does not match the plan {assignment.local_shape}"
            )
        kind = "crs" if type(local).__name__ == "CRSMatrix" else "ccs"
        conv = conversion_for(assignment, kind)
        buf, encode_ops = EncodedBuffer.encode(local.to_coo(), kind, conv)
        machine.charge_proc_ops(assignment.rank, encode_ops, phase, label="encode-up")
        machine.send_to_host(
            assignment.rank, (buf, kind, assignment.rank), buf.n_elements, phase,
            tag="gather-global",
        )
        buffers.append(None)  # placeholder to keep counts aligned

    rows_all, cols_all, vals_all = [], [], []
    for _ in plan:
        msg = machine.host_receive("gather-global")
        buf, kind, rank = msg.payload
        assignment = plan[rank]
        conv = conversion_for(assignment, kind)
        local, decode_ops = buf.decode(conv)
        machine.charge_host_ops(decode_ops, phase, label="decode-up")
        coo = local.to_coo()
        # lift both coordinates to global; one op per nonzero merge charge
        rows_all.append(assignment.row_ids[coo.rows])
        cols_all.append(assignment.col_ids[coo.cols])
        vals_all.append(coo.values)
        machine.charge_host_ops(coo.nnz, phase, label="merge")

    return COOMatrix(
        plan.global_shape,
        np.concatenate(rows_all) if rows_all else np.empty(0, dtype=np.int64),
        np.concatenate(cols_all) if cols_all else np.empty(0, dtype=np.int64),
        np.concatenate(vals_all) if vals_all else np.empty(0, dtype=np.float64),
    )
