"""Global→local index conversion (the paper's Cases 3.2.1–3.2.3, 3.3.1–3.3.3).

Both the CFS and the ED schemes transmit *global* array indices on the wire
("the values stored in CO are global array indices").  On arrival, each
processor may have to convert them to local indices.  The paper enumerates
six cases; they all reduce to one rule:

* **CRS** compression stores *column* indices in ``CO`` → the receiver
  subtracts its first owned global column (``M``/``N`` in the paper's
  wording — "the total number of columns in P_0 … P_{i-1}").
* **CCS** compression stores *row* indices in ``CO`` → the receiver
  subtracts its first owned global row.

When the owned range starts at zero (row partition + CRS, column partition
+ CCS) the offset is 0 and no conversion is charged — Cases 3.2.1/3.3.1.
Otherwise one subtraction per nonzero is charged — Cases x.2 (row/column
partitions) and x.3 (2-D mesh).

The related-work partitions (block-cyclic, bin-packing) own non-contiguous
index sets, where no single offset exists; conversion then goes through the
gather map (one table lookup per nonzero — same one-op charge).  This
generalisation is the repo's, not the paper's, and is flagged by
``case='general'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..kernels import current_backend
from ..partition.base import BlockAssignment

__all__ = ["ConversionSpec", "conversion_for", "paper_case_label"]

CompressionKind = Literal["crs", "ccs"]


@dataclass(frozen=True)
class ConversionSpec:
    """How a receiver converts wire (global) ``CO`` indices to local ones.

    ``kind``:

    * ``"none"``  — wire indices already local (offset 0), zero cost;
    * ``"offset"`` — subtract a constant, one op per nonzero;
    * ``"map"``   — gather-map lookup, one op per nonzero (non-contiguous
      ownership only).
    """

    kind: Literal["none", "offset", "map"]
    offset: int = 0
    global_ids: np.ndarray | None = field(default=None, repr=False)

    @property
    def ops_per_nonzero(self) -> int:
        """``T_Operation`` charges per converted element (0 or 1)."""
        return 0 if self.kind == "none" else 1

    def to_global(self, local: np.ndarray) -> np.ndarray:
        """Map local indices to the global indices placed on the wire.

        Dispatches to the active kernel backend (one add / table lookup
        per nonzero — the same element operations the cost model charges).
        """
        local = np.asarray(local, dtype=np.int64)
        if self.kind == "none":
            return local
        if self.kind == "offset":
            return current_backend().shift_indices(local, self.offset)
        return current_backend().gather_indices(local, self.global_ids)

    def to_local(self, global_: np.ndarray) -> np.ndarray:
        """Convert received global indices to local ones (the Cases' step)."""
        global_ = np.asarray(global_, dtype=np.int64)
        if self.kind == "none":
            return global_
        kernels = current_backend()
        if self.kind == "offset":
            return kernels.shift_indices(global_, -self.offset)
        lookup = kernels.build_index_lookup(
            self.global_ids, int(self.global_ids.max(initial=-1)) + 1
        )
        local = kernels.gather_indices(global_, lookup)
        if np.any(local < 0):
            raise ValueError("received a global index this processor does not own")
        return local


def conversion_for(
    assignment: BlockAssignment, compression: CompressionKind
) -> ConversionSpec:
    """The conversion a processor applies for its block and compression.

    See the module docstring for the unified rule.
    """
    if compression == "crs":
        ids, contiguous = assignment.col_ids, assignment.cols_contiguous
    elif compression == "ccs":
        ids, contiguous = assignment.row_ids, assignment.rows_contiguous
    else:
        raise ValueError(f"compression must be 'crs' or 'ccs', got {compression!r}")
    if contiguous:
        offset = int(ids[0]) if len(ids) else 0
        if offset == 0:
            return ConversionSpec(kind="none")
        return ConversionSpec(kind="offset", offset=offset)
    return ConversionSpec(kind="map", global_ids=np.asarray(ids, dtype=np.int64))


def paper_case_label(
    partition_name: str, compression: CompressionKind, scheme: Literal["cfs", "ed"]
) -> str:
    """The paper's case number governing a (partition, compression, scheme).

    Returns ``"general"`` for partitions outside the paper's three.
    """
    section = "3.2" if scheme == "cfs" else "3.3"
    no_convert = {("row", "crs"), ("column", "ccs")}
    convert_block = {("row", "ccs"), ("column", "crs")}
    key = (partition_name, compression)
    if key in no_convert:
        return f"{section}.1"
    if key in convert_block:
        return f"{section}.2"
    if partition_name == "mesh2d":
        return f"{section}.3"
    return "general"
