"""Partition methods: the paper's row / column / 2-D mesh blocks plus the
related-work block-cyclic (BRS) and bin-packing (Ziantz et al.) baselines."""

from .base import (
    BlockAssignment,
    PartitionMethod,
    PartitionPlan,
    balanced_block_sizes,
)
from .bin_packing import BinPackingRowPartition, lpt_pack
from .bisection import RecursiveBisectionRowPartition, bisect_weights
from .block_cyclic_mesh import BlockCyclicMesh2DPartition
from .block_cyclic import (
    BlockCyclicColumnPartition,
    BlockCyclicRowPartition,
    cyclic_ownership,
)
from .column import ColumnPartition
from .hpf import format_distribution, parse_distribution
from .mesh2d import Mesh2DPartition, square_mesh_shape
from .row import RowPartition

__all__ = [
    "BinPackingRowPartition",
    "BlockAssignment",
    "BlockCyclicColumnPartition",
    "BlockCyclicMesh2DPartition",
    "BlockCyclicRowPartition",
    "ColumnPartition",
    "Mesh2DPartition",
    "PartitionMethod",
    "PartitionPlan",
    "RecursiveBisectionRowPartition",
    "RowPartition",
    "balanced_block_sizes",
    "bisect_weights",
    "cyclic_ownership",
    "format_distribution",
    "lpt_pack",
    "parse_distribution",
    "square_mesh_shape",
]
