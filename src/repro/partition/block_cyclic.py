"""Block-cyclic row/column partitions (the BRS/BCS family of Zapata et al.).

The Block Row Scatter scheme of the paper's related work ([2, 14]) deals
global rows to processors round-robin in fixed-size blocks — Fortran 90
``(Cyclic(b), *)``.  Ownership is non-contiguous, so the simple
"subtract an offset" index conversion of Cases 3.x.2/3.x.3 no longer
applies; schemes fall back to the general gather-map conversion that
:class:`~repro.partition.base.BlockAssignment` carries.  This is precisely
the ablation DESIGN.md §5 calls out: the paper's cheap conversions are a
property of *contiguous block* partitions.
"""

from __future__ import annotations

import numpy as np

from .base import BlockAssignment, PartitionMethod, PartitionPlan

__all__ = ["BlockCyclicRowPartition", "BlockCyclicColumnPartition", "cyclic_ownership"]


def cyclic_ownership(n: int, n_procs: int, block: int) -> list[np.ndarray]:
    """Global indices owned by each processor under ``Cyclic(block)`` dealing.

    Index ``g`` belongs to processor ``(g // block) mod p``; each
    processor's indices are kept in ascending global order (their local
    order).
    """
    if block <= 0:
        raise ValueError(f"block size must be positive, got {block}")
    if n_procs <= 0:
        raise ValueError(f"number of processors must be positive, got {n_procs}")
    g = np.arange(n, dtype=np.int64)
    owner = (g // block) % n_procs
    return [g[owner == r] for r in range(n_procs)]


class BlockCyclicRowPartition(PartitionMethod):
    """``(Cyclic(block), *)`` — rows dealt round-robin in blocks."""

    name = "block_cyclic_row"

    def __init__(self, block: int = 1) -> None:
        if block <= 0:
            raise ValueError(f"block size must be positive, got {block}")
        self.block = block

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        all_cols = np.arange(n_cols, dtype=np.int64)
        owned = cyclic_ownership(n_rows, n_procs, self.block)
        assignments = tuple(
            BlockAssignment(rank=r, row_ids=rows, col_ids=all_cols)
            for r, rows in enumerate(owned)
        )
        return PartitionPlan(self.name, (n_rows, n_cols), assignments)

    def __repr__(self) -> str:
        return f"BlockCyclicRowPartition(block={self.block})"


class BlockCyclicColumnPartition(PartitionMethod):
    """``(*, Cyclic(block))`` — columns dealt round-robin in blocks."""

    name = "block_cyclic_column"

    def __init__(self, block: int = 1) -> None:
        if block <= 0:
            raise ValueError(f"block size must be positive, got {block}")
        self.block = block

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        all_rows = np.arange(n_rows, dtype=np.int64)
        owned = cyclic_ownership(n_cols, n_procs, self.block)
        assignments = tuple(
            BlockAssignment(rank=r, row_ids=all_rows, col_ids=cols)
            for r, cols in enumerate(owned)
        )
        return PartitionPlan(self.name, (n_rows, n_cols), assignments)

    def __repr__(self) -> str:
        return f"BlockCyclicColumnPartition(block={self.block})"
