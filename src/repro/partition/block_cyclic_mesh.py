"""2-D block-cyclic partitioning — the ScaLAPACK ``(CYCLIC(b), CYCLIC(b))``.

The most general distribution in the HPF family the paper situates itself
in: processors form a ``pr × pc`` mesh and *both* dimensions are dealt
round-robin in blocks.  Ownership is the cross product of a cyclic row map
and a cyclic column map, so it drops straight into this package's
:class:`~repro.partition.base.PartitionPlan` model; the schemes handle it
through the general gather-map index conversion (both dimensions are
non-contiguous).

This is the distribution dense ScaLAPACK uses for scalability, and the
"sparse block and cyclic data distributions" of the paper's reference [2]
generalise; including it shows the SFC/CFS/ED orderings are agnostic even
to fully scattered ownership.
"""

from __future__ import annotations

import math

from .base import BlockAssignment, PartitionMethod, PartitionPlan
from .block_cyclic import cyclic_ownership

__all__ = ["BlockCyclicMesh2DPartition"]


class BlockCyclicMesh2DPartition(PartitionMethod):
    """``(Cyclic(row_block), Cyclic(col_block))`` on a ``pr × pc`` mesh.

    Parameters
    ----------
    row_block, col_block:
        Dealing block sizes per dimension (default 1 — pure cyclic).
    mesh_shape:
        Explicit ``(pr, pc)``; default most-square factorisation.
    """

    name = "block_cyclic_mesh2d"

    def __init__(
        self,
        row_block: int = 1,
        col_block: int = 1,
        mesh_shape: tuple[int, int] | None = None,
    ) -> None:
        if row_block <= 0 or col_block <= 0:
            raise ValueError(
                f"block sizes must be positive, got {(row_block, col_block)}"
            )
        if mesh_shape is not None and (mesh_shape[0] <= 0 or mesh_shape[1] <= 0):
            raise ValueError(f"mesh_shape must be positive, got {mesh_shape}")
        self.row_block = row_block
        self.col_block = col_block
        self.mesh_shape = mesh_shape

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        if self.mesh_shape is not None:
            pr, pc = self.mesh_shape
            if pr * pc != n_procs:
                raise ValueError(f"mesh {pr}x{pc} does not match n_procs={n_procs}")
        else:
            pr = int(math.isqrt(n_procs))
            while n_procs % pr:
                pr -= 1
            pc = n_procs // pr
        row_owned = cyclic_ownership(n_rows, pr, self.row_block)
        col_owned = cyclic_ownership(n_cols, pc, self.col_block)
        assignments = []
        for i in range(pr):
            for j in range(pc):
                assignments.append(
                    BlockAssignment(
                        rank=i * pc + j,
                        row_ids=row_owned[i],
                        col_ids=col_owned[j],
                        mesh_coords=(i, j),
                    )
                )
        return PartitionPlan(
            self.name, (n_rows, n_cols), tuple(assignments), mesh_shape=(pr, pc)
        )

    def __repr__(self) -> str:
        return (
            f"BlockCyclicMesh2DPartition(row_block={self.row_block}, "
            f"col_block={self.col_block}, mesh_shape={self.mesh_shape})"
        )
