"""HPF/Fortran-90 distribution directives as partition methods.

The paper frames its partition methods in Fortran 90 / HPF terms: "the row
partition, the column partition, and the 2D mesh partition methods ... are
similar to (Block, *), (*, Block), and (Block, Block) data distribution
schemes used in Fortran 90" (Section 1), and its reference [14] is the
Vienna Fortran/HPF extension paper.  This module closes that loop: parse a
directive string and get the matching :class:`~repro.partition.base.
PartitionMethod`.

Grammar (case-insensitive, whitespace ignored)::

    directive   := '(' dim-format ',' dim-format ')'
    dim-format  := 'BLOCK' | 'CYCLIC' [ '(' block ')' ] | '*'

Supported combinations map to the package's partitioners:

=====================  =======================================
directive              partition method
=====================  =======================================
``(BLOCK, *)``         :class:`RowPartition`
``(*, BLOCK)``         :class:`ColumnPartition`
``(BLOCK, BLOCK)``     :class:`Mesh2DPartition`
``(CYCLIC, *)``        :class:`BlockCyclicRowPartition` (block 1)
``(CYCLIC(b), *)``     :class:`BlockCyclicRowPartition` (block b)
``(*, CYCLIC)``        :class:`BlockCyclicColumnPartition`
``(*, CYCLIC(b))``     :class:`BlockCyclicColumnPartition`
``(CYCLIC, CYCLIC)``   :class:`BlockCyclicMesh2DPartition`
=====================  =======================================

``(*, *)`` (no distribution) and BLOCK/CYCLIC mixes across dimensions are
rejected with explanatory errors.
"""

from __future__ import annotations

import re

from .base import PartitionMethod
from .block_cyclic import BlockCyclicColumnPartition, BlockCyclicRowPartition
from .block_cyclic_mesh import BlockCyclicMesh2DPartition
from .column import ColumnPartition
from .mesh2d import Mesh2DPartition
from .row import RowPartition

__all__ = ["parse_distribution", "format_distribution"]

_DIM = re.compile(
    r"^(?:(?P<star>\*)|(?P<block>BLOCK)|(?P<cyclic>CYCLIC)(?:\((?P<size>\d+)\))?)$"
)


def _parse_dim(text: str) -> tuple[str, int | None]:
    m = _DIM.match(text)
    if not m:
        raise ValueError(
            f"cannot parse dimension format {text!r}; expected BLOCK, "
            "CYCLIC, CYCLIC(b) or *"
        )
    if m.group("star"):
        return ("*", None)
    if m.group("block"):
        return ("block", None)
    size = int(m.group("size")) if m.group("size") else 1
    if size <= 0:
        raise ValueError(f"cyclic block size must be positive, got {size}")
    return ("cyclic", size)


def parse_distribution(directive: str) -> PartitionMethod:
    """Parse an HPF-style directive into a partition method instance."""
    cleaned = re.sub(r"\s+", "", directive).upper()
    if not (cleaned.startswith("(") and cleaned.endswith(")")):
        raise ValueError(f"directive must be parenthesised, got {directive!r}")
    parts = cleaned[1:-1].split(",")
    if len(parts) != 2:
        raise ValueError(
            f"expected two dimension formats, got {len(parts)} in {directive!r}"
        )
    row_fmt, col_fmt = (_parse_dim(p) for p in parts)

    if row_fmt[0] == "block" and col_fmt[0] == "*":
        return RowPartition()
    if row_fmt[0] == "*" and col_fmt[0] == "block":
        return ColumnPartition()
    if row_fmt[0] == "block" and col_fmt[0] == "block":
        return Mesh2DPartition()
    if row_fmt[0] == "cyclic" and col_fmt[0] == "*":
        return BlockCyclicRowPartition(row_fmt[1])
    if row_fmt[0] == "*" and col_fmt[0] == "cyclic":
        return BlockCyclicColumnPartition(col_fmt[1])
    if row_fmt[0] == "cyclic" and col_fmt[0] == "cyclic":
        return BlockCyclicMesh2DPartition(row_fmt[1], col_fmt[1])
    if row_fmt[0] == "*" and col_fmt[0] == "*":
        raise ValueError(
            "'(*, *)' means no distribution; pick a dimension to distribute"
        )
    raise ValueError(
        f"unsupported combination {directive!r}: BLOCK/CYCLIC mixes across "
        "dimensions are not implemented (plain HPF supports them; the "
        "partitioners here cover the paper's cases plus full 2-D cyclic)"
    )


def format_distribution(method: PartitionMethod) -> str:
    """The HPF directive string for one of the supported partitioners."""
    if isinstance(method, RowPartition):
        return "(BLOCK, *)"
    if isinstance(method, ColumnPartition):
        return "(*, BLOCK)"
    if isinstance(method, Mesh2DPartition):
        return "(BLOCK, BLOCK)"
    if isinstance(method, BlockCyclicRowPartition):
        return f"(CYCLIC({method.block}), *)"
    if isinstance(method, BlockCyclicColumnPartition):
        return f"(*, CYCLIC({method.block}))"
    if isinstance(method, BlockCyclicMesh2DPartition):
        return f"(CYCLIC({method.row_block}), CYCLIC({method.col_block}))"
    raise TypeError(
        f"{type(method).__name__} has no HPF directive equivalent"
    )
