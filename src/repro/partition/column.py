"""Column partition method — Fortran 90 ``(*, Block)``.

Each processor receives a balanced contiguous block of whole columns; every
processor sees all rows.  Evaluated in the paper's Table 4.
"""

from __future__ import annotations

import numpy as np

from .base import BlockAssignment, PartitionMethod, PartitionPlan, balanced_block_sizes

__all__ = ["ColumnPartition"]


class ColumnPartition(PartitionMethod):
    """Balanced contiguous blocks of columns, one per processor."""

    name = "column"

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        sizes = balanced_block_sizes(n_cols, n_procs)
        all_rows = np.arange(n_rows, dtype=np.int64)
        assignments = []
        start = 0
        for rank, size in enumerate(sizes):
            assignments.append(
                BlockAssignment(
                    rank=rank,
                    row_ids=all_rows,
                    col_ids=np.arange(start, start + size, dtype=np.int64),
                )
            )
            start += size
        return PartitionPlan(self.name, (n_rows, n_cols), tuple(assignments))
