"""2-D mesh partition method — Fortran 90 ``(Block, Block)``.

Processors form a ``pr x pc`` logical mesh; processor ``P_{i,j}`` owns the
intersection of row block ``i`` and column block ``j``.  Linear rank is
row-major: ``rank = i * pc + j``.  Evaluated in the paper's Table 5 with
square meshes 2×2, 4×4, 8×8.
"""

from __future__ import annotations

import math

import numpy as np

from .base import BlockAssignment, PartitionMethod, PartitionPlan, balanced_block_sizes

__all__ = ["Mesh2DPartition", "square_mesh_shape"]


def square_mesh_shape(n_procs: int) -> tuple[int, int]:
    """The most-square ``pr x pc`` factorisation of ``n_procs``.

    For perfect squares this is ``(sqrt(p), sqrt(p))`` (the paper's 2×2,
    4×4, 8×8 meshes); otherwise the factor pair closest to square.
    """
    if n_procs <= 0:
        raise ValueError(f"number of processors must be positive, got {n_procs}")
    pr = int(math.isqrt(n_procs))
    while n_procs % pr:
        pr -= 1
    return (pr, n_procs // pr)


class Mesh2DPartition(PartitionMethod):
    """Balanced ``(Block, Block)`` blocks on a ``pr x pc`` processor mesh.

    Parameters
    ----------
    mesh_shape:
        Explicit ``(pr, pc)``; when ``None`` (default) the most-square
        factorisation of ``n_procs`` is used.
    """

    name = "mesh2d"

    def __init__(self, mesh_shape: tuple[int, int] | None = None) -> None:
        if mesh_shape is not None:
            pr, pc = mesh_shape
            if pr <= 0 or pc <= 0:
                raise ValueError(f"mesh_shape must be positive, got {mesh_shape}")
        self.mesh_shape = mesh_shape

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        if self.mesh_shape is not None:
            pr, pc = self.mesh_shape
            if pr * pc != n_procs:
                raise ValueError(
                    f"mesh {pr}x{pc} does not match n_procs={n_procs}"
                )
        else:
            pr, pc = square_mesh_shape(n_procs)
        row_sizes = balanced_block_sizes(n_rows, pr)
        col_sizes = balanced_block_sizes(n_cols, pc)
        row_starts = np.concatenate([[0], np.cumsum(row_sizes)])
        col_starts = np.concatenate([[0], np.cumsum(col_sizes)])
        assignments = []
        for i in range(pr):
            rows = np.arange(row_starts[i], row_starts[i + 1], dtype=np.int64)
            for j in range(pc):
                cols = np.arange(col_starts[j], col_starts[j + 1], dtype=np.int64)
                assignments.append(
                    BlockAssignment(
                        rank=i * pc + j,
                        row_ids=rows,
                        col_ids=cols,
                        mesh_coords=(i, j),
                    )
                )
        return PartitionPlan(
            self.name, (n_rows, n_cols), tuple(assignments), mesh_shape=(pr, pc)
        )

    def __repr__(self) -> str:
        return f"Mesh2DPartition(mesh_shape={self.mesh_shape})"
