"""Recursive binary bisection partitioning (Berger & Bokhari, ref [5]).

The paper's reference [5] ("A Partitioning Strategy for Nonuniform
Problems on Multiprocessors") balances *work* rather than index ranges:
recursively split the domain at the point where the accumulated weight
halves.  Applied to rows of a sparse array this yields **contiguous but
uneven** row blocks with near-equal nonzero counts — the best of both
worlds for the paper's schemes:

* contiguity keeps the cheap Case-3.x.2 offset conversion applicable
  (unlike bin-packing or block-cyclic ownership);
* weight balance equalises the per-processor compression/decode work that
  the ``s'`` terms of Tables 1–2 are extremal in.

The split respects a weighted proportion when the processor count is not
a power of two (left subtree gets ``ceil(p/2)/p`` of the weight).
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COOMatrix
from .base import BlockAssignment, PartitionMethod, PartitionPlan

__all__ = ["RecursiveBisectionRowPartition", "bisect_weights"]


def bisect_weights(weights: np.ndarray, n_parts: int) -> list[tuple[int, int]]:
    """Split ``range(len(weights))`` into ``n_parts`` contiguous intervals
    of near-equal total weight by recursive bisection.

    Returns ``(start, stop)`` half-open intervals in order.  Empty
    intervals are legal when ``n_parts`` exceeds the item count or weight
    is concentrated.
    """
    if n_parts <= 0:
        raise ValueError(f"n_parts must be positive, got {n_parts}")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")

    out: list[tuple[int, int]] = []

    def recurse(lo: int, hi: int, parts: int) -> None:
        if parts == 1:
            out.append((lo, hi))
            return
        left_parts = (parts + 1) // 2
        segment = weights[lo:hi]
        total = float(segment.sum())
        if total == 0.0:
            # no weight to balance: split by index proportion
            cut = lo + (hi - lo) * left_parts // parts
        else:
            target = total * left_parts / parts
            cumulative = np.cumsum(segment)
            cut = lo + int(np.searchsorted(cumulative, target, side="left")) + 1
            cut = min(max(cut, lo), hi)
        recurse(lo, cut, left_parts)
        recurse(cut, hi, parts - left_parts)

    recurse(0, len(weights), n_parts)
    return out


class RecursiveBisectionRowPartition(PartitionMethod):
    """Contiguous row blocks balanced by nonzero count via bisection.

    Like :class:`~repro.partition.bin_packing.BinPackingRowPartition` this
    needs the matrix (or explicit weights) at construction; unlike it, the
    resulting ownership is contiguous, so the paper's offset-based index
    conversions still apply.
    """

    name = "bisection_row"

    def __init__(
        self, matrix: COOMatrix | None = None, *, weights: np.ndarray | None = None
    ) -> None:
        if (matrix is None) == (weights is None):
            raise ValueError("provide exactly one of matrix or weights")
        if matrix is not None:
            self._weights = matrix.row_counts().astype(np.float64)
            self._shape = matrix.shape
        else:
            self._weights = np.asarray(weights, dtype=np.float64)
            self._shape = None

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        if self._shape is not None and (n_rows, n_cols) != self._shape:
            raise ValueError(
                f"plan shape {shape} does not match the weighting matrix "
                f"shape {self._shape}"
            )
        if len(self._weights) != n_rows:
            raise ValueError(
                f"have weights for {len(self._weights)} rows, plan asks for {n_rows}"
            )
        all_cols = np.arange(n_cols, dtype=np.int64)
        assignments = tuple(
            BlockAssignment(
                rank=r,
                row_ids=np.arange(lo, hi, dtype=np.int64),
                col_ids=all_cols,
            )
            for r, (lo, hi) in enumerate(bisect_weights(self._weights, n_procs))
        )
        return PartitionPlan(self.name, (n_rows, n_cols), assignments)

    def load_imbalance(self, n_procs: int) -> float:
        """max/mean per-block weight (1.0 = perfect balance)."""
        loads = np.array(
            [
                self._weights[lo:hi].sum()
                for lo, hi in bisect_weights(self._weights, n_procs)
            ]
        )
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0
