"""Load-balancing row partition via greedy bin packing (Ziantz et al. [16]).

The related-work run-time optimisation of Ziantz, Ozturan and Szymanski
assigns rows to processors with a bin-packing heuristic so each processor
receives roughly equal *work* (nonzeros), not equal row counts.  We
implement the classic Longest-Processing-Time greedy: rows sorted by
descending weight, each placed on the currently lightest processor.

Like block-cyclic, the resulting ownership is non-contiguous, exercising the
general (gather-map) index conversion path.  On skewed workloads
(:func:`repro.sparse.generators.row_skewed_sparse`) this partitioner brings
the max local sparse ratio ``s'`` down toward the mean — the quantity the
paper's ``T_Compression`` formulas are extremal in.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..sparse.coo import COOMatrix
from .base import BlockAssignment, PartitionMethod, PartitionPlan

__all__ = ["BinPackingRowPartition", "lpt_pack"]


def lpt_pack(weights: np.ndarray, n_bins: int) -> list[np.ndarray]:
    """Longest-Processing-Time greedy packing of weighted items into bins.

    Returns, per bin, the item indices assigned (ascending).  Ties broken by
    bin index for determinism.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    order = np.argsort(-weights, kind="stable")
    heap: list[tuple[float, int]] = [(0.0, b) for b in range(n_bins)]
    heapq.heapify(heap)
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    for item in order:
        load, b = heapq.heappop(heap)
        bins[b].append(int(item))
        heapq.heappush(heap, (load + float(weights[item]), b))
    return [np.array(sorted(b), dtype=np.int64) for b in bins]


class BinPackingRowPartition(PartitionMethod):
    """Whole-row partition balancing per-processor nonzero counts.

    Unlike the shape-only methods, this partitioner needs the matrix to
    compute row weights, so it is constructed *with* the matrix (or an
    explicit weight vector) and then planned for a processor count.
    """

    name = "bin_packing_row"

    def __init__(
        self, matrix: COOMatrix | None = None, *, weights: np.ndarray | None = None
    ) -> None:
        if (matrix is None) == (weights is None):
            raise ValueError("provide exactly one of matrix or weights")
        if matrix is not None:
            self._weights = matrix.row_counts().astype(np.float64)
            self._shape = matrix.shape
        else:
            self._weights = np.asarray(weights, dtype=np.float64)
            self._shape = None

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        if self._shape is not None and (n_rows, n_cols) != self._shape:
            raise ValueError(
                f"plan shape {shape} does not match the weighting matrix "
                f"shape {self._shape}"
            )
        if len(self._weights) != n_rows:
            raise ValueError(
                f"have weights for {len(self._weights)} rows, plan asks for {n_rows}"
            )
        all_cols = np.arange(n_cols, dtype=np.int64)
        assignments = tuple(
            BlockAssignment(rank=r, row_ids=rows, col_ids=all_cols)
            for r, rows in enumerate(lpt_pack(self._weights, n_procs))
        )
        return PartitionPlan(self.name, (n_rows, n_cols), assignments)

    def load_imbalance(self, n_procs: int) -> float:
        """max/mean per-processor weight under this packing (1.0 = perfect)."""
        loads = np.array(
            [self._weights[rows].sum() for rows in lpt_pack(self._weights, n_procs)]
        )
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0
