"""Row partition method — Fortran 90 ``(Block, *)``.

Each processor receives a balanced contiguous block of whole rows; every
processor sees all columns.  This is the method the paper uses as its
running example (Figures 2–5, 7) and the one Table 1/2 analyse.
"""

from __future__ import annotations

import numpy as np

from .base import BlockAssignment, PartitionMethod, PartitionPlan, balanced_block_sizes

__all__ = ["RowPartition"]


class RowPartition(PartitionMethod):
    """Balanced contiguous blocks of rows, one per processor."""

    name = "row"

    def plan(self, shape: tuple[int, int], n_procs: int) -> PartitionPlan:
        n_rows, n_cols = shape
        sizes = balanced_block_sizes(n_rows, n_procs)
        all_cols = np.arange(n_cols, dtype=np.int64)
        assignments = []
        start = 0
        for rank, size in enumerate(sizes):
            assignments.append(
                BlockAssignment(
                    rank=rank,
                    row_ids=np.arange(start, start + size, dtype=np.int64),
                    col_ids=all_cols,
                )
            )
            start += size
        return PartitionPlan(self.name, (n_rows, n_cols), tuple(assignments))
